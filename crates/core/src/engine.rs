//! The per-shard sniffer engine.
//!
//! Everything the DN-Hunter real-time sniffer (paper Fig. 1) tracks *per
//! client shard* lives here: the shard's DNS resolver (Algorithm 1), its
//! flow table, pending tags, and delay samples. The single-threaded
//! [`crate::RealTimeSniffer`] drives exactly one engine; the parallel
//! [`crate::ParallelSniffer`] drives N of them, one per worker thread,
//! sharing this code path so the two produce identical per-event behaviour
//! by construction.
//!
//! Every output the engine accumulates is tagged with an [`EventKey`]
//! — `(dispatch sequence number, phase)` — which totally orders events
//! across shards exactly as the sequential sniffer would have emitted
//! them. [`assemble_report`] merges any number of shard outputs under that
//! order into the one [`SnifferReport`] the offline analytics consume.

use std::net::IpAddr;

use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_flow::{CompactSeg, FlowEvent, FlowKey, FlowTable};
use dnhunter_resolver::maps::FnvHashMap;
use dnhunter_resolver::{DnsResolver, InternStats, OrderedTables, ResolverConfig, ResolverStats};
use dnhunter_telemetry::{
    self as telemetry, tm_count, tm_span, tm_trace, Metric as Tm, TraceEvent as Te,
};

use crate::db::{FlowDatabase, TaggedFlow};
use crate::policy::PolicyEnforcer;
use crate::sniffer::{DelaySamples, SnifferConfig, SnifferReport, SnifferStats};
use crate::stream::{FlowSink, StreamingAnalytics};

/// Total order on sniffer events across shards: `(seq, phase)`.
///
/// `seq` is the global frame sequence number assigned by whoever feeds the
/// engine (the sequential driver or the pipeline dispatcher). `phase`
/// separates the two event sources a single data frame can trigger, in
/// their sequential order: `0` for events of the frame itself (flow start,
/// port-reuse finish), `1` for the eviction scan that the same frame's
/// timestamp may gate open. Ties beyond the key are broken by the flow
/// table's deterministic `(first_ts, 5-tuple)` eviction order.
pub(crate) type EventKey = (u64, u8);

/// Phase of events produced directly by a frame.
pub(crate) const PHASE_FRAME: u8 = 0;
/// Phase of events produced by an eviction scan (tick) or the final flush.
pub(crate) const PHASE_SCAN: u8 = 1;

/// Book-keeping for one sniffed DNS response, tagged with its frame seq.
#[derive(Debug)]
struct ResponseRecord {
    seq: u64,
    ts: u64,
    first_flow_delay: Option<u64>,
}

/// Tag assigned when a flow started.
#[derive(Debug, Clone)]
struct PendingTag {
    fqdn: Option<DomainName>,
    alt_labels: Vec<DomainName>,
    tag_delay: Option<u64>,
    in_warmup: bool,
}

/// One shard's accumulated output, ready to merge (see [`assemble_report`]).
pub(crate) struct ShardOutput {
    pub(crate) stats: SnifferStats,
    pub(crate) resolver_stats: ResolverStats,
    pub(crate) intern: InternStats,
    responses: Vec<ResponseRecord>,
    dns_response_times: Vec<(u64, u64)>,
    answers_per_response: Vec<(u64, usize)>,
    any_flow_delays: Vec<(u64, u64)>,
    tagged: Vec<(EventKey, TaggedFlow)>,
    /// The shard's streaming-analytics partial, riding back to the driver
    /// for the deterministic fold (`None` unless a sink was installed).
    pub(crate) sink: Option<Box<dyn FlowSink>>,
}

/// Per-shard sniffer state: one §3.1 resolver + one flow table + the
/// tagging and delay accounting of the paper's Fig. 1 fast path.
pub(crate) struct ShardEngine {
    pub(crate) config: SnifferConfig,
    resolver: DnsResolver<OrderedTables>,
    flows: FlowTable,
    pub(crate) stats: SnifferStats,
    pending_tags: FnvHashMap<FlowKey, PendingTag>,
    /// (client, server) → index into `responses` of the latest response
    /// binding that pair.
    response_index: FnvHashMap<(IpAddr, IpAddr), usize>,
    responses: Vec<ResponseRecord>,
    /// (seq, ts) of every DNS response seen (Fig. 14 time series).
    dns_response_times: Vec<(u64, u64)>,
    /// (seq, answer count) per answered response (§6 distribution).
    answers_per_response: Vec<(u64, usize)>,
    /// (seq, delay µs) from a response to every subsequent flow using it.
    any_flow_delays: Vec<(u64, u64)>,
    /// Finished flows in event order, awaiting the merge.
    tagged: Vec<(EventKey, TaggedFlow)>,
    /// First frame timestamp of the whole trace (not just this shard) —
    /// set by the driver, anchors the warm-up window.
    trace_start: Option<u64>,
    /// Optional streaming-analytics sink, fed as events happen (one per
    /// shard; the driver folds them after the run).
    sink: Option<Box<dyn FlowSink>>,
}

impl ShardEngine {
    /// Build one engine. `resolver_config` is passed separately from
    /// `config.resolver` so the pipeline can hand each shard its partition
    /// of the Clist budget `L` (mirroring `ShardedResolver::new`).
    pub(crate) fn new(config: SnifferConfig, resolver_config: ResolverConfig) -> Self {
        ShardEngine {
            resolver: DnsResolver::with_config(resolver_config),
            flows: FlowTable::new(config.flow_table.clone()),
            stats: SnifferStats::default(),
            pending_tags: FnvHashMap::default(),
            response_index: FnvHashMap::default(),
            responses: Vec::new(),
            dns_response_times: Vec::new(),
            answers_per_response: Vec::new(),
            any_flow_delays: Vec::new(),
            tagged: Vec::new(),
            trace_start: None,
            sink: None,
            config,
        }
    }

    /// Install a streaming-analytics sink. Events observed from here on
    /// are forwarded; the sink rides back in [`ShardOutput`] at the end.
    pub(crate) fn set_sink(&mut self, sink: Box<dyn FlowSink>) {
        self.sink = Some(sink);
    }

    /// Access the live resolver (e.g. to pre-warm it).
    pub(crate) fn resolver_mut(&mut self) -> &mut DnsResolver<OrderedTables> {
        &mut self.resolver
    }

    /// Anchor the warm-up window at the trace's first frame timestamp.
    /// Idempotent: only the first call takes effect.
    pub(crate) fn note_trace_start(&mut self, ts: u64) {
        if self.trace_start.is_none() {
            self.trace_start = Some(ts);
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.on_trace_start(ts);
            }
        }
    }

    /// Decode and apply one UDP DNS response payload. `client` is the
    /// packet's destination — the resolver the answer is headed to. Both
    /// drivers hand the raw payload bytes straight here; neither re-parses
    /// the frame.
    // lint_root(ingest): per-shard handler for attacker-controlled DNS responses
    pub(crate) fn handle_dns_payload(&mut self, seq: u64, ts: u64, client: IpAddr, payload: &[u8]) {
        let msg = match dnhunter_dns::codec::decode(payload) {
            Ok(m) => m,
            Err(_) => {
                self.stats.dns_decode_errors += 1;
                return;
            }
        };
        self.handle_dns_message(seq, ts, client, &msg);
    }

    /// Common path for UDP and TCP responses. Truncated (TC-bit) responses
    /// are counted but carry no bindings — the client retries over TCP.
    // lint_root(ingest): per-shard handler for decoded (still untrusted) DNS messages
    pub(crate) fn handle_dns_message(
        &mut self,
        seq: u64,
        ts: u64,
        client: IpAddr,
        msg: &dnhunter_dns::DnsMessage,
    ) {
        if !msg.header.is_response {
            return;
        }
        self.stats.dns_responses += 1;
        tm_count!(Tm::DnsResponsesSniffed);
        self.dns_response_times.push((seq, ts));
        if msg.header.truncated {
            return;
        }
        let servers = msg.answer_addresses();
        if let Some(name) = msg.queried_fqdn() {
            let outcome = self.resolver.insert(client, name, &servers);
            // Provenance: which response, what it bound, what it displaced.
            // The FQDN key is only hashed when a recorder is listening.
            if telemetry::trace_enabled() {
                let fqdn_key = name.trace_key();
                tm_trace!(Te::DnsResponse, seq, ts, fqdn_key, servers.len() as u64);
                if outcome.bindings > 0 {
                    tm_trace!(Te::ResolverBind, seq, ts, fqdn_key, outcome.bindings);
                }
                if outcome.evicted > 0 {
                    tm_trace!(Te::ResolverEvict, seq, ts, fqdn_key, outcome.evicted);
                }
            }
        }
        if !servers.is_empty() {
            self.answers_per_response.push((seq, servers.len()));
            let idx = self.responses.len();
            self.responses.push(ResponseRecord {
                seq,
                ts,
                first_flow_delay: None,
            });
            for s in servers {
                self.response_index.insert((client, s), idx);
            }
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.on_answered_response(ts);
            }
        }
    }

    /// Feed one data segment (anything that is not DNS) through the flow
    /// table, without an eviction scan — the driver owns the scan clock and
    /// calls [`ShardEngine::tick`]. Both drivers pre-parse: the sequential
    /// sniffer from its flat parse, the pipeline dispatcher shipping
    /// `CompactSeg`s plus DPI head bytes across the ring.
    // lint_root(ingest): per-shard handler for attacker-controlled TCP payload bytes
    pub(crate) fn process_seg<E: PolicyEnforcer>(
        &mut self,
        seq: u64,
        ts: u64,
        seg: &CompactSeg,
        head: &[u8],
        enforcer: &mut Option<&mut E>,
    ) {
        for event in self.flows.process_seg(ts, seg, head) {
            match event {
                FlowEvent::FlowStarted(key) => self.on_flow_started(seq, ts, key, enforcer),
                FlowEvent::FlowFinished(record) => {
                    self.on_flow_finished((seq, PHASE_FRAME), *record)
                }
            }
        }
    }

    /// Run one eviction scan, exactly when the sequential interval gate
    /// would have (the driver replicates that gate and broadcasts the tick).
    // lint_root(ingest): per-shard timer driven by the ingest clock domain
    pub(crate) fn tick(&mut self, seq: u64, now: u64) {
        for event in self.flows.evict_idle(now) {
            if let FlowEvent::FlowFinished(record) = event {
                self.on_flow_finished((seq, PHASE_SCAN), *record);
            }
        }
    }

    // lint_root(ingest): FlowTable callback driven per segment from ingest (dyn dispatch the call graph cannot see)
    fn on_flow_started<E: PolicyEnforcer>(
        &mut self,
        seq: u64,
        ts: u64,
        key: FlowKey,
        enforcer: &mut Option<&mut E>,
    ) {
        let in_warmup = self
            .trace_start
            .is_some_and(|t0| ts.saturating_sub(t0) < self.config.warmup_micros);
        let label = self.resolver.lookup(key.client, key.server);
        if telemetry::trace_enabled() {
            let server_key = key.server_trace_key();
            match label.as_deref() {
                Some(name) => tm_trace!(Te::ResolverHit, seq, ts, server_key, name.trace_key()),
                None => tm_trace!(Te::ResolverMiss, seq, ts, server_key, u64::from(in_warmup)),
            }
            tm_trace!(
                Te::FlowOpen,
                seq,
                ts,
                server_key,
                u64::from(key.server_port)
            );
        }
        if !in_warmup {
            self.stats.tag_attempts += 1;
            tm_count!(Tm::TagAttempts);
            if label.is_some() {
                self.stats.tag_hits += 1;
                tm_count!(Tm::TagHits);
            }
        }
        // Delay accounting against the most recent covering response.
        let mut tag_delay = None;
        let mut first_flow_delay = None;
        if let Some(&idx) = self.response_index.get(&(key.client, key.server)) {
            if let Some(rec) = self.responses.get_mut(idx) {
                let delay = ts.saturating_sub(rec.ts);
                if rec.first_flow_delay.is_none() {
                    rec.first_flow_delay = Some(delay);
                    first_flow_delay = Some(delay);
                }
                // Keyed by the *flow's* frame seq: the sequential sniffer
                // appends this sample when the flow starts, not when the
                // response arrived.
                self.any_flow_delays.push((seq, delay));
                tag_delay = Some(delay);
            }
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            if let Some(d) = first_flow_delay {
                sink.on_first_flow_delay(ts, d);
            }
            if let Some(d) = tag_delay {
                sink.on_any_flow_delay(ts, d);
            }
        }
        let fqdn = label.map(|arc| (*arc).clone());
        // §6 extension: when the resolver keeps several labels per pair,
        // record the alternatives so downstream consumers can resolve
        // ambiguity themselves.
        let alt_labels = if self.config.resolver.labels_per_server > 1 && fqdn.is_some() {
            let mut alts: Vec<DomainName> = Vec::new();
            for arc in self.resolver.lookup_all(key.client, key.server) {
                // Distinct alternatives only; repeated resolutions of the
                // primary name are not ambiguity. Compare before cloning —
                // the common case (no ambiguity) then allocates nothing.
                if Some(&*arc) != fqdn.as_ref() && !alts.iter().any(|a| a == &*arc) {
                    alts.push((*arc).clone());
                }
            }
            alts
        } else {
            Vec::new()
        };
        if let Some(e) = enforcer.as_deref_mut() {
            let _ = e.on_flow_start(key, fqdn.as_ref());
        }
        self.pending_tags.insert(
            key,
            PendingTag {
                fqdn,
                alt_labels,
                tag_delay,
                in_warmup,
            },
        );
    }

    // lint_root(ingest): FlowTable callback driven per flow end from ingest (dyn dispatch the call graph cannot see)
    fn on_flow_finished(&mut self, at: EventKey, record: dnhunter_flow::FlowRecord) {
        let tag = self.pending_tags.remove(&record.key).unwrap_or(PendingTag {
            fqdn: None,
            alt_labels: Vec::new(),
            tag_delay: None,
            in_warmup: false,
        });
        let protocol = record.protocol_now();
        tm_count!(match protocol {
            dnhunter_flow::AppProtocol::Http => Tm::DpiHttp,
            dnhunter_flow::AppProtocol::Tls => Tm::DpiTls,
            dnhunter_flow::AppProtocol::P2p => Tm::DpiP2p,
            dnhunter_flow::AppProtocol::Dns => Tm::DpiDns,
            dnhunter_flow::AppProtocol::Mail => Tm::DpiMail,
            dnhunter_flow::AppProtocol::Chat => Tm::DpiChat,
            dnhunter_flow::AppProtocol::Other => Tm::DpiOther,
        });
        if telemetry::trace_enabled() {
            let server_key = record.key.server_trace_key();
            tm_trace!(
                Te::FlowVerdict,
                at.0,
                record.last_ts,
                server_key,
                protocol as u64
            );
            let bytes = record.bytes_c2s.saturating_add(record.bytes_s2c);
            tm_trace!(Te::FlowFinish, at.0, record.last_ts, server_key, bytes);
        }
        let tls = if protocol == dnhunter_flow::AppProtocol::Tls {
            Some(record.tls_info())
        } else {
            None
        };
        let flow = TaggedFlow {
            key: record.key,
            fqdn: tag.fqdn,
            second_level: None,
            alt_labels: tag.alt_labels,
            tag_delay_micros: tag.tag_delay,
            first_ts: record.first_ts,
            last_ts: record.last_ts,
            packets_c2s: record.packets_c2s,
            packets_s2c: record.packets_s2c,
            bytes_c2s: record.bytes_c2s,
            bytes_s2c: record.bytes_s2c,
            protocol,
            tls,
            in_warmup: tag.in_warmup,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_flow_finished(&flow);
        }
        self.tagged.push((at, flow));
    }

    /// Daemon-mode state rotation at the given packet-clock `horizon`:
    /// retire windowed sink buckets below it (returned for emission) and
    /// drain the accumulated sample streams so memory stays bounded on an
    /// unbounded stream. The horizon the driver passes is a *global* lower
    /// bound on all future event timestamps (rotation clock clamped to the
    /// oldest live flow's first packet), so nothing retired here can still
    /// be written to — except under injected reordering, which the sink
    /// counts. Draining is all-or-nothing rather than a timestamp-filtered
    /// prefix: rotation points are the same trace instants at every worker
    /// count, so a full drain is deterministic while a prefix split on
    /// per-shard sample order would not be. The final report therefore
    /// covers the post-rotation residue; the retired history lives in the
    /// rotated window stream.
    // lint_root(determinism): rotation fires at the same packet-clock instants at every worker count
    pub(crate) fn rotate(&mut self, horizon: u64) -> Vec<(u64, StreamingAnalytics)> {
        self.responses.clear();
        self.response_index.clear();
        self.dns_response_times.clear();
        self.answers_per_response.clear();
        self.any_flow_delays.clear();
        self.tagged.clear();
        match self.sink.as_deref_mut() {
            Some(sink) => sink.rotate(horizon),
            None => Vec::new(),
        }
    }

    /// Ingest one pre-aggregated flow export record (the NetFlow/IPFIX
    /// regime, paper-adjacent FlowDNS): no packets ever existed, so the
    /// flow starts *and* finishes here. Tagging, warm-up gating, and delay
    /// accounting run exactly as [`ShardEngine::on_flow_started`] would at
    /// the flow's first-packet time; DPI falls back to the server port
    /// (payload bytes don't exist in this regime).
    // lint_root(ingest): handler for attacker-controlled flow-record exports
    pub(crate) fn ingest_flow_export(&mut self, seq: u64, rec: &dnhunter_net::FlowExportRecord) {
        let ts = rec.first_ts;
        let in_warmup = self
            .trace_start
            .is_some_and(|t0| ts.saturating_sub(t0) < self.config.warmup_micros);
        let label = self.resolver.lookup(rec.client, rec.server);
        if !in_warmup {
            self.stats.tag_attempts += 1;
            tm_count!(Tm::TagAttempts);
            if label.is_some() {
                self.stats.tag_hits += 1;
                tm_count!(Tm::TagHits);
            }
        }
        let mut tag_delay = None;
        let mut first_flow_delay = None;
        if let Some(&idx) = self.response_index.get(&(rec.client, rec.server)) {
            if let Some(resp) = self.responses.get_mut(idx) {
                let delay = ts.saturating_sub(resp.ts);
                if resp.first_flow_delay.is_none() {
                    resp.first_flow_delay = Some(delay);
                    first_flow_delay = Some(delay);
                }
                self.any_flow_delays.push((seq, delay));
                tag_delay = Some(delay);
            }
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            if let Some(d) = first_flow_delay {
                sink.on_first_flow_delay(ts, d);
            }
            if let Some(d) = tag_delay {
                sink.on_any_flow_delay(ts, d);
            }
        }
        let protocol = dnhunter_flow::AppProtocol::from_server_port(rec.server_port);
        tm_count!(match protocol {
            dnhunter_flow::AppProtocol::Http => Tm::DpiHttp,
            dnhunter_flow::AppProtocol::Tls => Tm::DpiTls,
            dnhunter_flow::AppProtocol::P2p => Tm::DpiP2p,
            dnhunter_flow::AppProtocol::Dns => Tm::DpiDns,
            dnhunter_flow::AppProtocol::Mail => Tm::DpiMail,
            dnhunter_flow::AppProtocol::Chat => Tm::DpiChat,
            dnhunter_flow::AppProtocol::Other => Tm::DpiOther,
        });
        tm_count!(Tm::FlowsStarted);
        tm_count!(Tm::FlowsFinished);
        let key = FlowKey::from_initiator(
            rec.client,
            rec.server,
            rec.client_port,
            rec.server_port,
            dnhunter_net::IpProtocol::from(rec.ip_proto),
        );
        let flow = TaggedFlow {
            key,
            fqdn: label.map(|arc| (*arc).clone()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: tag_delay,
            first_ts: rec.first_ts,
            last_ts: rec.last_ts,
            packets_c2s: rec.packets_c2s,
            packets_s2c: rec.packets_s2c,
            bytes_c2s: rec.bytes_c2s,
            bytes_s2c: rec.bytes_s2c,
            protocol,
            tls: None,
            in_warmup,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_flow_finished(&flow);
        }
        self.tagged.push(((seq, PHASE_FRAME), flow));
    }

    /// First-packet timestamp of the oldest still-live flow (rotation
    /// horizon clamp; see [`dnhunter_flow::FlowTable::oldest_live_first_ts`]).
    pub(crate) fn oldest_live_first_ts(&self) -> Option<u64> {
        self.flows.oldest_live_first_ts()
    }

    /// End of trace: flush live flows and hand over everything accumulated.
    pub(crate) fn finish_shard(mut self) -> ShardOutput {
        for event in self.flows.flush() {
            if let FlowEvent::FlowFinished(record) = event {
                self.on_flow_finished((u64::MAX, PHASE_SCAN), *record);
            }
        }
        ShardOutput {
            stats: self.stats,
            resolver_stats: *self.resolver.stats(),
            intern: self.resolver.intern_stats(),
            responses: self.responses,
            dns_response_times: self.dns_response_times,
            answers_per_response: self.answers_per_response,
            any_flow_delays: self.any_flow_delays,
            tagged: self.tagged,
            sink: self.sink,
        }
    }
}

fn add_sniffer_stats(into: &mut SnifferStats, from: &SnifferStats) {
    into.frames += from.frames;
    into.parse_errors += from.parse_errors;
    into.frames_truncated += from.frames_truncated;
    into.checksum_errors += from.checksum_errors;
    into.dns_queries += from.dns_queries;
    into.dns_responses += from.dns_responses;
    into.dns_decode_errors += from.dns_decode_errors;
    into.tag_attempts += from.tag_attempts;
    into.tag_hits += from.tag_hits;
}

fn add_resolver_stats(into: &mut ResolverStats, from: &ResolverStats) {
    into.responses += from.responses;
    into.bindings += from.bindings;
    into.replaced_same_fqdn += from.replaced_same_fqdn;
    into.replaced_different_fqdn += from.replaced_different_fqdn;
    into.evictions += from.evictions;
    into.lookups += from.lookups;
    into.hits += from.hits;
}

/// Merge shard outputs into the one [`SnifferReport`] the offline
/// analytics consume.
///
/// Counters are summed; every sample stream is re-ordered under the global
/// [`EventKey`] order (stable, so same-key samples keep their within-shard
/// order — a frame never splits across shards). Finished flows sort by
/// `(EventKey, first_ts, 5-tuple)`, reproducing the sequential sniffer's
/// database row order exactly: frame events precede the scan their frame
/// gated open, and scan evictions across shards interleave in the flow
/// table's deterministic `(first_ts, 5-tuple)` order. With one shard the
/// sort is the identity, so the sequential report *is* the merged report
/// of a single shard.
// lint_root(determinism): the deterministic merge that assembles the final report
pub(crate) fn assemble_report(
    outputs: Vec<ShardOutput>,
    dispatch_stats: SnifferStats,
    trace_start: Option<u64>,
    trace_end: Option<u64>,
    warmup_micros: u64,
) -> SnifferReport {
    let _merge_timer = tm_span!(Tm::MergeNanos);
    let mut stats = dispatch_stats;
    let mut resolver_stats = ResolverStats::default();
    let mut responses: Vec<ResponseRecord> = Vec::new();
    let mut dns_response_times: Vec<(u64, u64)> = Vec::new();
    let mut answers_per_response: Vec<(u64, usize)> = Vec::new();
    let mut any_flow_delays: Vec<(u64, u64)> = Vec::new();
    let mut tagged: Vec<(EventKey, TaggedFlow)> = Vec::new();
    for out in outputs {
        add_sniffer_stats(&mut stats, &out.stats);
        add_resolver_stats(&mut resolver_stats, &out.resolver_stats);
        responses.extend(out.responses);
        dns_response_times.extend(out.dns_response_times);
        answers_per_response.extend(out.answers_per_response);
        any_flow_delays.extend(out.any_flow_delays);
        tagged.extend(out.tagged);
    }
    responses.sort_by_key(|r| r.seq);
    dns_response_times.sort_by_key(|&(seq, _)| seq);
    answers_per_response.sort_by_key(|&(seq, _)| seq);
    any_flow_delays.sort_by_key(|&(seq, _)| seq);
    tagged.sort_by_key(|(at, f)| {
        (
            *at,
            f.first_ts,
            f.key.client,
            f.key.client_port,
            f.key.server,
            f.key.server_port,
            f.key.protocol,
        )
    });

    let mut delays = DelaySamples {
        any_flow_delays: any_flow_delays.into_iter().map(|(_, d)| d).collect(),
        ..DelaySamples::default()
    };
    for r in &responses {
        delays.answered_responses += 1;
        match r.first_flow_delay {
            Some(d) => delays.first_flow_delays.push(d),
            None => delays.useless_responses += 1,
        }
    }

    let suffixes = SuffixSet::builtin();
    let mut database = FlowDatabase::new();
    for (_, flow) in tagged {
        database.push(flow, &suffixes);
    }

    SnifferReport {
        database,
        sniffer_stats: stats,
        resolver_stats,
        delays,
        dns_response_times: dns_response_times.into_iter().map(|(_, t)| t).collect(),
        answers_per_response: answers_per_response.into_iter().map(|(_, n)| n).collect(),
        trace_start,
        trace_end,
        warmup_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn stats(
        frames: u64,
        parse_errors: u64,
        frames_truncated: u64,
        checksum_errors: u64,
        dns_queries: u64,
        dns_responses: u64,
        dns_decode_errors: u64,
        tag_attempts: u64,
        tag_hits: u64,
    ) -> SnifferStats {
        SnifferStats {
            frames,
            parse_errors,
            frames_truncated,
            checksum_errors,
            dns_queries,
            dns_responses,
            dns_decode_errors,
            tag_attempts,
            tag_hits,
        }
    }

    #[test]
    fn sniffer_stats_accumulate_field_by_field() {
        let mut into = stats(10, 1, 1, 0, 2, 3, 0, 4, 2);
        add_sniffer_stats(&mut into, &stats(5, 2, 1, 1, 1, 2, 7, 3, 1));
        assert_eq!(into, stats(15, 3, 2, 1, 3, 5, 7, 7, 3));
    }

    #[test]
    fn sniffer_stats_zero_shard_is_identity() {
        let mut into = stats(10, 1, 1, 0, 2, 3, 4, 5, 6);
        add_sniffer_stats(&mut into, &SnifferStats::default());
        assert_eq!(into, stats(10, 1, 1, 0, 2, 3, 4, 5, 6));
    }

    #[test]
    fn note_parse_error_classifies_fault_families() {
        let mut s = SnifferStats::default();
        s.note_parse_error(&dnhunter_net::NetError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 7,
        });
        s.note_parse_error(&dnhunter_net::NetError::BadChecksum {
            layer: "ipv4",
            expected: 1,
            found: 2,
        });
        s.note_parse_error(&dnhunter_net::NetError::Unsupported {
            layer: "ethernet",
            detail: "arp".into(),
        });
        assert_eq!(s.parse_errors, 3);
        assert_eq!(s.frames_truncated, 1);
        assert_eq!(s.checksum_errors, 1);
    }

    #[test]
    fn resolver_stats_accumulate_field_by_field() {
        let mut into = ResolverStats {
            responses: 1,
            bindings: 2,
            replaced_same_fqdn: 3,
            replaced_different_fqdn: 4,
            evictions: 5,
            lookups: 6,
            hits: 7,
        };
        let from = ResolverStats {
            responses: 10,
            bindings: 20,
            replaced_same_fqdn: 30,
            replaced_different_fqdn: 40,
            evictions: 50,
            lookups: 60,
            hits: 70,
        };
        add_resolver_stats(&mut into, &from);
        assert_eq!(into.responses, 11);
        assert_eq!(into.bindings, 22);
        assert_eq!(into.replaced_same_fqdn, 33);
        assert_eq!(into.replaced_different_fqdn, 44);
        assert_eq!(into.evictions, 55);
        assert_eq!(into.lookups, 66);
        assert_eq!(into.hits, 77);
    }
}
