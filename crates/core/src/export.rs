//! Flow-log export in the spirit of Tstat's `log_tcp_complete` — the tool
//! DN-Hunter shipped inside at the paper's EU1 vantage points (§2.1). One
//! space-separated row per flow, with the DN-Hunter FQDN as the final
//! column, plus a CSV variant for spreadsheet-side analysis.

use std::io::{self, Write};

use crate::db::FlowDatabase;

/// Column headers of the Tstat-style log, in order.
pub const TSTAT_COLUMNS: [&str; 12] = [
    "c_ip", "c_port", "s_ip", "s_port", "c_pkts", "s_pkts", "c_bytes", "s_bytes", "first_ms",
    "last_ms", "proto", "fqdn",
];

/// Write the database as a Tstat-style space-separated log. A `#`-prefixed
/// header row names the columns; untagged flows print `-` for the FQDN.
// lint_root(determinism): log output must be byte-identical across worker counts
pub fn write_tstat_log<W: Write>(db: &FlowDatabase, mut w: W) -> io::Result<()> {
    writeln!(w, "#{}", TSTAT_COLUMNS.join(" "))?;
    for f in db.flows() {
        writeln!(
            w,
            "{} {} {} {} {} {} {} {} {} {} {} {}",
            f.key.client,
            f.key.client_port,
            f.key.server,
            f.key.server_port,
            f.packets_c2s,
            f.packets_s2c,
            f.bytes_c2s,
            f.bytes_s2c,
            f.first_ts / 1_000,
            f.last_ts / 1_000,
            f.protocol.label(),
            f.fqdn
                .as_ref()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        )?;
    }
    Ok(())
}

/// Write the database as CSV with the same columns (quoted FQDN).
// lint_root(determinism): CSV output must be byte-identical across worker counts
pub fn write_csv<W: Write>(db: &FlowDatabase, mut w: W) -> io::Result<()> {
    writeln!(w, "{}", TSTAT_COLUMNS.join(","))?;
    for f in db.flows() {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},\"{}\"",
            f.key.client,
            f.key.client_port,
            f.key.server,
            f.key.server_port,
            f.packets_c2s,
            f.packets_s2c,
            f.bytes_c2s,
            f.bytes_s2c,
            f.first_ts / 1_000,
            f.last_ts / 1_000,
            f.protocol.label(),
            f.fqdn.as_ref().map(|x| x.to_string()).unwrap_or_default(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TaggedFlow;
    use dnhunter_dns::suffix::SuffixSet;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn sample_db() -> FlowDatabase {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        db.push(
            TaggedFlow {
                key: FlowKey::from_initiator(
                    "10.0.0.1".parse().unwrap(),
                    "93.184.216.34".parse().unwrap(),
                    51000,
                    443,
                    IpProtocol::Tcp,
                ),
                fqdn: Some("www.example.com".parse().unwrap()),
                second_level: None,
                alt_labels: Vec::new(),
                tag_delay_micros: Some(1_000),
                first_ts: 5_000_000,
                last_ts: 6_500_000,
                packets_c2s: 7,
                packets_s2c: 9,
                bytes_c2s: 800,
                bytes_s2c: 40_000,
                protocol: AppProtocol::Tls,
                tls: None,
                in_warmup: false,
            },
            &s,
        );
        db.push(
            TaggedFlow {
                key: FlowKey::from_initiator(
                    "10.0.0.2".parse().unwrap(),
                    "171.4.4.4".parse().unwrap(),
                    40000,
                    6881,
                    IpProtocol::Tcp,
                ),
                fqdn: None,
                second_level: None,
                alt_labels: Vec::new(),
                tag_delay_micros: None,
                first_ts: 7_000_000,
                last_ts: 7_100_000,
                packets_c2s: 3,
                packets_s2c: 3,
                bytes_c2s: 300,
                bytes_s2c: 9_000,
                protocol: AppProtocol::P2p,
                tls: None,
                in_warmup: false,
            },
            &s,
        );
        db
    }

    #[test]
    fn tstat_log_format() {
        let mut out = Vec::new();
        write_tstat_log(&sample_db(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("#c_ip c_port"));
        assert_eq!(
            lines[1],
            "10.0.0.1 51000 93.184.216.34 443 7 9 800 40000 5000 6500 tls www.example.com"
        );
        assert!(lines[2].ends_with(" p2p -"));
        // Every data row has the declared column count.
        for l in &lines[1..] {
            assert_eq!(l.split(' ').count(), TSTAT_COLUMNS.len());
        }
    }

    #[test]
    fn csv_format() {
        let mut out = Vec::new();
        write_csv(&sample_db(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], TSTAT_COLUMNS.join(","));
        assert!(lines[1].ends_with(",tls,\"www.example.com\""));
        assert!(lines[2].ends_with(",p2p,\"\""));
    }

    #[test]
    fn empty_db_writes_header_only() {
        let mut out = Vec::new();
        write_tstat_log(&FlowDatabase::new(), &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }
}
