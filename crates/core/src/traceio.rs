//! Flight-recorder glue between the pipeline and its consumers: drop
//! accounting into the metric catalog, `--explain` target parsing, and the
//! file-writing helpers the CLI and the fault harnesses share.
//!
//! Lives in the core crate (not `dnhunter-telemetry`) so the
//! [`TraceEventsDropped`](dnhunter_telemetry::Metric::TraceEventsDropped)
//! update below is a cataloged `tm_count!` site like any other pipeline
//! metric — the telemetry crate itself defines the catalog and is excluded
//! from that audit.

use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

use dnhunter_telemetry::{self as telemetry, tm_count, ExplainTarget, Metric as Tm, TraceSet};

/// Fold a trace set's ring-overwrite count into the bound registry and
/// return it. Call once per run, after the pipeline's joins: the count is
/// cumulative over the set's lifetime, so one post-run reading is exact.
pub fn note_trace_drops(set: &Arc<TraceSet>) -> u64 {
    let dropped = set.dropped_total();
    if dropped > 0 {
        tm_count!(Tm::TraceEventsDropped, dropped);
    }
    dropped
}

/// Parse a `--explain` operand: `IP:PORT` names a server endpoint (the
/// flow-side provenance key), anything else must parse as a domain name
/// (the DNS-side key). Both hash through the same functions the engine's
/// trace events use, so the keys join without storing strings.
pub fn parse_explain_target(s: &str) -> Option<ExplainTarget> {
    if let Ok(addr) = s.parse::<SocketAddr>() {
        let key = dnhunter_flow::server_trace_key(addr.ip(), addr.port());
        return Some(ExplainTarget::server(s, key));
    }
    // The wire codec accepts nearly any label bytes (RFC 1035 is
    // permissive), but a CLI operand with whitespace — or nothing at
    // all — is a typo, not the root domain.
    if s.is_empty() || s.contains(char::is_whitespace) {
        return None;
    }
    let name: dnhunter_dns::DomainName = s.parse().ok()?;
    Some(ExplainTarget::fqdn(name.to_string(), name.trace_key()))
}

/// Write the Chrome `trace_event` export (open with `chrome://tracing` or
/// Perfetto) for everything the set's lanes currently hold.
pub fn write_chrome_trace(set: &Arc<TraceSet>, path: &Path) -> io::Result<()> {
    std::fs::write(path, telemetry::chrome_trace(set))
}

/// Write the line-oriented JSONL dump — the same shape the dump-on-fault
/// hook emits, for when a post-mortem wants `grep` instead of a UI.
pub fn write_trace_jsonl(set: &Arc<TraceSet>, path: &Path) -> io::Result<()> {
    std::fs::write(path, telemetry::trace_jsonl(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_telemetry::ArgKind;

    #[test]
    fn explain_target_parses_server_endpoints() {
        let t = parse_explain_target("93.184.216.34:443").expect("socket addr");
        assert_eq!(t.kind, ArgKind::ServerKey);
        assert_eq!(
            t.key,
            dnhunter_flow::server_trace_key("93.184.216.34".parse().unwrap(), 443)
        );
    }

    #[test]
    fn explain_target_parses_fqdns() {
        let t = parse_explain_target("www.example.com").expect("fqdn");
        let name: dnhunter_dns::DomainName = "www.example.com".parse().unwrap();
        assert_eq!(t.kind, ArgKind::FqdnKey);
        assert_eq!(t.key, name.trace_key());
    }

    #[test]
    fn explain_target_rejects_garbage() {
        assert!(parse_explain_target("").is_none());
        assert!(parse_explain_target("not a name").is_none());
    }

    #[test]
    fn drop_accounting_reads_the_set_total() {
        let set = TraceSet::new();
        assert_eq!(note_trace_drops(&set), 0);
    }
}
