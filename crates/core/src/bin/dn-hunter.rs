//! `dn-hunter` — run the sniffer over a pcap file and report labeled flows.
//!
//! ```text
//! dn-hunter capture.pcap                  # summary + sample of labels
//! dn-hunter capture.pcap --flows          # one line per labeled flow
//! dn-hunter capture.pcap --json > db.jsonl# labeled-flow DB as JSON lines
//! dn-hunter capture.pcap --port 443       # service tags for one port
//! dn-hunter capture.pcap --metrics m.jsonl --metrics-interval 60 --workers 4
//! #   live telemetry: one JSONL snapshot per 60s of *trace* time, plus a
//! #   final Prometheus exposition at m.jsonl.prom
//! dn-hunter capture.pcap --trace-out run.trace.json --workers 4
//! #   flight-recorder export: Chrome trace_event JSON, one lane per
//! #   pipeline thread (open with chrome://tracing or Perfetto)
//! dn-hunter capture.pcap --trace-out run.trace.json --workers 4 --dispatchers 2
//! #   same, but replaying from memory through the full dispatcher stage so
//! #   the export also shows per-dispatcher lanes and token hand-offs
//! dn-hunter capture.pcap --explain www.example.com
//! dn-hunter capture.pcap --explain 93.184.216.34:443
//! #   provenance: the causal chain of trace events that tagged (or failed
//! #   to tag) the flows behind one FQDN or server endpoint
//! cat capture.pcap | dn-hunter - --stream-analytics w.jsonl \
//!     --window 1h --slide 5m --rotate 10m
//! #   daemon mode: poll a pcap byte stream (FIFO, pipe, socket) and rotate
//! #   window state every 10 minutes of packet time — rotated output is
//! #   byte-identical to a batch --window run over the same bytes
//! dn-hunter flows.dnfr --flowrec --flowrec-skew 30s
//! #   flow-record regime: ingest a NetFlow/IPFIX-style export stream
//! #   (gen-trace --flowrec-out) through a bounded reorder buffer
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

use dnhunter::{
    DaemonSniffer, FlowSink, FlowrecConfig, ParallelSniffer, RealTimeSniffer, Rotation,
    SnifferConfig, SnifferReport, StreamingAnalytics, StreamingConfig, WindowConfig,
    WindowedAnalytics,
};
use dnhunter_net::{
    FlowRecReader, FrameSource, PcapFileSource, PcapReader, PcapRecord, PcapStreamSource,
};
use dnhunter_telemetry as telemetry;

fn usage() -> &'static str {
    "usage: dn-hunter <capture.pcap|-> [--flows] [--json] [--tstat] [--csv] [--port N] \
     [--warmup SECS] [--workers N] [--metrics FILE] [--metrics-interval SECS] [--metrics-full] \
     [--stream-analytics FILE] [--stream-interval SECS] [--window DUR] [--slide DUR] \
     [--rotate DUR] [--flowrec] [--flowrec-skew DUR] \
     [--dispatchers N] [--trace-out FILE] [--explain FQDN|IP:PORT]\n\
     DUR is seconds, or a number suffixed s/m/h (e.g. --window 1h --slide 5m); --window \
     switches --stream-analytics to sliding-window JSONL output; '-' reads a pcap byte \
     stream from stdin (FIFO/pipe daemon mode); --rotate retires window state every DUR \
     of packet time; --flowrec ingests a DNFR flow-record export stream instead of pcap"
}

/// Parse `30`, `30s`, `5m`, or `1h` into microseconds.
fn parse_duration_micros(s: &str) -> Option<u64> {
    let (digits, unit) = match s.strip_suffix(['s', 'm', 'h']) {
        Some(d) => (d, &s[s.len() - 1..]),
        None => (s, "s"),
    };
    let n: u64 = digits.parse().ok()?;
    let per_unit = match unit {
        "s" => 1_000_000,
        "m" => 60 * 1_000_000,
        _ => 3_600 * 1_000_000,
    };
    n.checked_mul(per_unit)
}

/// Which analytics sink `--stream-analytics` installs: the since-start
/// accumulator, or (with `--window`) the sliding-window sink.
#[derive(Clone)]
enum SinkMode {
    Plain(StreamingConfig),
    Windowed(WindowConfig),
}

impl SinkMode {
    fn make_sink(&self) -> Box<dyn FlowSink> {
        match self {
            SinkMode::Plain(cfg) => Box::new(StreamingAnalytics::new(cfg.clone())),
            SinkMode::Windowed(cfg) => Box::new(WindowedAnalytics::new(cfg.clone())),
        }
    }

    /// Fold per-worker partials and render the mode's JSONL output.
    fn fold_render(&self, sinks: Vec<Box<dyn FlowSink>>) -> Option<String> {
        match self {
            SinkMode::Plain(_) => StreamingAnalytics::fold(sinks).map(|s| s.render()),
            SinkMode::Windowed(_) => WindowedAnalytics::fold(sinks).map(|w| w.render()),
        }
    }
}

/// Either sniffer behind one replay loop, so `--workers`/`--metrics`
/// compose with every output mode.
enum Driver {
    Seq(Box<RealTimeSniffer>),
    Par(Box<ParallelSniffer>),
}

impl Driver {
    fn process_record(&mut self, rec: &PcapRecord) {
        match self {
            Driver::Seq(s) => s.process_record(rec),
            Driver::Par(p) => p.process_record(rec),
        }
    }

    /// Live view: the dispatcher thread's registry plus (for the parallel
    /// sniffer) a racy-but-monotone sum of the workers' registries.
    fn live_snapshot(&self, registry: &telemetry::Registry) -> telemetry::Snapshot {
        let mut snap = registry.snapshot();
        if let Driver::Par(p) = self {
            snap.merge(&p.worker_telemetry_snapshot());
        }
        snap
    }

    fn finish(self) -> (SnifferReport, Vec<Box<dyn FlowSink>>) {
        match self {
            Driver::Seq(s) => s.finish_with_sinks(),
            Driver::Par(p) => p.finish_with_sinks(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut flows = false;
    let mut json = false;
    let mut tstat = false;
    let mut csv = false;
    let mut port: Option<u16> = None;
    let mut warmup_secs: u64 = 300;
    let mut workers: usize = 1;
    let mut metrics_path: Option<String> = None;
    let mut metrics_interval_secs: u64 = 60;
    let mut metrics_full = false;
    let mut stream_path: Option<String> = None;
    let mut stream_interval_secs: u64 = 300;
    let mut window_micros: Option<u64> = None;
    let mut slide_micros: Option<u64> = None;
    let mut trace_out: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut dispatchers: Option<usize> = None;
    let mut rotate_micros: Option<u64> = None;
    let mut flowrec = false;
    let mut flowrec_skew_micros: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--flows" => flows = true,
            "--json" => json = true,
            "--tstat" => tstat = true,
            "--csv" => csv = true,
            "--metrics-full" => metrics_full = true,
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => workers = n,
                    _ => {
                        eprintln!("--workers needs a count >= 1\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--metrics" => {
                i += 1;
                match args.get(i) {
                    Some(p) => metrics_path = Some(p.clone()),
                    None => {
                        eprintln!("--metrics needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--metrics-interval" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) if s >= 1 => metrics_interval_secs = s,
                    _ => {
                        eprintln!("--metrics-interval needs seconds >= 1\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--stream-analytics" => {
                i += 1;
                match args.get(i) {
                    Some(p) => stream_path = Some(p.clone()),
                    None => {
                        eprintln!("--stream-analytics needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--stream-interval" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) if s >= 1 => stream_interval_secs = s,
                    _ => {
                        eprintln!("--stream-interval needs seconds >= 1\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--window" => {
                i += 1;
                match args.get(i).and_then(|s| parse_duration_micros(s)) {
                    Some(w) if w >= 1_000_000 => window_micros = Some(w),
                    _ => {
                        eprintln!(
                            "--window needs a duration >= 1s (e.g. 1h, 5m, 30s)\n{}",
                            usage()
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--slide" => {
                i += 1;
                match args.get(i).and_then(|s| parse_duration_micros(s)) {
                    Some(w) if w >= 1_000_000 => slide_micros = Some(w),
                    _ => {
                        eprintln!("--slide needs a duration >= 1s (e.g. 5m, 30s)\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--rotate" => {
                i += 1;
                match args.get(i).and_then(|s| parse_duration_micros(s)) {
                    Some(r) if r >= 1_000_000 => rotate_micros = Some(r),
                    _ => {
                        eprintln!(
                            "--rotate needs a duration >= 1s (e.g. 10m, 1h)\n{}",
                            usage()
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--flowrec" => flowrec = true,
            "--flowrec-skew" => {
                i += 1;
                match args.get(i).and_then(|s| parse_duration_micros(s)) {
                    Some(s) => flowrec_skew_micros = Some(s),
                    _ => {
                        eprintln!(
                            "--flowrec-skew needs a duration (e.g. 30s, 2m)\n{}",
                            usage()
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dispatchers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => dispatchers = Some(n),
                    _ => {
                        eprintln!("--dispatchers needs a count >= 1\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_out = Some(p.clone()),
                    None => {
                        eprintln!("--trace-out needs a file path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--explain" => {
                i += 1;
                match args.get(i) {
                    Some(t) => explain = Some(t.clone()),
                    None => {
                        eprintln!("--explain needs an FQDN or IP:PORT\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--port" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) => port = Some(p),
                    None => {
                        eprintln!("--port needs a number\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--warmup" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(w) => warmup_secs = w,
                    None => {
                        eprintln!("--warmup needs seconds\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "-" if path.is_none() => path = Some("-".to_string()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument '{other}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `--dispatchers` replays the whole capture from memory in one burst, so
    // there is no trace-time replay loop for `--metrics` to schedule mid-run
    // snapshots on. Refusing the combination is more honest than silently
    // emitting a single final line.
    if slide_micros.is_some() && window_micros.is_none() {
        eprintln!("--slide needs --window\n{}", usage());
        return ExitCode::FAILURE;
    }
    if window_micros.is_some() && stream_path.is_none() {
        eprintln!(
            "--window needs --stream-analytics FILE to write the windowed JSONL to\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if dispatchers.is_some() && metrics_path.is_some() {
        eprintln!(
            "--dispatchers and --metrics do not compose: the dispatcher replay has no \
             per-packet loop to emit interval snapshots from\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    let stdin_input = path == "-";
    if rotate_micros.is_some() && window_micros.is_none() {
        eprintln!(
            "--rotate needs --window: rotation retires sliding-window buckets\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if rotate_micros.is_some() && dispatchers.is_some() {
        eprintln!(
            "--rotate and --dispatchers do not compose: the multi-dispatcher replay has no \
             single packet clock while its slices parse concurrently\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if stdin_input && dispatchers.is_some() {
        eprintln!(
            "--dispatchers replays a file from memory; it cannot poll stdin\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if flowrec && (dispatchers.is_some() || workers > 1) {
        eprintln!(
            "--flowrec is a sequential regime: flow records are pre-aggregated, so the \
             sharded pipeline has nothing to parallelise\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if flowrec && metrics_path.is_some() {
        eprintln!(
            "--flowrec and --metrics do not compose yet: the flow-record loop has no \
             per-packet clock for interval snapshots\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }
    if flowrec_skew_micros.is_some() && !flowrec {
        eprintln!("--flowrec-skew needs --flowrec\n{}", usage());
        return ExitCode::FAILURE;
    }

    let config = SnifferConfig {
        warmup_micros: warmup_secs * 1_000_000,
        ..SnifferConfig::default()
    };

    // Parse the explain target up front, so a typo fails before the replay
    // rather than after it.
    let explain_target = match &explain {
        Some(s) => match dnhunter::parse_explain_target(s) {
            Some(t) => Some(t),
            None => {
                eprintln!("--explain target '{s}' is neither a domain name nor IP:PORT");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Like telemetry below, the flight recorder must be bound *before* the
    // parallel sniffer spawns its threads: each dispatcher and worker binds
    // its own lane off the set it finds at construction time.
    let trace_set =
        (trace_out.is_some() || explain_target.is_some()).then(telemetry::TraceSet::new);
    let _trace_guard = trace_set
        .as_ref()
        .map(|set| telemetry::trace_bind(set, telemetry::LaneKind::Driver, 0));
    if let Some(set) = &trace_set {
        // Dump-on-fault: a panic anywhere flushes the rings next to the
        // requested export (or the pcap, for --explain-only runs).
        let stem = trace_out.as_deref().unwrap_or(&path);
        telemetry::install_fault_dump(format!("{stem}.trace.jsonl").into(), set);
    }

    // Telemetry must be bound *before* the parallel sniffer spawns its
    // workers — construction is when it decides to give each shard a
    // registry of its own.
    let registry = metrics_path
        .as_ref()
        .map(|_| Arc::new(telemetry::Registry::new()));
    let _telemetry_guard = registry.clone().map(telemetry::bind);
    let mut metrics_out = match &metrics_path {
        Some(p) => match File::create(p) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot create metrics file {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Snapshots are scheduled on packet timestamps, so a replayed trace
    // emits the same lines a live capture would have.
    let mut emitter = telemetry::SnapshotEmitter::new(metrics_interval_secs * 1_000_000);

    // Like telemetry, streaming sinks must be installed before the parallel
    // workers spawn: each shard owns a partial sink and the final fold
    // reconstitutes the sequential answer deterministically. `--window`
    // swaps the since-start accumulator for the sliding-window sink.
    let stream_cfg = stream_path.as_ref().map(|_| {
        let stream = StreamingConfig {
            snapshot_interval_micros: stream_interval_secs * 1_000_000,
            ..StreamingConfig::default()
        };
        match window_micros {
            Some(w) => {
                let mut wc = WindowConfig::new(w, slide_micros.unwrap_or(300 * 1_000_000));
                wc.stream = stream;
                SinkMode::Windowed(wc)
            }
            None => SinkMode::Plain(stream),
        }
    });
    // Rotation state outlives the replay: the emitter's `finish` folds the
    // post-run sinks in, replacing the batch fold below.
    let mut rotation = rotate_micros.map(|r| {
        let Some(SinkMode::Windowed(wc)) = &stream_cfg else {
            unreachable!("--rotate validated to require --window")
        };
        Rotation::new(r, wc.clone())
    });
    let mut last_ts = 0u64;
    let (report, sinks) = if flowrec {
        // Flow-record regime: a DNFR export stream through the bounded
        // reorder buffer, sequential by construction.
        let mut sniffer = RealTimeSniffer::new(config);
        if let Some(mode) = &stream_cfg {
            sniffer.set_sink(mode.make_sink());
        }
        let input: Box<dyn Read> = if stdin_input {
            Box::new(std::io::stdin().lock())
        } else {
            match File::open(&path) {
                Ok(f) => Box::new(BufReader::new(f)),
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let mut reader = match FlowRecReader::new(input) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("not a readable flow-record stream: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fcfg = FlowrecConfig {
            skew_micros: flowrec_skew_micros.unwrap_or(FlowrecConfig::default().skew_micros),
            ..FlowrecConfig::default()
        };
        match dnhunter::run_flowrec_daemon(&mut reader, &mut sniffer, &fcfg, rotation.as_mut()) {
            Ok(stats) => eprintln!(
                "flow-record ingest: {} dns, {} flow, {} skew-overflow, {} late",
                stats.dns_records, stats.flow_records, stats.skew_overflow, stats.late_records
            ),
            Err(e) => {
                eprintln!("flow-record stream error: {e}");
                return ExitCode::FAILURE;
            }
        }
        sniffer.finish_with_sinks()
    } else if let Some(dispatchers) = dispatchers {
        // Pull mode: load the capture, then drive the full dispatcher stage
        // (batched rings, token hand-off) exactly as `run_records` does in
        // tests — this is the only way the flight recorder sees dispatcher
        // lanes and token acquire/release events.
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reader = match PcapReader::new(BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("not a readable pcap: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut records: Vec<PcapRecord> = Vec::new();
        for rec in reader {
            match rec {
                Ok(r) => {
                    last_ts = last_ts.max(r.timestamp_micros());
                    records.push(r);
                }
                Err(e) => {
                    eprintln!("pcap error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match &stream_cfg {
            Some(mode) => {
                let (report, _, sinks) = dnhunter::run_records_with_sinks(
                    &config,
                    workers,
                    dispatchers,
                    &records,
                    &mut |_| mode.make_sink(),
                );
                (report, sinks)
            }
            None => {
                let (report, _) = dnhunter::run_records(&config, workers, dispatchers, &records);
                (report, Vec::new())
            }
        }
    } else if rotate_micros.is_some() || stdin_input {
        // Daemon mode: poll a frame source (file or byte stream) through
        // the event loop, rotating window state on the packet clock. The
        // same loop serves batch `--rotate` runs — rotated output is a
        // function of the record stream alone, so file and FIFO replays of
        // the same bytes render byte-identically at any worker count.
        let mut sniffer = if workers > 1 {
            DaemonSniffer::Par(Box::new(match &stream_cfg {
                Some(mode) => {
                    ParallelSniffer::with_sinks(config, workers, &mut |_| mode.make_sink())
                }
                None => ParallelSniffer::new(config, workers),
            }))
        } else {
            let mut s = RealTimeSniffer::new(config);
            if let Some(mode) = &stream_cfg {
                s.set_sink(mode.make_sink());
            }
            DaemonSniffer::Seq(Box::new(s))
        };
        let mut source: Box<dyn FrameSource> = if stdin_input {
            Box::new(PcapStreamSource::new(std::io::stdin().lock()))
        } else {
            let file = match File::open(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match PcapFileSource::new(BufReader::new(file)) {
                Ok(s) => Box::new(s),
                Err(e) => {
                    eprintln!("not a readable pcap: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        // Mid-run snapshots read only the driver registry (worker
        // registries merge at finish); the final line below is exact.
        let mut metrics_err: Option<std::io::Error> = None;
        let run =
            dnhunter::run_frame_daemon(source.as_mut(), &mut sniffer, rotation.as_mut(), |ts| {
                last_ts = last_ts.max(ts);
                if let (Some(out), Some(reg)) = (metrics_out.as_mut(), registry.as_deref()) {
                    if emitter.poll(ts) && metrics_err.is_none() {
                        let seq = emitter.emitted().saturating_sub(1);
                        let line = telemetry::jsonl(&reg.snapshot(), seq, ts, metrics_full);
                        if let Err(e) = out.write_all(line.as_bytes()) {
                            metrics_err = Some(e);
                        }
                    }
                }
            });
        if let Err(e) = run {
            eprintln!("pcap stream error: {e}");
            return ExitCode::FAILURE;
        }
        if let Some(e) = metrics_err {
            eprintln!("metrics write failed: {e}");
            return ExitCode::FAILURE;
        }
        sniffer.finish_with_sinks()
    } else {
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let reader = match PcapReader::new(BufReader::new(file)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("not a readable pcap: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut driver = if workers > 1 {
            Driver::Par(Box::new(match &stream_cfg {
                Some(mode) => {
                    ParallelSniffer::with_sinks(config, workers, &mut |_| mode.make_sink())
                }
                None => ParallelSniffer::new(config, workers),
            }))
        } else {
            let mut s = RealTimeSniffer::new(config);
            if let Some(mode) = &stream_cfg {
                s.set_sink(mode.make_sink());
            }
            Driver::Seq(Box::new(s))
        };
        for rec in reader {
            match rec {
                Ok(r) => {
                    let ts = r.timestamp_micros();
                    last_ts = last_ts.max(ts);
                    driver.process_record(&r);
                    if let (Some(out), Some(reg)) = (metrics_out.as_mut(), registry.as_deref()) {
                        if emitter.poll(ts) {
                            let seq = emitter.emitted().saturating_sub(1);
                            let line =
                                telemetry::jsonl(&driver.live_snapshot(reg), seq, ts, metrics_full);
                            if let Err(e) = out.write_all(line.as_bytes()) {
                                eprintln!("metrics write failed: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("pcap error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        driver.finish()
    };
    // Fold the flight recorder's drop count into the registry before the
    // final snapshot: a wrapped ring means the export below is partial.
    if let Some(set) = &trace_set {
        let dropped = dnhunter::note_trace_drops(set);
        if dropped > 0 {
            eprintln!("trace rings dropped {dropped} events; the export is partial");
        }
    }

    // Fold the per-worker partial analytics into one deterministic summary
    // (byte-identical for any --workers count) and write it out. Under
    // --rotate the incremental emitter has already rendered every retired
    // window; `finish` folds in the post-rotation residue the sinks hold.
    if let (Some(out_path), Some(mode)) = (&stream_path, &stream_cfg) {
        let rendered = match rotation.take() {
            Some(rot) => {
                let rotations = rot.rotations;
                Some(rot.emitter.finish(rotations, sinks))
            }
            None => mode.fold_render(sinks),
        };
        match rendered {
            Some(rendered) => {
                if let Err(e) = std::fs::write(out_path, rendered) {
                    eprintln!("cannot write streaming analytics to {out_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!("streaming analytics sinks were lost; no output written");
                return ExitCode::FAILURE;
            }
        }
    }

    // Final snapshot: `finish` merged every worker registry into ours, so
    // the stable-class values here match a sequential run byte-for-byte.
    if let (Some(out), Some(reg), Some(path)) = (
        metrics_out.as_mut(),
        registry.as_deref(),
        metrics_path.as_deref(),
    ) {
        let snap = reg.snapshot();
        let final_write = out
            .write_all(telemetry::jsonl(&snap, emitter.emitted(), last_ts, metrics_full).as_bytes())
            .and_then(|()| {
                std::fs::write(
                    format!("{path}.prom"),
                    telemetry::prometheus(&snap, metrics_full),
                )
            });
        if let Err(e) = final_write {
            eprintln!("metrics write failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Flight-recorder export: one Chrome trace_event JSON with a lane per
    // pipeline thread (plus the token hand-off lane).
    if let (Some(set), Some(out_path)) = (&trace_set, &trace_out) {
        if let Err(e) = dnhunter::write_chrome_trace(set, std::path::Path::new(out_path)) {
            eprintln!("cannot write trace to {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Provenance mode: print the causal chain and stop — the summary would
    // only bury it.
    if let (Some(set), Some(target)) = (&trace_set, &explain_target) {
        print!("{}", telemetry::explain(set, target));
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", report.database.to_json_lines());
        return ExitCode::SUCCESS;
    }
    if tstat || csv {
        let result = if tstat {
            dnhunter::write_tstat_log(&report.database, std::io::stdout().lock())
        } else {
            dnhunter::write_csv(&report.database, std::io::stdout().lock())
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            // A closed pipe (`| head`) is a normal way to stop reading.
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("write failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(port) = port {
        let suffixes = dnhunter_dns::suffix::SuffixSet::builtin();
        // Inline Algorithm 4, so the binary has no analytics dependency.
        let mut per_client: HashMap<(String, std::net::IpAddr), u64> = HashMap::new();
        for f in report.database.by_port(port) {
            if let Some(fqdn) = &f.fqdn {
                for token in dnhunter_dns::tokenize_fqdn(fqdn, &suffixes) {
                    *per_client.entry((token, f.key.client)).or_default() += 1;
                }
            }
        }
        let mut scores: HashMap<String, f64> = HashMap::new();
        for ((token, _), n) in per_client {
            *scores.entry(token).or_default() += ((n + 1) as f64).ln();
        }
        let mut ranked: Vec<(String, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!("service tags for port {port}:");
        for (token, score) in ranked.into_iter().take(10) {
            println!("  ({score:.0}) {token}");
        }
        return ExitCode::SUCCESS;
    }

    if flows {
        for f in report.database.flows() {
            println!(
                "{}\t{}\t{}:{}\t{}\t{}B",
                f.fqdn
                    .as_ref()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "-".into()),
                f.key.client,
                f.key.server,
                f.key.server_port,
                f.protocol.label(),
                f.bytes(),
            );
        }
        return ExitCode::SUCCESS;
    }

    // Default: summary.
    println!("frames          : {}", report.sniffer_stats.frames);
    println!("parse errors    : {}", report.sniffer_stats.parse_errors);
    println!("dns responses   : {}", report.sniffer_stats.dns_responses);
    println!("flows           : {}", report.database.len());
    println!("distinct FQDNs  : {}", report.database.distinct_fqdns());
    println!("distinct servers: {}", report.database.distinct_servers());
    println!(
        "hit ratio       : {:.1}% (post {warmup_secs}s warm-up)",
        report.hit_ratio() * 100.0
    );
    // Per-protocol hit ratios, the paper's Tab. 2 framing (P2P never
    // resolves names, so the overall number understates coverage).
    let mut per_proto: HashMap<&str, (u64, u64)> = HashMap::new();
    for f in report.database.flows() {
        if f.in_warmup {
            continue;
        }
        let e = per_proto.entry(f.protocol.label()).or_default();
        e.0 += 1;
        e.1 += u64::from(f.is_tagged());
    }
    let mut keys: Vec<&&str> = per_proto.keys().collect();
    keys.sort();
    for k in keys {
        let (n, h) = per_proto[*k];
        println!("  {k:<6}: {:>5.1}% of {n}", 100.0 * h as f64 / n as f64);
    }
    println!(
        "useless DNS     : {:.1}%",
        report.delays.useless_fraction() * 100.0
    );
    println!("\ntop labels by flows:");
    let mut counts: Vec<(String, usize)> = report
        .database
        .fqdn_flow_counts()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    // Tie-break by name: `by_fqdn` iterates in randomized hash order, so
    // without this the top-15 cutoff varies run to run on tied counts.
    counts.sort_by(|(fa, na), (fb, nb)| nb.cmp(na).then_with(|| fa.cmp(fb)));
    for (fqdn, n) in counts.into_iter().take(15) {
        println!("  {n:>6}  {fqdn}");
    }
    ExitCode::SUCCESS
}
