//! The real-time sniffer: DNS response sniffer + flow sniffer + flow tagger
//! (paper Fig. 1 and §3.1).

use dnhunter_dns::codec;
use dnhunter_flow::{CompactSeg, FlowTableConfig};
use dnhunter_net::seg::{parse_flat, FlatParse, FlatSeg, FrameFault};
use dnhunter_net::{IpProtocol, PcapRecord};
use dnhunter_resolver::{DnsResolver, OrderedTables, ResolverConfig, ResolverStats};
use dnhunter_telemetry::{self as telemetry, tm_count, tm_trace, Metric as Tm, TraceEvent as Te};
use serde::{Deserialize, Serialize};

use crate::db::FlowDatabase;
use crate::engine::{assemble_report, ShardEngine};
use crate::policy::PolicyEnforcer;
use crate::stream::{FlowSink, StreamingAnalytics};

/// Sniffer configuration.
#[derive(Debug, Clone)]
pub struct SnifferConfig {
    pub resolver: ResolverConfig,
    pub flow_table: FlowTableConfig,
    /// UDP port carrying DNS (53 everywhere, configurable for tests).
    pub dns_port: u16,
    /// Flows starting within this window after the first frame are marked
    /// `in_warmup` and excluded from hit-ratio accounting (the paper uses
    /// 5 minutes).
    pub warmup_micros: u64,
}

impl Default for SnifferConfig {
    fn default() -> Self {
        SnifferConfig {
            resolver: ResolverConfig::default(),
            flow_table: FlowTableConfig::default(),
            dns_port: 53,
            warmup_micros: 5 * 60 * 1_000_000,
        }
    }
}

/// Frame/packet-level counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnifferStats {
    pub frames: u64,
    pub parse_errors: u64,
    /// Subset of `parse_errors`: frames cut short of a header or length
    /// field (snaplen truncation — the §3.2 vantage point's reality).
    pub frames_truncated: u64,
    /// Subset of `parse_errors`: frames failing a header checksum
    /// (on-the-wire corruption).
    pub checksum_errors: u64,
    pub dns_queries: u64,
    pub dns_responses: u64,
    pub dns_decode_errors: u64,
    /// Flow-start tag attempts and successes, outside warm-up.
    pub tag_attempts: u64,
    pub tag_hits: u64,
}

impl SnifferStats {
    /// Record one rejected frame, classing truncation and checksum failure
    /// apart from other malformations — the three fault families a passive
    /// capture point actually produces. Both drivers (sequential and
    /// pipeline dispatcher) route their parse rejects through here so the
    /// merged report counts each class identically.
    pub fn note_parse_error(&mut self, err: &dnhunter_net::NetError) {
        self.note_parse_fault(FrameFault::of(err));
    }

    /// [`SnifferStats::note_parse_error`] for the flat parser's
    /// pre-classified fault families — the hot-path form, no error value to
    /// inspect (or allocate).
    pub fn note_parse_fault(&mut self, fault: FrameFault) {
        self.parse_errors += 1;
        match fault {
            FrameFault::Truncated => self.frames_truncated += 1,
            FrameFault::Checksum => self.checksum_errors += 1,
            FrameFault::Malformed => {}
        }
    }

    /// Fold another partial count into this one (element-wise sum) — how
    /// the multi-dispatcher pipeline merges its per-slice dispatcher
    /// counters before `assemble_report` adds the worker engines' share.
    pub fn absorb(&mut self, other: &SnifferStats) {
        self.frames += other.frames;
        self.parse_errors += other.parse_errors;
        self.frames_truncated += other.frames_truncated;
        self.checksum_errors += other.checksum_errors;
        self.dns_queries += other.dns_queries;
        self.dns_responses += other.dns_responses;
        self.dns_decode_errors += other.dns_decode_errors;
        self.tag_attempts += other.tag_attempts;
        self.tag_hits += other.tag_hits;
    }
}

/// Timing samples for Figs. 12–13 and the useless-DNS fraction (Tab. 9).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct DelaySamples {
    /// Per DNS response: µs until the *first* flow to any answered server.
    pub first_flow_delays: Vec<u64>,
    /// µs from a response to *every* subsequent flow using it.
    pub any_flow_delays: Vec<u64>,
    /// Responses (with at least one answer) never followed by a flow.
    pub useless_responses: u64,
    /// Responses carrying at least one A/AAAA answer.
    pub answered_responses: u64,
}

impl DelaySamples {
    /// Fraction of answered responses never followed by any flow.
    pub fn useless_fraction(&self) -> f64 {
        if self.answered_responses == 0 {
            0.0
        } else {
            self.useless_responses as f64 / self.answered_responses as f64
        }
    }
}

/// Everything the offline analyzer needs, produced by
/// [`RealTimeSniffer::finish`].
pub struct SnifferReport {
    pub database: FlowDatabase,
    pub sniffer_stats: SnifferStats,
    pub resolver_stats: ResolverStats,
    pub delays: DelaySamples,
    /// Timestamp (µs) of every DNS response seen (Fig. 14 time series).
    pub dns_response_times: Vec<u64>,
    /// Answer-list length of every DNS response with answers (§6).
    pub answers_per_response: Vec<usize>,
    /// First and last frame timestamps.
    pub trace_start: Option<u64>,
    pub trace_end: Option<u64>,
    pub warmup_micros: u64,
}

/// The DN-Hunter real-time sniffer.
///
/// Feed it raw Ethernet frames (or pcap records) in timestamp order; it
/// demultiplexes DNS responses into the [`DnsResolver`], reconstructs every
/// other UDP/TCP flow, tags each flow at its first packet, and accumulates
/// the labeled-flow database.
///
/// This is the single-threaded driver over one
/// [`crate::engine::ShardEngine`] — the same engine the parallel
/// [`crate::ParallelSniffer`] runs per worker, which is what makes the
/// parallel merge byte-identical to this sniffer's output.
pub struct RealTimeSniffer {
    engine: ShardEngine,
    /// Global frame sequence number (orders events in the merge).
    seq: u64,
    /// Eviction-scan clock, replicating the flow table's interval gate.
    last_eviction: u64,
    trace_start: Option<u64>,
    trace_end: Option<u64>,
}

impl RealTimeSniffer {
    /// Build a sniffer.
    pub fn new(config: SnifferConfig) -> Self {
        let resolver_config = config.resolver;
        RealTimeSniffer {
            engine: ShardEngine::new(config, resolver_config),
            seq: 0,
            last_eviction: 0,
            trace_start: None,
            trace_end: None,
        }
    }

    /// Access the live resolver (e.g. to pre-warm it).
    pub fn resolver_mut(&mut self) -> &mut DnsResolver<OrderedTables> {
        self.engine.resolver_mut()
    }

    /// Install a streaming-analytics sink fed as flows are labeled and
    /// expire; retrieve it with [`RealTimeSniffer::finish_with_sinks`].
    pub fn set_sink(&mut self, sink: Box<dyn FlowSink>) {
        self.engine.set_sink(sink);
    }

    /// Frame counters so far.
    pub fn stats(&self) -> &SnifferStats {
        &self.engine.stats
    }

    /// Process one pcap record.
    pub fn process_record(&mut self, rec: &PcapRecord) {
        self.process_frame(rec.timestamp_micros(), &rec.frame);
    }

    /// Process one raw Ethernet frame with its capture timestamp (µs).
    // lint_root(ingest): sequential ingest entry, one call per captured frame
    pub fn process_frame(&mut self, ts: u64, frame: &[u8]) {
        self.process_frame_with_policy(ts, frame, None::<&mut crate::policy::RuleEnforcer>);
    }

    /// Like [`RealTimeSniffer::process_frame`], invoking `enforcer` at every
    /// flow start (with the label, when the resolver had one).
    // lint_root(ingest): sequential ingest entry, one call per captured frame
    pub fn process_frame_with_policy<E: PolicyEnforcer>(
        &mut self,
        ts: u64,
        frame: &[u8],
        mut enforcer: Option<&mut E>,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.engine.stats.frames += 1;
        tm_count!(Tm::IngestFrames);
        self.trace_start.get_or_insert(ts);
        self.engine.note_trace_start(ts);
        self.trace_end = Some(self.trace_end.map_or(ts, |t| t.max(ts)));
        let seg = match parse_flat(frame) {
            Ok(FlatParse::Seg(seg)) => seg,
            // Not reconstructed; never advances the eviction-scan clock
            // (matching `FlowTable::process`, which returned before its
            // internal scan gate for opaque transports).
            Ok(FlatParse::Opaque) => return,
            Err(fault) => {
                self.engine.stats.note_parse_fault(fault);
                if telemetry::trace_enabled() {
                    tm_trace!(Te::FrameParse, seq, ts, fault as u64, frame.len() as u64);
                }
                return;
            }
        };
        // DNS demultiplexing: traffic to/from the DNS port is the
        // measurement channel, not user traffic. TCP is used after
        // truncated UDP responses (RFC 1035 §4.2.2 framing).
        let dns_port = self.engine.config.dns_port;
        match seg.proto {
            IpProtocol::Udp => {
                if seg.src_port == dns_port {
                    self.engine
                        .handle_dns_payload(seq, ts, seg.dst, seg.payload);
                    return;
                }
                if seg.dst_port == dns_port {
                    self.engine.stats.dns_queries += 1;
                    tm_count!(Tm::IngestDnsQueries);
                    return;
                }
            }
            // `parse_flat` only yields TCP or UDP segments.
            _ => {
                if seg.src_port == dns_port {
                    for msg in codec::decode_tcp_stream(seg.payload) {
                        self.engine.handle_dns_message(seq, ts, seg.dst, &msg);
                    }
                    return;
                }
                if seg.dst_port == dns_port {
                    if !seg.payload.is_empty() {
                        self.engine.stats.dns_queries += 1;
                        tm_count!(Tm::IngestDnsQueries);
                    }
                    return;
                }
            }
        }
        // Everything else is a data segment: flow reconstruction + tagging,
        // then the same periodic eviction scan `FlowTable::process` ran
        // internally — driven here so the pipeline dispatcher can replicate
        // the identical gate when it broadcasts ticks to shard workers.
        let (cseg, head) = compact_seg(&seg);
        self.engine.process_seg(seq, ts, &cseg, head, &mut enforcer);
        if ts.saturating_sub(self.last_eviction)
            >= self.engine.config.flow_table.eviction_interval_micros
        {
            self.last_eviction = ts;
            self.engine.tick(seq, ts);
        }
    }

    /// Retire windowed-analytics buckets below the rotation horizon,
    /// returning the retired `(bucket, partial)` pairs in bucket order.
    /// The horizon is `clock` clamped down to the oldest live flow's first
    /// timestamp, so no window a live flow can still contribute to is ever
    /// emitted early — [`crate::ParallelSniffer::rotate`] computes the same
    /// horizon from its routing-table mirror, which is what makes rotated
    /// output identical at every worker count.
    // lint_root(determinism): sequential half of the rotation contract
    pub fn rotate(&mut self, clock: u64) -> (u64, Vec<(u64, StreamingAnalytics)>) {
        let horizon = self
            .engine
            .oldest_live_first_ts()
            .map_or(clock, |t| t.min(clock));
        (horizon, self.engine.rotate(horizon))
    }

    /// Ingest one decoded flow-export record — the NetFlow/IPFIX-style
    /// regime, where the probe ships pre-aggregated flow summaries and
    /// mirrored DNS payloads instead of raw frames. DNS records feed
    /// Algorithm 1 exactly as sniffed responses do; flow records are
    /// tagged and emitted directly (there is nothing to reconstruct).
    // lint_root(ingest): flow-export ingest entry, attacker-controlled records
    pub fn ingest_export(&mut self, rec: &dnhunter_net::ExportRecord) {
        let seq = self.seq;
        self.seq += 1;
        let ts = rec.event_ts();
        self.trace_start.get_or_insert(ts);
        self.engine.note_trace_start(ts);
        self.trace_end = Some(self.trace_end.map_or(ts, |t| t.max(ts)));
        match rec {
            dnhunter_net::ExportRecord::Dns(d) => {
                self.engine
                    .handle_dns_payload(seq, d.ts_micros, d.client, &d.message);
            }
            dnhunter_net::ExportRecord::Flow(f) => {
                self.engine.ingest_flow_export(seq, f);
            }
        }
    }

    /// End of trace: flush live flows and assemble the report.
    pub fn finish(self) -> SnifferReport {
        self.finish_with_sinks().0
    }

    /// [`RealTimeSniffer::finish`], also handing back the sink installed
    /// with [`RealTimeSniffer::set_sink`] (empty vec when none was). The
    /// one-element vec mirrors [`crate::ParallelSniffer::finish_with_sinks`]
    /// so drivers fold both shapes through the same code path.
    pub fn finish_with_sinks(self) -> (SnifferReport, Vec<Box<dyn FlowSink>>) {
        let warmup = self.engine.config.warmup_micros;
        let mut out = self.engine.finish_shard();
        let sinks: Vec<Box<dyn FlowSink>> = out.sink.take().into_iter().collect();
        let report = assemble_report(
            vec![out],
            SnifferStats::default(),
            self.trace_start,
            self.trace_end,
            warmup,
        );
        (report, sinks)
    }
}

/// Project a flat-parsed segment onto the flow table's
/// ([`CompactSeg`], head bytes) shape — shared by the sequential driver
/// and the pipeline dispatcher.
pub(crate) fn compact_seg<'a>(seg: &FlatSeg<'a>) -> (CompactSeg, &'a [u8]) {
    (
        CompactSeg {
            src: seg.src,
            src_port: seg.src_port,
            dst: seg.dst,
            dst_port: seg.dst_port,
            proto: seg.proto,
            tcp_flags: seg.tcp_flags,
            tcp_seq: seg.tcp_seq,
            wire_bytes: seg.wire_bytes,
            payload_len: seg.payload.len(),
        },
        seg.payload,
    )
}

impl SnifferReport {
    /// Hit ratio over post-warm-up flows: the paper's "DNS hit ratio".
    pub fn hit_ratio(&self) -> f64 {
        if self.sniffer_stats.tag_attempts == 0 {
            0.0
        } else {
            self.sniffer_stats.tag_hits as f64 / self.sniffer_stats.tag_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyAction, PolicyRule, RuleEnforcer};
    use dnhunter_dns::{DnsMessage, QClass, QType, RData, ResourceRecord};
    use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};
    use std::net::Ipv4Addr;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 5);
    const DNS_SERVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);
    const WEB_SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_id(i)
    }

    fn dns_response_frame(name: &str, servers: &[Ipv4Addr], id: u16) -> Vec<u8> {
        let q = DnsMessage::query(id, name.parse().unwrap(), QType::A);
        let answers = servers
            .iter()
            .map(|s| ResourceRecord {
                name: name.parse().unwrap(),
                class: QClass::In,
                ttl: 300,
                rdata: RData::A(*s),
            })
            .collect();
        let resp = DnsMessage::answer_to(&q, answers);
        build_udp_v4(
            mac(1),
            mac(2),
            DNS_SERVER,
            CLIENT,
            53,
            40000,
            &codec::encode(&resp).unwrap(),
        )
        .unwrap()
    }

    fn syn_frame(server: Ipv4Addr, dport: u16, sport: u16) -> Vec<u8> {
        build_tcp_v4(
            mac(1),
            mac(2),
            CLIENT,
            server,
            sport,
            dport,
            1,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap()
    }

    fn no_warmup_config() -> SnifferConfig {
        SnifferConfig {
            warmup_micros: 0,
            ..SnifferConfig::default()
        }
    }

    #[test]
    fn tags_flow_after_response() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(
            1_000_000,
            &dns_response_frame("www.example.com", &[WEB_SERVER], 1),
        );
        s.process_frame(1_500_000, &syn_frame(WEB_SERVER, 443, 50001));
        let report = s.finish();
        assert_eq!(report.database.len(), 1);
        let f = &report.database.flows()[0];
        assert_eq!(f.fqdn.as_ref().unwrap().to_string(), "www.example.com");
        assert_eq!(f.tag_delay_micros, Some(500_000));
        assert_eq!(report.hit_ratio(), 1.0);
        assert_eq!(report.sniffer_stats.dns_responses, 1);
        assert_eq!(report.delays.first_flow_delays, vec![500_000]);
        assert_eq!(report.delays.useless_responses, 0);
    }

    #[test]
    fn midstream_flow_is_tagged_on_first_observed_segment() {
        // The capture starts mid-stream: the flow's first observed segment
        // is a data packet, no SYN ever seen. Algorithm 1 keys on
        // (client, server IP), not on handshake state, so the tagger must
        // still label the flow at that first segment.
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(
            1_000_000,
            &dns_response_frame("cdn.example.com", &[WEB_SERVER], 7),
        );
        let data = build_tcp_v4(
            mac(1),
            mac(2),
            CLIENT,
            WEB_SERVER,
            50003,
            443,
            123_456,
            1,
            TcpFlags::PSH | TcpFlags::ACK,
            b"\x17\x03\x01\x00\x10opaque-appdata..",
        )
        .unwrap();
        s.process_frame(2_000_000, &data);
        let report = s.finish();
        assert_eq!(report.database.len(), 1);
        let f = &report.database.flows()[0];
        assert_eq!(f.fqdn.as_ref().unwrap().to_string(), "cdn.example.com");
        assert_eq!(report.hit_ratio(), 1.0);
    }

    #[test]
    fn flow_without_dns_is_untagged() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(1_000_000, &syn_frame(WEB_SERVER, 80, 50002));
        let report = s.finish();
        assert_eq!(report.database.len(), 1);
        assert!(!report.database.flows()[0].is_tagged());
        assert_eq!(report.hit_ratio(), 0.0);
    }

    #[test]
    fn useless_response_is_counted() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(
            1_000_000,
            &dns_response_frame("prefetch.example.com", &[WEB_SERVER], 2),
        );
        let report = s.finish();
        assert_eq!(report.delays.answered_responses, 1);
        assert_eq!(report.delays.useless_responses, 1);
        assert_eq!(report.delays.useless_fraction(), 1.0);
    }

    #[test]
    fn warmup_flows_excluded_from_hit_ratio() {
        let mut s = RealTimeSniffer::new(SnifferConfig {
            warmup_micros: 10_000_000,
            ..SnifferConfig::default()
        });
        // Flow at t=1s (inside warm-up): doesn't count.
        s.process_frame(1_000_000, &syn_frame(WEB_SERVER, 80, 50003));
        // Response + flow at t=20s: counts and hits.
        s.process_frame(
            20_000_000,
            &dns_response_frame("late.example.com", &[WEB_SERVER], 3),
        );
        s.process_frame(20_100_000, &syn_frame(WEB_SERVER, 443, 50004));
        let report = s.finish();
        assert_eq!(report.sniffer_stats.tag_attempts, 1);
        assert_eq!(report.sniffer_stats.tag_hits, 1);
        let warm: Vec<bool> = report
            .database
            .flows()
            .iter()
            .map(|f| f.in_warmup)
            .collect();
        assert!(warm.contains(&true) && warm.contains(&false));
    }

    #[test]
    fn second_flow_to_same_binding_counts_in_any_delays_only() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(
            1_000_000,
            &dns_response_frame("multi.example.com", &[WEB_SERVER], 4),
        );
        s.process_frame(1_200_000, &syn_frame(WEB_SERVER, 443, 50005));
        s.process_frame(3_000_000, &syn_frame(WEB_SERVER, 443, 50006));
        let report = s.finish();
        assert_eq!(report.delays.first_flow_delays, vec![200_000]);
        assert_eq!(report.delays.any_flow_delays, vec![200_000, 2_000_000]);
    }

    #[test]
    fn policy_applies_at_first_packet() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        let mut enforcer =
            RuleEnforcer::new(vec![
                PolicyRule::new("zynga.com", PolicyAction::Block).unwrap()
            ]);
        s.process_frame(
            1_000_000,
            &dns_response_frame("farm.zynga.com", &[WEB_SERVER], 5),
        );
        s.process_frame_with_policy(
            1_100_000,
            &syn_frame(WEB_SERVER, 443, 50007),
            Some(&mut enforcer),
        );
        assert_eq!(enforcer.blocked(), 1);
        assert!(enforcer.decisions()[0].at_first_packet);
    }

    #[test]
    fn queries_are_counted_but_not_inserted() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        let q = DnsMessage::query(9, "ask.example.com".parse().unwrap(), QType::A);
        let frame = build_udp_v4(
            mac(1),
            mac(2),
            CLIENT,
            DNS_SERVER,
            40000,
            53,
            &codec::encode(&q).unwrap(),
        )
        .unwrap();
        s.process_frame(1_000, &frame);
        let report = s.finish();
        assert_eq!(report.sniffer_stats.dns_queries, 1);
        assert_eq!(report.sniffer_stats.dns_responses, 0);
    }

    #[test]
    fn garbage_frames_are_counted_as_parse_errors() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        s.process_frame(1, &[0u8; 7]);
        s.process_frame(2, b"not a frame at all, definitely not");
        assert_eq!(s.stats().parse_errors, 2);
    }

    #[test]
    fn answers_per_response_distribution_is_recorded() {
        let mut s = RealTimeSniffer::new(no_warmup_config());
        let many: Vec<Ipv4Addr> = (0..16).map(|i| Ipv4Addr::new(74, 125, 0, i)).collect();
        s.process_frame(1_000, &dns_response_frame("www.google.com", &many, 6));
        s.process_frame(
            2_000,
            &dns_response_frame("single.example.com", &[WEB_SERVER], 7),
        );
        let report = s.finish();
        assert_eq!(report.answers_per_response, vec![16, 1]);
    }

    #[test]
    fn useless_fraction_with_no_answered_responses_is_zero() {
        // No answered responses at all: 0/0 must read as 0, not NaN.
        let d = DelaySamples::default();
        assert_eq!(d.useless_fraction(), 0.0);
    }

    #[test]
    fn useless_fraction_all_useless() {
        let d = DelaySamples {
            useless_responses: 4,
            answered_responses: 4,
            ..DelaySamples::default()
        };
        assert_eq!(d.useless_fraction(), 1.0);
    }

    #[test]
    fn useless_fraction_mixed() {
        let d = DelaySamples {
            first_flow_delays: vec![100, 200, 300],
            useless_responses: 1,
            answered_responses: 4,
            ..DelaySamples::default()
        };
        assert_eq!(d.useless_fraction(), 0.25);
    }
}
