//! Policy enforcement on freshly tagged flows.
//!
//! The paper's motivating scenario (§1): *block all traffic to Zynga games
//! but prioritize DropBox*, even though both are encrypted and both live on
//! Amazon EC2 — impossible with DPI or IP filters, trivial once every flow
//! carries its FQDN. Because DN-Hunter tags a flow at its **first packet**
//! (the DNS response preceded it), a policy applies to the whole flow,
//! including the TCP handshake.

use std::fmt;

use dnhunter_dns::DomainName;
use dnhunter_flow::FlowKey;
use serde::{Deserialize, Serialize};

/// What to do with a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PolicyAction {
    /// Forward normally.
    #[default]
    Allow,
    /// Drop all packets.
    Block,
    /// Queue with elevated priority (higher number = more urgent).
    Prioritize(u8),
    /// Queue with reduced priority.
    Deprioritize,
    /// Cap the flow's rate (bytes/s).
    RateLimit(u64),
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyAction::Allow => write!(f, "allow"),
            PolicyAction::Block => write!(f, "block"),
            PolicyAction::Prioritize(p) => write!(f, "prioritize({p})"),
            PolicyAction::Deprioritize => write!(f, "deprioritize"),
            PolicyAction::RateLimit(bps) => write!(f, "rate-limit({bps} B/s)"),
        }
    }
}

/// A rule: a domain pattern and the action for flows whose label matches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Matches the FQDN itself or any subdomain of it: the pattern
    /// `zynga.com` matches `farm.zynga.com`.
    pub domain: DomainName,
    pub action: PolicyAction,
}

impl PolicyRule {
    /// Build a rule from a domain string.
    pub fn new(domain: &str, action: PolicyAction) -> Result<Self, dnhunter_dns::DnsError> {
        Ok(PolicyRule {
            domain: domain.parse()?,
            action,
        })
    }

    /// Does this rule match the label?
    pub fn matches(&self, fqdn: &DomainName) -> bool {
        fqdn.is_subdomain_of(&self.domain)
    }
}

/// A decision taken for one flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyDecision {
    pub key: FlowKey,
    pub fqdn: Option<DomainName>,
    pub action: PolicyAction,
    /// True when the decision was available at the flow's first packet
    /// (the DNS label pre-dated the flow) — the paper's headline advantage
    /// over DPI, which must wait for payload to match a signature.
    pub at_first_packet: bool,
}

/// Anything that reacts to tagged flow starts.
pub trait PolicyEnforcer {
    /// Called when a flow starts; `fqdn` is the label (None = resolver miss).
    fn on_flow_start(&mut self, key: FlowKey, fqdn: Option<&DomainName>) -> PolicyAction;
}

/// Rule-list enforcer: first matching rule wins; unlabeled or unmatched
/// flows get the default action. Records every decision for inspection.
#[derive(Debug, Default)]
pub struct RuleEnforcer {
    rules: Vec<PolicyRule>,
    default_action: PolicyAction,
    decisions: Vec<PolicyDecision>,
    blocked: u64,
    prioritized: u64,
}

impl RuleEnforcer {
    /// Enforcer with the given rules and `Allow` default.
    pub fn new(rules: Vec<PolicyRule>) -> Self {
        RuleEnforcer {
            rules,
            default_action: PolicyAction::Allow,
            decisions: Vec::new(),
            blocked: 0,
            prioritized: 0,
        }
    }

    /// Override the default action.
    pub fn with_default(mut self, action: PolicyAction) -> Self {
        self.default_action = action;
        self
    }

    /// All recorded decisions.
    pub fn decisions(&self) -> &[PolicyDecision] {
        &self.decisions
    }

    /// Count of blocked flows.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Count of prioritized flows.
    pub fn prioritized(&self) -> u64 {
        self.prioritized
    }
}

impl PolicyEnforcer for RuleEnforcer {
    fn on_flow_start(&mut self, key: FlowKey, fqdn: Option<&DomainName>) -> PolicyAction {
        let action = fqdn
            .and_then(|f| self.rules.iter().find(|r| r.matches(f)))
            .map(|r| r.action)
            .unwrap_or(self.default_action);
        match action {
            PolicyAction::Block => self.blocked += 1,
            PolicyAction::Prioritize(_) => self.prioritized += 1,
            _ => {}
        }
        self.decisions.push(PolicyDecision {
            key,
            fqdn: fqdn.cloned(),
            action,
            at_first_packet: fqdn.is_some(),
        });
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_net::IpProtocol;

    fn key() -> FlowKey {
        FlowKey::from_initiator(
            "10.0.0.1".parse().unwrap(),
            "54.230.1.1".parse().unwrap(),
            50000,
            443,
            IpProtocol::Tcp,
        )
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn zynga_vs_dropbox_scenario() {
        // Both services live on the same cloud; only the label separates them.
        let mut e = RuleEnforcer::new(vec![
            PolicyRule::new("zynga.com", PolicyAction::Block).unwrap(),
            PolicyRule::new("dropbox.com", PolicyAction::Prioritize(7)).unwrap(),
        ]);
        let a1 = e.on_flow_start(key(), Some(&name("farm.zynga.com")));
        let a2 = e.on_flow_start(key(), Some(&name("client.dropbox.com")));
        assert_eq!(a1, PolicyAction::Block);
        assert_eq!(a2, PolicyAction::Prioritize(7));
        assert_eq!(e.blocked(), 1);
        assert_eq!(e.prioritized(), 1);
        assert!(e.decisions().iter().all(|d| d.at_first_packet));
    }

    #[test]
    fn first_match_wins() {
        let mut e = RuleEnforcer::new(vec![
            PolicyRule::new("mail.google.com", PolicyAction::Prioritize(9)).unwrap(),
            PolicyRule::new("google.com", PolicyAction::Deprioritize).unwrap(),
        ]);
        assert_eq!(
            e.on_flow_start(key(), Some(&name("mail.google.com"))),
            PolicyAction::Prioritize(9)
        );
        assert_eq!(
            e.on_flow_start(key(), Some(&name("docs.google.com"))),
            PolicyAction::Deprioritize
        );
    }

    #[test]
    fn unlabeled_flows_get_default() {
        let mut e = RuleEnforcer::new(vec![
            PolicyRule::new("zynga.com", PolicyAction::Block).unwrap()
        ])
        .with_default(PolicyAction::RateLimit(1_000_000));
        let a = e.on_flow_start(key(), None);
        assert_eq!(a, PolicyAction::RateLimit(1_000_000));
        assert!(!e.decisions()[0].at_first_packet);
    }

    #[test]
    fn pattern_matches_subdomains_not_lookalikes() {
        let r = PolicyRule::new("zynga.com", PolicyAction::Block).unwrap();
        assert!(r.matches(&name("zynga.com")));
        assert!(r.matches(&name("a.b.zynga.com")));
        assert!(!r.matches(&name("notzynga.com")));
        assert!(!r.matches(&name("zynga.com.evil.org")));
    }

    #[test]
    fn action_display() {
        assert_eq!(PolicyAction::Block.to_string(), "block");
        assert_eq!(PolicyAction::Prioritize(3).to_string(), "prioritize(3)");
        assert_eq!(
            PolicyAction::RateLimit(500).to_string(),
            "rate-limit(500 B/s)"
        );
    }
}
