//! Bounded SPSC ring channels for the parallel ingest pipeline.
//!
//! The pipeline's dispatcher (paper §3.2's real-time constraint, scaled out
//! per §3.1.1's load-balancing note) talks to each shard worker over exactly
//! two of these channels: batches of frames flow dispatcher → worker, and
//! drained batch arenas flow worker → dispatcher for reuse. Each channel has
//! one producer and one consumer, a fixed capacity (backpressure, so a slow
//! shard throttles ingest instead of ballooning memory), and closes when
//! either endpoint drops.
//!
//! Built on `std::sync::{Mutex, Condvar}` only — no external dependencies.
//! Under `--cfg loom` the mutex comes from the loom shim (which has no
//! condvar) and blocking operations become yield loops, so the handoff
//! protocol itself is exercised by `tests/loom_ring.rs` across perturbed
//! schedules.

use std::collections::VecDeque;

#[cfg(loom)]
use loom::sync::{Arc, Mutex};
#[cfg(loom)]
use std::sync::MutexGuard;
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Queue state behind the channel's one mutex.
struct State<T> {
    queue: VecDeque<T>,
    /// Set when either endpoint drops; senders then fail, receivers drain.
    closed: bool,
}

/// Shared core of one channel.
struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    #[cfg(not(loom))]
    not_empty: Condvar,
    #[cfg(not(loom))]
    not_full: Condvar,
}

impl<T> Shared<T> {
    /// Lock the state; a poisoned mutex (a panicked peer thread) yields the
    /// inner state anyway — the channel must stay usable so the other
    /// endpoint can observe `closed` and wind down instead of deadlocking.
    #[cfg(not(loom))]
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[cfg(loom)]
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock()
    }
}

/// Producing endpoint. Dropping it closes the channel (the receiver drains
/// what was already queued, then sees end-of-stream).
pub(crate) struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consuming endpoint. Dropping it closes the channel (subsequent sends
/// fail, letting the producer stop early).
pub(crate) struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent value back so the caller can recover it.
#[derive(Debug)]
pub(crate) struct SendError<T>(pub(crate) T);

/// Build a bounded channel of the given capacity (minimum 1).
pub(crate) fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            closed: false,
        }),
        capacity: capacity.max(1),
        #[cfg(not(loom))]
        not_empty: Condvar::new(),
        #[cfg(not(loom))]
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Fails (returning the value)
    /// only when the receiver is gone.
    #[cfg(not(loom))]
    pub(crate) fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                dnhunter_telemetry::tm_observe!(
                    dnhunter_telemetry::Metric::RingOccupancy,
                    st.queue.len() as u64
                );
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            // Count a stall once per blocking send, not once per wakeup.
            if !stalled {
                stalled = true;
                dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::PipelineSendStalls);
            }
            st = match self.shared.not_full.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant: the shim has no condvar, so blocking is a yield loop —
    /// every pass is a schedule-exploration point.
    #[cfg(loom)]
    pub(crate) fn send(&self, value: T) -> Result<(), SendError<T>> {
        loop {
            let mut st = self.shared.lock();
            if st.closed {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                return Ok(());
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Enqueue without blocking; on a full or closed channel the value comes
    /// straight back. Used for the best-effort arena recycle path, where
    /// dropping a buffer is acceptable and blocking the worker is not.
    pub(crate) fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        if st.closed || st.queue.len() >= self.shared.capacity {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        #[cfg(not(loom))]
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        drop(st);
        #[cfg(not(loom))]
        self.shared.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives; `None` once the channel is closed *and*
    /// drained (so nothing sent before the close is ever lost).
    #[cfg(not(loom))]
    pub(crate) fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if st.closed {
                return None;
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant of [`Receiver::recv`] (yield loop, see [`Sender::send`]).
    #[cfg(loom)]
    pub(crate) fn recv(&self) -> Option<T> {
        loop {
            let mut st = self.shared.lock();
            if let Some(value) = st.queue.pop_front() {
                return Some(value);
            }
            if st.closed {
                return None;
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Dequeue without blocking; `None` when the queue is currently empty
    /// (closed or not). Used by the dispatcher to opportunistically reuse
    /// recycled arenas.
    pub(crate) fn try_recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        let value = st.queue.pop_front();
        #[cfg(not(loom))]
        if value.is_some() {
            self.shared.not_full.notify_one();
        }
        value
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        st.queue.clear();
        drop(st);
        #[cfg(not(loom))]
        self.shared.not_full.notify_all();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_close_on_sender_drop() {
        let (tx, rx) = channel::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).map_err(|_| "receiver gone")?;
            }
            Ok::<(), &str>(())
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(producer.join().is_ok());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert!(tx.try_send(7).is_err());
    }

    #[test]
    fn try_ops_do_not_block() {
        let (tx, rx) = channel::<u32>(1);
        assert!(rx.try_recv().is_none());
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_err()); // full
        assert_eq!(rx.try_recv(), Some(1));
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn queued_values_survive_sender_drop() {
        let (tx, rx) = channel::<u32>(4);
        assert!(tx.send(1).is_ok());
        assert!(tx.send(2).is_ok());
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }
}
