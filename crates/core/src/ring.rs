//! Bounded SPSC ring channels for the parallel ingest pipeline.
//!
//! The pipeline's dispatcher (paper §3.2's real-time constraint, scaled out
//! per §3.1.1's load-balancing note) talks to each shard worker over exactly
//! two of these channels: batches of frames flow dispatcher → worker, and
//! drained batch arenas flow worker → dispatcher for reuse. Each channel has
//! one producer and one consumer, a fixed capacity (backpressure, so a slow
//! shard throttles ingest instead of ballooning memory), and closes when
//! either endpoint drops.
//!
//! Built on `std::sync::{Mutex, Condvar}` only — no external dependencies.
//! Under `--cfg loom` the mutex comes from the loom shim (which has no
//! condvar) and blocking operations become yield loops, so the handoff
//! protocol itself is exercised by `tests/loom_ring.rs` across perturbed
//! schedules (which also drive the batched operations directly — the
//! module is `pub` under `--cfg loom` for exactly that).
//!
//! Per-item locking is pure overhead at millions of frames per second, so
//! every endpoint has batched forms ([`Sender::send_batch`],
//! [`Receiver::recv_batch`] and their non-blocking `try_` variants) that
//! move N values per lock acquisition; the singular blocking forms remain
//! for control edges (the multi-dispatcher routing token).

use std::collections::VecDeque;

#[cfg(loom)]
use loom::sync::{Arc, Mutex};
#[cfg(loom)]
use std::sync::MutexGuard;
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Queue state behind the channel's one mutex.
struct State<T> {
    queue: VecDeque<T>,
    /// Set when either endpoint drops; senders then fail, receivers drain.
    closed: bool,
}

/// Shared core of one channel.
struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    #[cfg(not(loom))]
    not_empty: Condvar,
    #[cfg(not(loom))]
    not_full: Condvar,
}

impl<T> Shared<T> {
    /// Lock the state; a poisoned mutex (a panicked peer thread) yields the
    /// inner state anyway — the channel must stay usable so the other
    /// endpoint can observe `closed` and wind down instead of deadlocking.
    #[cfg(not(loom))]
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[cfg(loom)]
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock()
    }
}

/// Producing endpoint. Dropping it closes the channel (the receiver drains
/// what was already queued, then sees end-of-stream).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consuming endpoint. Dropping it closes the channel (subsequent sends
/// fail, letting the producer stop early).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent value back so the caller can recover it.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Build a bounded channel of the given capacity (minimum 1).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            closed: false,
        }),
        capacity: capacity.max(1),
        #[cfg(not(loom))]
        not_empty: Condvar::new(),
        #[cfg(not(loom))]
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue. Fails (returning the value)
    /// only when the receiver is gone.
    #[cfg(not(loom))]
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                dnhunter_telemetry::tm_observe!(
                    dnhunter_telemetry::Metric::RingOccupancy,
                    st.queue.len() as u64
                );
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            // Count a stall once per blocking send, not once per wakeup.
            if !stalled {
                stalled = true;
                dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::PipelineSendStalls);
            }
            st = match self.shared.not_full.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant: the shim has no condvar, so blocking is a yield loop —
    /// every pass is a schedule-exploration point.
    #[cfg(loom)]
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        loop {
            let mut st = self.shared.lock();
            if st.closed {
                return Err(SendError(value));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(value);
                return Ok(());
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Enqueue a whole batch under as few lock acquisitions as possible:
    /// drains `values` from the front, moving as many as fit per
    /// acquisition and blocking (like [`Sender::send`]) whenever the ring
    /// is full. On `Err` (receiver gone) the unsent values remain in
    /// `values` for the caller to recover. Counts one `PipelineSendStalls`
    /// per blocking episode: a batch that waits through several wakeups
    /// still counts once.
    #[cfg(not(loom))]
    pub fn send_batch(&self, values: &mut Vec<T>) -> Result<(), SendError<()>> {
        if values.is_empty() {
            return Ok(());
        }
        let mut st = self.shared.lock();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(SendError(()));
            }
            let space = self.shared.capacity - st.queue.len();
            if space > 0 {
                let n = space.min(values.len());
                st.queue.extend(values.drain(..n));
                dnhunter_telemetry::tm_observe!(
                    dnhunter_telemetry::Metric::RingOccupancy,
                    st.queue.len() as u64
                );
                self.shared.not_empty.notify_one();
                if values.is_empty() {
                    return Ok(());
                }
            }
            if !stalled {
                stalled = true;
                dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::PipelineSendStalls);
            }
            st = match self.shared.not_full.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant of [`Sender::send_batch`] (yield loop, see
    /// [`Sender::send`]).
    #[cfg(loom)]
    pub fn send_batch(&self, values: &mut Vec<T>) -> Result<(), SendError<()>> {
        loop {
            let mut st = self.shared.lock();
            if st.closed {
                return Err(SendError(()));
            }
            let space = self.shared.capacity - st.queue.len();
            let n = space.min(values.len());
            st.queue.extend(values.drain(..n));
            if values.is_empty() {
                return Ok(());
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Non-blocking [`Sender::send_batch`]: move as many front values as
    /// currently fit, never waiting. Returns how many moved (0 when full or
    /// closed); the rest remain in `values`. Used for the best-effort arena
    /// recycle path, where dropping a buffer is acceptable and blocking the
    /// worker is not.
    pub fn try_send_batch(&self, values: &mut Vec<T>) -> usize {
        let mut st = self.shared.lock();
        if st.closed {
            return 0;
        }
        let space = self.shared.capacity - st.queue.len();
        let n = space.min(values.len());
        st.queue.extend(values.drain(..n));
        #[cfg(not(loom))]
        if n > 0 {
            self.shared.not_empty.notify_one();
        }
        n
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        drop(st);
        #[cfg(not(loom))]
        self.shared.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives; `None` once the channel is closed *and*
    /// drained (so nothing sent before the close is ever lost).
    #[cfg(not(loom))]
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if st.closed {
                return None;
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant of [`Receiver::recv`] (yield loop, see [`Sender::send`]).
    #[cfg(loom)]
    pub fn recv(&self) -> Option<T> {
        loop {
            let mut st = self.shared.lock();
            if let Some(value) = st.queue.pop_front() {
                return Some(value);
            }
            if st.closed {
                return None;
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Batched [`Receiver::recv`]: block until at least one value is
    /// queued, then drain up to `max` of them into `out` under the single
    /// lock acquisition. Returns how many arrived; `0` means closed *and*
    /// drained (the same end-of-stream contract as [`Receiver::recv`]
    /// returning `None` — nothing sent before the close is ever lost,
    /// because the queue is checked before `closed`).
    #[cfg(not(loom))]
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut st = self.shared.lock();
        loop {
            if !st.queue.is_empty() {
                let n = max.max(1).min(st.queue.len());
                out.extend(st.queue.drain(..n));
                self.shared.not_full.notify_one();
                return n;
            }
            if st.closed {
                return 0;
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Loom variant of [`Receiver::recv_batch`] (yield loop, see
    /// [`Sender::send`]).
    #[cfg(loom)]
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        loop {
            let mut st = self.shared.lock();
            if !st.queue.is_empty() {
                let n = max.max(1).min(st.queue.len());
                out.extend(st.queue.drain(..n));
                return n;
            }
            if st.closed {
                return 0;
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// A DELIBERATELY RACY [`Receiver::recv_batch`] used only to prove the
    /// loom harness would catch an ordering bug in the batched drain: it
    /// checks `closed` *before* looking at the queue, so a producer that
    /// sends a batch and then drops on the wrong interleaving has its
    /// queued values reported as end-of-stream and silently lost.
    /// `tests/loom_ring.rs` asserts loom finds such a schedule.
    #[cfg(loom)]
    pub fn recv_batch_racy(&self, out: &mut Vec<T>, max: usize) -> usize {
        loop {
            let st_probe = self.shared.lock();
            let closed = st_probe.closed;
            drop(st_probe);
            // BUG under scrutiny: the close flag was read in a separate
            // critical section from the drain — a send+drop between the
            // two loses the queued values.
            if closed {
                return 0;
            }
            let mut st = self.shared.lock();
            if !st.queue.is_empty() {
                let n = max.max(1).min(st.queue.len());
                out.extend(st.queue.drain(..n));
                return n;
            }
            drop(st);
            loom::thread::yield_now();
        }
    }

    /// Non-blocking [`Receiver::recv_batch`]: drain up to `max` queued
    /// values into `out` without waiting. Returns how many moved (0 when
    /// empty). Used by the dispatcher to opportunistically reuse recycled
    /// arenas.
    pub fn try_recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut st = self.shared.lock();
        let n = max.min(st.queue.len());
        out.extend(st.queue.drain(..n));
        #[cfg(not(loom))]
        if n > 0 {
            self.shared.not_full.notify_one();
        }
        n
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        st.queue.clear();
        drop(st);
        #[cfg(not(loom))]
        self.shared.not_full.notify_all();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_close_on_sender_drop() {
        let (tx, rx) = channel::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).map_err(|_| "receiver gone")?;
            }
            Ok::<(), &str>(())
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(producer.join().is_ok());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn queued_values_survive_sender_drop() {
        let (tx, rx) = channel::<u32>(4);
        assert!(tx.send(1).is_ok());
        assert!(tx.send(2).is_ok());
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn batched_fifo_across_threads() {
        // Batches larger than the ring capacity must cross intact and in
        // order, the sender blocking through multiple refills.
        let (tx, rx) = channel::<u32>(3);
        let producer = thread::spawn(move || {
            let mut batch: Vec<u32> = (0..50).collect();
            tx.send_batch(&mut batch).map_err(|_| "receiver gone")?;
            assert!(batch.is_empty());
            let mut rest: Vec<u32> = (50..100).collect();
            tx.send_batch(&mut rest).map_err(|_| "receiver gone")?;
            Ok::<(), &str>(())
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        loop {
            let n = rx.recv_batch(&mut buf, 8);
            if n == 0 {
                break;
            }
            assert!(n <= 8);
            got.append(&mut buf);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(producer.join().is_ok());
    }

    #[test]
    fn batched_values_survive_sender_drop() {
        let (tx, rx) = channel::<u32>(4);
        let mut batch = vec![1, 2, 3];
        assert!(tx.send_batch(&mut batch).is_ok());
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 16), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(rx.recv_batch(&mut out, 16), 0);
    }

    #[test]
    fn send_batch_after_receiver_drop_keeps_values() {
        let (tx, rx) = channel::<u32>(2);
        drop(rx);
        let mut batch = vec![7, 8, 9];
        assert!(tx.send_batch(&mut batch).is_err());
        // Nothing was consumed: the caller can recover every value.
        assert_eq!(batch, vec![7, 8, 9]);
    }

    #[test]
    fn try_batches_move_what_fits_and_never_block() {
        let (tx, rx) = channel::<u32>(2);
        let mut batch = vec![1, 2, 3, 4];
        assert_eq!(tx.try_send_batch(&mut batch), 2); // capacity 2
        assert_eq!(batch, vec![3, 4]); // remainder stays
        assert_eq!(tx.try_send_batch(&mut batch), 0); // full
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut out, 1), 1);
        assert_eq!(out, vec![1]);
        assert_eq!(rx.try_recv_batch(&mut out, 8), 1);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(rx.try_recv_batch(&mut out, 8), 0); // empty
        drop(rx);
        assert_eq!(tx.try_send_batch(&mut batch), 0); // closed
        assert_eq!(batch, vec![3, 4]);
    }

    #[test]
    fn empty_send_batch_is_a_noop_even_when_closed() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        let mut empty: Vec<u32> = Vec::new();
        assert!(tx.send_batch(&mut empty).is_ok());
    }
}
