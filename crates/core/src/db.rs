//! The labeled-flow database (paper Fig. 1, "Flow Database").
//!
//! Stores one row per finished flow, tagged with the FQDN the client
//! resolved, and maintains the secondary indexes the offline analytics
//! query: by FQDN, by second-level domain, by server address, by server
//! port.

use std::collections::HashMap;
use std::net::IpAddr;

use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_flow::tls::TlsInfo;
use dnhunter_flow::{AppProtocol, FlowKey};
use serde::{Deserialize, Serialize};

/// One finished, labelled flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaggedFlow {
    pub key: FlowKey,
    /// The label: the FQDN the client resolved for the server, if the DNS
    /// resolver had one.
    pub fqdn: Option<DomainName>,
    /// The organization-level name (second-level domain) of the label.
    pub second_level: Option<DomainName>,
    /// Older labels still live for the same (client, server) pair, newest
    /// first — §6's "return all possible labels" extension. Empty unless
    /// the resolver runs with `labels_per_server > 1`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub alt_labels: Vec<DomainName>,
    /// Microseconds between the tagging DNS response and the flow's first
    /// packet — the paper's "first flow delay" ingredient.
    pub tag_delay_micros: Option<u64>,
    /// First/last packet timestamps (µs since epoch).
    pub first_ts: u64,
    pub last_ts: u64,
    pub packets_c2s: u64,
    pub packets_s2c: u64,
    pub bytes_c2s: u64,
    pub bytes_s2c: u64,
    /// DPI ground-truth protocol.
    pub protocol: AppProtocol,
    /// TLS observations (SNI / certificate CN), when the flow was TLS.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tls: Option<TlsInfo>,
    /// True if the flow began during the warm-up window (excluded from
    /// hit-ratio accounting, as in the paper's 5-minute warm-up).
    pub in_warmup: bool,
}

impl TaggedFlow {
    /// Total bytes both directions.
    pub fn bytes(&self) -> u64 {
        self.bytes_c2s + self.bytes_s2c
    }

    /// True when a label was assigned.
    pub fn is_tagged(&self) -> bool {
        self.fqdn.is_some()
    }
}

/// The labeled-flow database with secondary indexes.
#[derive(Debug, Default)]
pub struct FlowDatabase {
    flows: Vec<TaggedFlow>,
    by_fqdn: HashMap<DomainName, Vec<usize>>,
    by_second_level: HashMap<DomainName, Vec<usize>>,
    by_server: HashMap<IpAddr, Vec<usize>>,
    by_port: HashMap<u16, Vec<usize>>,
}

impl FlowDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one finished flow, maintaining indexes. The second-level
    /// domain is derived here so every query path shares one definition.
    pub fn push(&mut self, mut flow: TaggedFlow, suffixes: &SuffixSet) {
        if flow.second_level.is_none() {
            flow.second_level = flow.fqdn.as_ref().map(|f| f.second_level_domain(suffixes));
        }
        let idx = self.flows.len();
        if let Some(f) = &flow.fqdn {
            self.by_fqdn.entry(f.clone()).or_default().push(idx);
        }
        if let Some(sld) = &flow.second_level {
            self.by_second_level
                .entry(sld.clone())
                .or_default()
                .push(idx);
        }
        self.by_server.entry(flow.key.server).or_default().push(idx);
        self.by_port
            .entry(flow.key.server_port)
            .or_default()
            .push(idx);
        self.flows.push(flow);
    }

    /// All rows, in completion order.
    pub fn flows(&self) -> &[TaggedFlow] {
        &self.flows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are stored.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows labelled with exactly `fqdn`.
    pub fn by_fqdn<'a>(&'a self, fqdn: &DomainName) -> impl Iterator<Item = &'a TaggedFlow> {
        self.by_fqdn
            .get(fqdn)
            .into_iter()
            .flatten()
            .map(move |&i| &self.flows[i])
    }

    /// Flows whose label falls under the given second-level domain
    /// (paper Algorithm 2, line 5: `queryByDomainName(2ndDomain)`).
    pub fn by_second_level<'a>(&'a self, sld: &DomainName) -> impl Iterator<Item = &'a TaggedFlow> {
        self.by_second_level
            .get(sld)
            .into_iter()
            .flatten()
            .map(move |&i| &self.flows[i])
    }

    /// Flows to a specific server address (content discovery, Algorithm 3).
    pub fn by_server(&self, server: IpAddr) -> impl Iterator<Item = &TaggedFlow> {
        self.by_server
            .get(&server)
            .into_iter()
            .flatten()
            .map(move |&i| &self.flows[i])
    }

    /// Flows to a specific server port (service-tag extraction, Algorithm 4,
    /// line 4: `FlowDB.query(dPort)`).
    pub fn by_port(&self, port: u16) -> impl Iterator<Item = &TaggedFlow> {
        self.by_port
            .get(&port)
            .into_iter()
            .flatten()
            .map(move |&i| &self.flows[i])
    }

    /// Distinct FQDNs observed (labels only).
    pub fn distinct_fqdns(&self) -> usize {
        self.by_fqdn.len()
    }

    /// Distinct second-level domains observed.
    pub fn distinct_second_levels(&self) -> usize {
        self.by_second_level.len()
    }

    /// Distinct server addresses observed.
    pub fn distinct_servers(&self) -> usize {
        self.by_server.len()
    }

    /// Iterate (fqdn, flow indices count) pairs.
    pub fn fqdn_flow_counts(&self) -> impl Iterator<Item = (&DomainName, usize)> {
        self.by_fqdn.iter().map(|(k, v)| (k, v.len()))
    }

    /// Iterate all distinct server IPs.
    pub fn servers(&self) -> impl Iterator<Item = IpAddr> + '_ {
        self.by_server.keys().copied()
    }

    /// Iterate all distinct labelled FQDNs.
    pub fn fqdns(&self) -> impl Iterator<Item = &DomainName> {
        self.by_fqdn.keys()
    }

    /// Export all rows as JSON lines (one row per line).
    // lint_root(determinism): export output must be byte-identical across worker counts
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for f in &self.flows {
            out.push_str(&serde_json::to_string(f).expect("row serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_net::IpProtocol;

    fn suffixes() -> SuffixSet {
        SuffixSet::builtin()
    }

    fn flow(fqdn: Option<&str>, server: &str, port: u16) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                port,
                IpProtocol::Tcp,
            ),
            fqdn: fqdn.map(|f| f.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: Some(1000),
            first_ts: 0,
            last_ts: 10,
            packets_c2s: 2,
            packets_s2c: 2,
            bytes_c2s: 100,
            bytes_s2c: 2000,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    #[test]
    fn push_builds_all_indexes() {
        let mut db = FlowDatabase::new();
        db.push(
            flow(Some("www.example.com"), "93.184.216.34", 80),
            &suffixes(),
        );
        db.push(
            flow(Some("img.example.com"), "93.184.216.35", 80),
            &suffixes(),
        );
        db.push(
            flow(Some("api.other.org"), "198.51.100.1", 443),
            &suffixes(),
        );
        db.push(flow(None, "203.0.113.1", 6881), &suffixes());

        assert_eq!(db.len(), 4);
        assert_eq!(db.distinct_fqdns(), 3);
        assert_eq!(db.distinct_second_levels(), 2);
        assert_eq!(db.distinct_servers(), 4);
        assert_eq!(db.by_fqdn(&"www.example.com".parse().unwrap()).count(), 1);
        assert_eq!(
            db.by_second_level(&"example.com".parse().unwrap()).count(),
            2
        );
        assert_eq!(db.by_port(80).count(), 2);
        assert_eq!(db.by_server("198.51.100.1".parse().unwrap()).count(), 1);
    }

    #[test]
    fn second_level_is_derived_on_push() {
        let mut db = FlowDatabase::new();
        db.push(flow(Some("news.bbc.co.uk"), "23.1.2.3", 80), &suffixes());
        let row = &db.flows()[0];
        assert_eq!(row.second_level.as_ref().unwrap().to_string(), "bbc.co.uk");
    }

    #[test]
    fn untagged_flows_have_no_fqdn_index() {
        let mut db = FlowDatabase::new();
        db.push(flow(None, "203.0.113.1", 6881), &suffixes());
        assert_eq!(db.distinct_fqdns(), 0);
        assert!(!db.flows()[0].is_tagged());
        assert_eq!(db.flows()[0].bytes(), 2100);
    }

    #[test]
    fn json_export_round_trips_basic_fields() {
        let mut db = FlowDatabase::new();
        db.push(flow(Some("a.example.com"), "1.2.3.4", 443), &suffixes());
        let json = db.to_json_lines();
        assert!(json.contains("a.example.com"));
        let v: serde_json::Value = serde_json::from_str(json.lines().next().unwrap()).unwrap();
        assert_eq!(v["key"]["server_port"], 443);
    }

    #[test]
    fn missing_keys_yield_empty_iterators() {
        let db = FlowDatabase::new();
        assert_eq!(db.by_fqdn(&"x.com".parse().unwrap()).count(), 0);
        assert_eq!(db.by_port(80).count(), 0);
        assert_eq!(db.by_server("9.9.9.9".parse().unwrap()).count(), 0);
        assert!(db.is_empty());
    }
}
