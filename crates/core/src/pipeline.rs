//! Parallel ingest: the multi-core DN-Hunter sniffer.
//!
//! The paper sizes DN-Hunter for a single monitor thread (§3.2 shows one
//! core keeps up with a 1M-packets/s PoP) and notes the scaling escape
//! hatch in §3.1.1: partition the monitored *clients* across independent
//! resolvers. [`ParallelSniffer`] applies that idea to the whole fast path.
//! A dispatcher thread (the caller's) parses each frame just enough to find
//! the client-side IP, then fans work out over bounded ring channels to
//! `N` shard workers — raw frames for DNS traffic, and for user data a
//! pre-parsed [`CompactSeg`] plus only the payload prefix DPI still wants,
//! so the channels move tens of bytes per packet instead of whole frames —
//! keyed by the same FNV hash the sharded resolver uses
//! ([`shard_of`]) — the *shard-affinity invariant*: a client's DNS bindings
//! (Algorithm 1 state), the flows those bindings tag, and the §5.1 delay
//! samples for both always live on the same worker, so workers share
//! nothing and take no locks on the per-packet path.
//!
//! Determinism is by construction, not by luck (see `DESIGN.md`): the
//! dispatcher stamps every frame with a global sequence number, replicates
//! the flow table's eviction-scan gate and broadcasts explicit tick events,
//! and the final merge re-orders every output stream under the
//! `(seq, phase)` key — so [`ParallelSniffer::finish`] returns a
//! [`SnifferReport`] byte-identical to [`crate::RealTimeSniffer`]'s for any
//! worker count (as long as no shard overflows its Clist partition; the
//! default `L = 2^20` makes evictions a non-issue at trace scale).

use std::net::IpAddr;
use std::thread::JoinHandle;
use std::time::Instant;

use dnhunter_dns::codec;
use dnhunter_flow::{CompactSeg, TcpTracker, DPI_SNAP};
use dnhunter_net::{IpProtocol, Packet, PacketView, PcapRecord, TransportHeader};
use dnhunter_resolver::maps::FnvHashMap;
use dnhunter_resolver::{shard_of, InternStats, ResolverConfig};
use dnhunter_telemetry::{self as telemetry, tm_count, tm_observe, Metric as Tm};

use crate::engine::{assemble_report, ShardEngine, ShardOutput};
use crate::policy::RuleEnforcer;
use crate::ring::{self, Receiver, Sender};
use crate::sniffer::{SnifferConfig, SnifferReport, SnifferStats};
use crate::stream::FlowSink;

/// Frames per batch before the dispatcher flushes a channel send. Batching
/// amortises the ring's lock handoff over many frames (§3.2's per-packet
/// budget is far below one syscall/lock per packet).
const BATCH_ITEMS: usize = 128;
/// Arena bytes per batch before an early flush (keeps batches cache-sized
/// even under jumbo frames).
const BATCH_BYTES: usize = 128 * 1024;
/// In-flight batches per dispatcher→worker ring: enough to keep a worker
/// busy while the dispatcher fills the next batch, small enough that a slow
/// shard backpressures ingest instead of buffering the trace.
const CHANNEL_BATCHES: usize = 4;
/// Capacity of each worker→dispatcher arena recycle ring; sized so a
/// best-effort `try_send` of every drained batch always fits.
const RECYCLE_BATCHES: usize = CHANNEL_BATCHES + 2;

/// What a batch item tells the worker to do.
#[derive(Debug, Clone, Copy)]
enum ItemKind {
    /// Anchor the warm-up window at the trace's first frame timestamp.
    Start,
    /// A UDP frame from the DNS port: decode and feed Algorithm 1.
    DnsUdp,
    /// A TCP frame from the DNS port: RFC 1035 §4.2.2 stream framing.
    DnsTcp,
    /// A user data segment, pre-parsed by the dispatcher: flow
    /// reconstruction + tagging (Fig. 1 fast path). The item's byte range
    /// holds only the payload prefix the flow record's DPI head still
    /// wants — usually nothing once a flow's first ~[`DPI_SNAP`] bytes per
    /// direction have shipped — so the channel moves tens of bytes per
    /// segment instead of whole frames, and the worker never re-parses.
    Seg(CompactSeg),
    /// Run one eviction scan — the dispatcher's replica of the sequential
    /// interval gate fired at this frame.
    Tick,
}

/// One event in a batch; `off..off+len` indexes the batch's byte arena
/// (empty for `Start`/`Tick`).
#[derive(Debug, Clone, Copy)]
struct Item {
    kind: ItemKind,
    seq: u64,
    ts: u64,
    off: u32,
    len: u32,
}

/// A batch of items plus the arena holding their raw frames. Recycled
/// between worker and dispatcher so steady-state ingest allocates nothing.
#[derive(Default)]
struct Batch {
    items: Vec<Item>,
    bytes: Vec<u8>,
}

/// Canonical (unordered) transport 5-tuple: the dispatcher's routing key.
/// Both packet directions of one flow map to the same `CanonKey`, so one
/// entry records the flow's orientation and owning shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CanonKey {
    lo: (IpAddr, u16),
    hi: (IpAddr, u16),
    proto: u8,
}

impl CanonKey {
    fn new(src: IpAddr, src_port: u16, dst: IpAddr, dst_port: u16, proto: IpProtocol) -> Self {
        let a = (src, src_port);
        let b = (dst, dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        CanonKey {
            lo,
            hi,
            proto: proto.number(),
        }
    }
}

/// The dispatcher's mirror of one live flow: which shard owns it, which
/// endpoint initiated it, and exactly the state the worker's flow table
/// consults when deciding evictions (`last_ts`, TCP terminal state) — kept
/// in lock-step so the routing table prunes entries at the same tick the
/// worker emits the flow, and a later packet on the same 5-tuple re-orients
/// identically on both sides.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: usize,
    client: IpAddr,
    client_port: u16,
    last_ts: u64,
    tcp: TcpTracker,
    /// Bytes of each direction's DPI head already shipped — the
    /// dispatcher's replica of `FlowRecord::head_{c2s,s2c}.len()`, so it
    /// can truncate segment payloads to exactly the prefix the worker's
    /// record will still consume (capped at [`DPI_SNAP`]).
    head_c2s: u16,
    head_s2c: u16,
}

/// Dispatcher-side handle for one shard worker.
struct WorkerLink {
    tx: Sender<Batch>,
    recycle_rx: Receiver<Batch>,
    pending: Batch,
}

/// Busy-time decomposition of one pipeline run, for the throughput
/// baseline. "Busy" excludes time blocked on channel waits (a full ring
/// means the dispatcher is waiting for a slow shard, and on a one-core
/// host it means the worker is running *on the dispatcher's core*), so
/// even with fewer cores than pipeline threads the per-stage busy time
/// still measures each stage's real CPU cost. Accumulated in nanoseconds
/// internally: the dispatcher's per-frame window is sub-microsecond, so
/// microsecond accumulation would truncate most of it to zero.
#[derive(Debug, Clone)]
pub struct PipelineTimings {
    /// Worker count the pipeline ran with.
    pub workers: usize,
    /// Dispatcher CPU time (parse + route + batch building), µs —
    /// blocking channel sends excluded.
    pub dispatch_busy_micros: u64,
    /// Dispatcher time spent inside (possibly blocking) channel sends, µs.
    pub send_wait_micros: u64,
    /// Per-worker CPU time (engine work + DNS decode + final flush), µs.
    pub worker_busy_micros: Vec<u64>,
    /// FQDN interning effectiveness summed over all shard resolvers.
    pub intern: InternStats,
}

/// Multi-core variant of [`crate::RealTimeSniffer`]: same input API, same
/// [`SnifferReport`] (byte-identical — see the module docs), `N` shard
/// workers doing the heavy lifting.
///
/// Policy enforcement (the `process_frame_with_policy` path) stays on the
/// sequential sniffer: an enforcer is a synchronous admission hook, which
/// would reserialize the workers.
pub struct ParallelSniffer {
    config: SnifferConfig,
    links: Vec<WorkerLink>,
    handles: Vec<JoinHandle<(ShardOutput, u64)>>,
    routes: FnvHashMap<CanonKey, Route>,
    seq: u64,
    last_eviction: u64,
    trace_start: Option<u64>,
    trace_end: Option<u64>,
    /// Dispatcher-side counters (frames, parse errors, DNS queries); worker
    /// engines count the rest, and the merge sums both.
    stats: SnifferStats,
    busy_nanos: u64,
    send_wait_nanos: u64,
    /// Per-worker telemetry registries, present only when the constructing
    /// thread had one bound. Workers bind theirs for their thread's
    /// lifetime; `finish` folds them into the dispatcher's registry so the
    /// final stable-class snapshot equals the sequential run's.
    worker_registries: Vec<std::sync::Arc<telemetry::Registry>>,
}

impl ParallelSniffer {
    /// Spawn `workers` shard threads (at least one). Each worker gets its
    /// slice of the Clist budget `L`, partitioned exactly as
    /// `ShardedResolver::new` partitions it (§3.1.1 — sharding splits the
    /// §4.2 memory budget, it does not multiply it).
    pub fn new(config: SnifferConfig, workers: usize) -> Self {
        Self::build(config, workers, None)
    }

    /// [`ParallelSniffer::new`], additionally installing a streaming
    /// analytics sink per worker: `make_sink(shard)` is called once per
    /// shard before its thread spawns. The per-shard partials come back
    /// (in shard order) from [`ParallelSniffer::finish_with_sinks`].
    pub fn with_sinks(
        config: SnifferConfig,
        workers: usize,
        make_sink: &mut dyn FnMut(usize) -> Box<dyn FlowSink>,
    ) -> Self {
        Self::build(config, workers, Some(make_sink))
    }

    fn build(
        config: SnifferConfig,
        workers: usize,
        mut make_sink: Option<&mut dyn FnMut(usize) -> Box<dyn FlowSink>>,
    ) -> Self {
        let workers = workers.max(1);
        let base = config.resolver.clist_size / workers;
        let remainder = config.resolver.clist_size % workers;
        let mut links = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let telemetry_on = telemetry::is_bound();
        let mut worker_registries = Vec::new();
        for i in 0..workers {
            let per_shard = (base + usize::from(i < remainder)).max(1);
            let mut engine = ShardEngine::new(
                config.clone(),
                ResolverConfig {
                    clist_size: per_shard,
                    ..config.resolver
                },
            );
            if let Some(make_sink) = make_sink.as_deref_mut() {
                engine.set_sink(make_sink(i));
            }
            let (tx, rx) = ring::channel::<Batch>(CHANNEL_BATCHES);
            let (recycle_tx, recycle_rx) = ring::channel::<Batch>(RECYCLE_BATCHES);
            let registry = telemetry_on.then(|| {
                let reg = std::sync::Arc::new(telemetry::Registry::new());
                worker_registries.push(std::sync::Arc::clone(&reg));
                reg
            });
            handles.push(std::thread::spawn(move || {
                worker_loop(engine, rx, recycle_tx, registry)
            }));
            links.push(WorkerLink {
                tx,
                recycle_rx,
                pending: Batch::default(),
            });
        }
        ParallelSniffer {
            config,
            links,
            handles,
            routes: FnvHashMap::default(),
            seq: 0,
            last_eviction: 0,
            trace_start: None,
            trace_end: None,
            stats: SnifferStats::default(),
            busy_nanos: 0,
            send_wait_nanos: 0,
            worker_registries,
        }
    }

    /// Merged point-in-time copy of the *workers'* telemetry cells — empty
    /// unless a registry was bound when the sniffer was built. A live view
    /// (the `--metrics` mode) adds this to a snapshot of the dispatcher
    /// thread's own registry; mid-run values are racy but monotone, and
    /// the final post-`finish` snapshot comes from the merged dispatcher
    /// registry instead.
    pub fn worker_telemetry_snapshot(&self) -> telemetry::Snapshot {
        let mut snap = telemetry::Snapshot::default();
        for reg in &self.worker_registries {
            snap.merge(&reg.snapshot());
        }
        snap
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.links.len()
    }

    /// Process one pcap record.
    // lint_root(ingest): dispatcher entry, one call per pcap record
    pub fn process_record(&mut self, rec: &PcapRecord) {
        self.process_frame(rec.timestamp_micros(), &rec.frame);
    }

    /// Dispatch one raw Ethernet frame: shallow-parse ([`PacketView`], no
    /// payload copy), classify exactly as the sequential sniffer does, and
    /// enqueue it for the owning shard.
    // lint_root(ingest): dispatcher entry, one call per captured frame
    pub fn process_frame(&mut self, ts: u64, frame: &[u8]) {
        let t0 = Instant::now();
        // Blocking sends inside this frame's window are counted by
        // `flush_link` into `send_wait_nanos`; subtract them so busy time
        // is dispatcher CPU only.
        let send_before = self.send_wait_nanos;
        let seq = self.seq;
        self.seq += 1;
        self.stats.frames += 1;
        tm_count!(Tm::IngestFrames);
        if self.trace_start.is_none() {
            self.trace_start = Some(ts);
            // Every shard anchors its warm-up window at the global trace
            // start, not its own first frame.
            for shard in 0..self.links.len() {
                self.push_item(shard, ItemKind::Start, seq, ts, &[]);
            }
        }
        self.trace_end = Some(self.trace_end.map_or(ts, |t| t.max(ts)));
        let view = match PacketView::parse(frame) {
            Ok(v) => v,
            Err(e) => {
                self.stats.note_parse_error(&e);
                self.busy_nanos += (t0.elapsed().as_nanos() as u64)
                    .saturating_sub(self.send_wait_nanos - send_before);
                return;
            }
        };
        // Same demultiplexing order as the sequential sniffer. DNS frames
        // route by the *client* (the responses' destination) so bindings
        // land on the shard that will tag that client's flows.
        let dns_port = self.config.dns_port;
        match &view.transport {
            TransportHeader::Udp(udp) if udp.src_port == dns_port => {
                let shard = shard_of(view.dst_ip(), self.links.len());
                self.push_item(shard, ItemKind::DnsUdp, seq, ts, frame);
            }
            TransportHeader::Udp(udp) if udp.dst_port == dns_port => {
                self.stats.dns_queries += 1;
                tm_count!(Tm::IngestDnsQueries);
            }
            TransportHeader::Tcp(tcp) if tcp.src_port == dns_port => {
                let shard = shard_of(view.dst_ip(), self.links.len());
                self.push_item(shard, ItemKind::DnsTcp, seq, ts, frame);
            }
            TransportHeader::Tcp(tcp) if tcp.dst_port == dns_port => {
                if !view.payload.is_empty() {
                    self.stats.dns_queries += 1;
                    tm_count!(Tm::IngestDnsQueries);
                }
            }
            TransportHeader::Udp(_) | TransportHeader::Tcp(_) => {
                self.dispatch_data(seq, ts, &view, frame)
            }
            // Not reconstructed; never advances the eviction-scan clock.
            TransportHeader::Opaque(_) => {}
        }
        self.busy_nanos +=
            (t0.elapsed().as_nanos() as u64).saturating_sub(self.send_wait_nanos - send_before);
    }

    /// Route one user data frame to its flow's shard, mirroring the flow
    /// table's orientation rules, then run the eviction gate.
    fn dispatch_data(&mut self, seq: u64, ts: u64, view: &PacketView<'_>, frame: &[u8]) {
        let (src_port, dst_port, tcp_flags, tcp_seq) = match &view.transport {
            TransportHeader::Tcp(h) => (h.src_port, h.dst_port, Some(h.flags), h.seq),
            TransportHeader::Udp(h) => (h.src_port, h.dst_port, None, 0),
            TransportHeader::Opaque(_) => return,
        };
        let src = view.src_ip();
        let dst = view.dst_ip();
        let payload_len = view.payload.len();
        let key = CanonKey::new(src, src_port, dst, dst_port, view.ip.protocol());
        let (shard, head_take) = match self.routes.get_mut(&key) {
            Some(route) => {
                // Mirror of `FlowTable::orient`: an existing entry fixes the
                // orientation; the new-flow case below sets sender=initiator.
                let from_client = src == route.client && src_port == route.client_port;
                if let Some(flags) = tcp_flags {
                    // Mirror of the flow table's port-reuse rule: a fresh SYN
                    // on a terminated flow finishes the old record and starts
                    // a new one under the *same* oriented key, so the route
                    // keeps its orientation and shard but resets TCP state,
                    // DPI head fill, and ages from this packet.
                    if flags.syn() && !flags.ack() && route.tcp.state().is_terminal() {
                        route.tcp = TcpTracker::new();
                        route.last_ts = ts;
                        route.head_c2s = 0;
                        route.head_s2c = 0;
                    }
                    route.tcp.observe(from_client, flags, payload_len);
                }
                route.last_ts = route.last_ts.max(ts);
                // Replica of `FlowRecord::observe_seg`'s head fill: ship
                // exactly the prefix the worker's record will append.
                let fill = if from_client {
                    &mut route.head_c2s
                } else {
                    &mut route.head_s2c
                };
                let take = (DPI_SNAP - *fill as usize).min(payload_len);
                *fill += take as u16;
                (route.shard, take)
            }
            None => {
                let shard = shard_of(src, self.links.len());
                let mut tcp = TcpTracker::new();
                if let Some(flags) = tcp_flags {
                    tcp.observe(true, flags, payload_len);
                }
                let take = DPI_SNAP.min(payload_len);
                self.routes.insert(
                    key,
                    Route {
                        shard,
                        client: src,
                        client_port: src_port,
                        last_ts: ts,
                        tcp,
                        head_c2s: take as u16,
                        head_s2c: 0,
                    },
                );
                (shard, take)
            }
        };
        let seg = CompactSeg {
            src,
            src_port,
            dst,
            dst_port,
            proto: view.ip.protocol(),
            tcp_flags,
            tcp_seq,
            wire_bytes: frame.len(),
            payload_len,
        };
        let head = view.payload.get(..head_take).unwrap_or(view.payload);
        self.push_item(shard, ItemKind::Seg(seg), seq, ts, head);
        // The sequential flow table's scan gate, replicated bit-for-bit:
        // only a reconstructed data frame advances the clock, and the scan
        // runs *after* that frame — so the tick follows the data item in
        // its shard's queue, and every shard scans at the same trace times
        // the single-threaded table would.
        if ts.saturating_sub(self.last_eviction) >= self.config.flow_table.eviction_interval_micros
        {
            self.last_eviction = ts;
            self.prune_routes(ts);
            for shard in 0..self.links.len() {
                self.push_item(shard, ItemKind::Tick, seq, ts, &[]);
            }
        }
    }

    /// Drop routing entries for every flow the workers' scan at `now` will
    /// evict — the same predicate `FlowTable::evict` applies, over the same
    /// `last_ts`/terminal state (kept in lock-step by `dispatch_data`), at
    /// the same tick times. A later packet on such a 5-tuple then starts a
    /// fresh flow with sender-as-initiator on both sides.
    fn prune_routes(&mut self, now: u64) {
        let idle = self.config.flow_table.idle_timeout_micros;
        let linger = self.config.flow_table.terminal_linger_micros;
        self.routes.retain(|_, r| {
            let silent = now.saturating_sub(r.last_ts);
            !(silent >= idle || (r.tcp.state().is_terminal() && silent >= linger))
        });
    }

    /// Append one item (and its arena bytes — a raw DNS frame, or a data
    /// segment's DPI head prefix) to a shard's pending batch, flushing when
    /// the batch is full.
    fn push_item(&mut self, shard: usize, kind: ItemKind, seq: u64, ts: u64, bytes: &[u8]) {
        let Some(link) = self.links.get_mut(shard) else {
            return;
        };
        match kind {
            ItemKind::Tick => tm_count!(Tm::PipelineTicks),
            ItemKind::DnsUdp | ItemKind::DnsTcp | ItemKind::Seg(_) => {
                tm_count!(Tm::PipelineItemsRouted)
            }
            ItemKind::Start => {}
        }
        let off = link.pending.bytes.len() as u32;
        link.pending.bytes.extend_from_slice(bytes);
        link.pending.items.push(Item {
            kind,
            seq,
            ts,
            off,
            len: bytes.len() as u32,
        });
        if link.pending.items.len() >= BATCH_ITEMS || link.pending.bytes.len() >= BATCH_BYTES {
            self.flush_link(shard);
        }
    }

    /// Send a shard's pending batch, swapping in a recycled (or fresh)
    /// arena. Send time is accounted separately from dispatch busy time:
    /// a full ring means the dispatcher is *waiting* on a slow shard.
    fn flush_link(&mut self, shard: usize) {
        let Some(link) = self.links.get_mut(shard) else {
            return;
        };
        if link.pending.items.is_empty() {
            return;
        }
        let next = link.recycle_rx.try_recv().unwrap_or_default();
        let batch = std::mem::replace(&mut link.pending, next);
        tm_count!(Tm::PipelineBatchesSent);
        tm_observe!(Tm::BatchItems, batch.items.len() as u64);
        let t0 = Instant::now();
        // A send only fails when the worker died; the merge then simply
        // misses that shard's output — nothing to do here.
        let _ = link.tx.send(batch);
        self.send_wait_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// End of trace: flush every pending batch, close the channels, join
    /// the workers and merge their outputs into the one report.
    pub fn finish(self) -> SnifferReport {
        self.finish_full().0
    }

    /// [`ParallelSniffer::finish`], also returning the busy-time
    /// decomposition for the throughput baseline.
    pub fn finish_with_timings(self) -> (SnifferReport, PipelineTimings) {
        let (report, timings, _) = self.finish_full();
        (report, timings)
    }

    /// [`ParallelSniffer::finish`], also handing back the per-shard
    /// streaming sinks (shard order; empty unless built
    /// [`ParallelSniffer::with_sinks`]).
    pub fn finish_with_sinks(self) -> (SnifferReport, Vec<Box<dyn FlowSink>>) {
        let (report, _, sinks) = self.finish_full();
        (report, sinks)
    }

    fn finish_full(mut self) -> (SnifferReport, PipelineTimings, Vec<Box<dyn FlowSink>>) {
        for shard in 0..self.links.len() {
            self.flush_link(shard);
        }
        // Dropping the links drops the senders, which closes each ring;
        // workers drain what is queued, flush their engines and return.
        let links = std::mem::take(&mut self.links);
        let workers = links.len();
        drop(links);
        let mut outputs = Vec::with_capacity(workers);
        let mut worker_busy_micros = Vec::with_capacity(workers);
        for handle in std::mem::take(&mut self.handles) {
            if let Ok((out, busy)) = handle.join() {
                outputs.push(out);
                worker_busy_micros.push(busy);
            }
        }
        // Shard-order extraction; the streaming fold is commutative, but a
        // stable order keeps the driver's view reproducible regardless.
        let sinks: Vec<Box<dyn FlowSink>> =
            outputs.iter_mut().filter_map(|o| o.sink.take()).collect();
        let mut intern = InternStats::default();
        for out in &outputs {
            intern.allocated += out.intern.allocated;
            intern.reused += out.intern.reused;
        }
        // The joins above are the happens-before edge: every worker-side
        // relaxed store is visible, so folding the per-shard registries
        // into the dispatcher's yields exact totals — and, for the stable
        // class, the same values a sequential run records.
        tm_count!(Tm::DispatchBusyNanos, self.busy_nanos);
        tm_count!(Tm::SendWaitNanos, self.send_wait_nanos);
        for reg in &self.worker_registries {
            telemetry::merge_into_bound(reg);
        }
        let report = assemble_report(
            outputs,
            self.stats,
            self.trace_start,
            self.trace_end,
            self.config.warmup_micros,
        );
        (
            report,
            PipelineTimings {
                workers,
                dispatch_busy_micros: self.busy_nanos / 1_000,
                send_wait_micros: self.send_wait_nanos / 1_000,
                worker_busy_micros,
                intern,
            },
            sinks,
        )
    }
}

/// One shard worker: drive this shard's [`ShardEngine`]. Data segments
/// arrive pre-parsed ([`CompactSeg`] plus DPI head bytes) and go straight
/// into the flow table; DNS frames arrive raw and are fully parsed here —
/// the exact decode path the sequential sniffer runs. Returns the shard's
/// output plus its busy time (µs, excluding `recv` blocking).
// lint_root(ingest): per-worker ingest: decodes DNS and drives the shard engine
fn worker_loop(
    mut engine: ShardEngine,
    rx: Receiver<Batch>,
    recycle_tx: Sender<Batch>,
    registry: Option<std::sync::Arc<telemetry::Registry>>,
) -> (ShardOutput, u64) {
    // Bind this shard's registry for the thread's whole lifetime, so every
    // engine/resolver/flow-table update below lands in per-shard cells that
    // `finish` later folds into the dispatcher's registry.
    let _telemetry_guard = registry.map(telemetry::bind);
    let mut busy_nanos = 0u64;
    while let Some(mut batch) = rx.recv() {
        let t0 = Instant::now();
        for item in &batch.items {
            let start = item.off as usize;
            let end = start + item.len as usize;
            match item.kind {
                ItemKind::Start => engine.note_trace_start(item.ts),
                ItemKind::Tick => engine.tick(item.seq, item.ts),
                ItemKind::Seg(seg) => {
                    let head = batch.bytes.get(start..end).unwrap_or(&[]);
                    engine.process_seg(
                        item.seq,
                        item.ts,
                        &seg,
                        head,
                        &mut None::<&mut RuleEnforcer>,
                    );
                }
                ItemKind::DnsUdp | ItemKind::DnsTcp => {
                    let Some(frame) = batch.bytes.get(start..end) else {
                        continue;
                    };
                    // The dispatcher already shallow-parsed this frame;
                    // `Packet::parse` accepts exactly what `PacketView::parse`
                    // accepts, so this cannot fail.
                    let Ok(pkt) = Packet::parse(frame) else {
                        debug_assert!(false, "dispatcher forwarded an unparseable frame");
                        continue;
                    };
                    match item.kind {
                        ItemKind::DnsUdp => engine.handle_dns_response(item.seq, item.ts, &pkt),
                        ItemKind::DnsTcp => {
                            for msg in codec::decode_tcp_stream(&pkt.payload) {
                                engine.handle_dns_message(item.seq, item.ts, pkt.dst_ip(), &msg);
                            }
                        }
                        ItemKind::Start | ItemKind::Tick | ItemKind::Seg(_) => {}
                    }
                }
            }
        }
        busy_nanos += t0.elapsed().as_nanos() as u64;
        batch.items.clear();
        batch.bytes.clear();
        // Best effort: if the recycle ring is somehow full the arena is
        // simply dropped and the dispatcher allocates a fresh one.
        let _ = recycle_tx.try_send(batch);
    }
    let t0 = Instant::now();
    let out = engine.finish_shard();
    busy_nanos += t0.elapsed().as_nanos() as u64;
    tm_count!(Tm::WorkerBusyNanos, busy_nanos);
    (out, busy_nanos / 1_000)
}
