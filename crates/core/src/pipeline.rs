//! Parallel ingest: the multi-core DN-Hunter sniffer.
//!
//! The paper sizes DN-Hunter for a single monitor thread (§3.2 shows one
//! core keeps up with a 1M-packets/s PoP) and notes the scaling escape
//! hatch in §3.1.1: partition the monitored *clients* across independent
//! resolvers. This module applies that idea to the whole fast path, in two
//! driver shapes:
//!
//! * [`ParallelSniffer`] — the push-mode driver for live capture: the
//!   caller's thread is the single dispatcher, flat-parsing each frame
//!   ([`parse_flat`]) and fanning work out over bounded ring channels to
//!   `N` shard workers.
//! * [`run_records`] — the offline-trace driver: additionally shards the
//!   *dispatcher itself*, RSS-style. `D` dispatcher threads flat-parse
//!   contiguous slices of the trace concurrently ([`SegBatch`]), while a
//!   single routing-state token serializes the order-sensitive routing
//!   pass in slice order — so route orientation, eviction ticks and
//!   sequence stamps come out bit-identical to one dispatcher's.
//!
//! Work travels as batches: up to `BATCH_ITEMS` pre-parsed items plus one
//! shared byte arena holding only what the worker still needs — a DNS
//! response's transport payload, or the payload prefix the flow record's
//! DPI head still wants (usually nothing once a flow's first ~[`DPI_SNAP`]
//! bytes per direction have shipped) — so the channels move tens of bytes
//! per packet instead of whole frames, and workers never re-parse. Arenas
//! recycle worker→dispatcher over a return ring, and the batched ring
//! operations (`crate::ring`) move several batches per lock handoff in
//! every direction. Shard routing keys client IPs through the same FNV
//! hash the sharded resolver uses ([`shard_of`]) — the *shard-affinity
//! invariant*: a client's DNS bindings (Algorithm 1 state), the flows
//! those bindings tag, and the §5.1 delay samples for both always live on
//! the same worker, so workers share nothing and take no locks on the
//! per-packet path.
//!
//! Determinism is by construction, not by luck (see `DESIGN.md` §7): every
//! frame carries a global sequence number (its trace index), dispatchers
//! replicate the flow table's eviction-scan gate and broadcast explicit
//! tick events, workers drain their per-dispatcher rings in token order,
//! and the final merge re-orders every output stream under the
//! `(seq, phase)` key — so both drivers return a [`SnifferReport`]
//! byte-identical to [`crate::RealTimeSniffer`]'s for any worker *and*
//! dispatcher count (as long as no shard overflows its Clist partition;
//! the default `L = 2^20` makes evictions a non-issue at trace scale).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::IpAddr;
use std::thread::JoinHandle;
use std::time::Instant;

use dnhunter_dns::codec;
use dnhunter_flow::{CanonFlowKey, CompactSeg, TcpTracker, DPI_SNAP};
use dnhunter_net::seg::{parse_flat, FlatParse, FlatSeg, FrameFault, SegBatch};
use dnhunter_net::{IpProtocol, PcapRecord};
use dnhunter_resolver::maps::FnvHashMap;
use dnhunter_resolver::{shard_of, InternStats, ResolverConfig};
use dnhunter_telemetry::{
    self as telemetry, tm_count, tm_observe, tm_trace, tm_trace_wall, LaneKind, Metric as Tm,
    TraceEvent as Te, TraceSet,
};

use crate::engine::{assemble_report, ShardEngine, ShardOutput};
use crate::policy::RuleEnforcer;
use crate::ring::{self, Receiver, Sender};
use crate::sniffer::{compact_seg, SnifferConfig, SnifferReport, SnifferStats};
use crate::stream::{FlowSink, StreamingAnalytics};

/// What a worker hands back over its rotation ring: the retired
/// `(bucket index, partial)` pairs its windowed sink gave up, in bucket
/// order.
type RotateReply = Vec<(u64, StreamingAnalytics)>;

/// Frames per batch before the dispatcher seals a batch. Batching
/// amortises the ring's lock handoff over many frames (§3.2's per-packet
/// budget is far below one syscall/lock per packet).
const BATCH_ITEMS: usize = 128;
/// Arena bytes per batch before an early seal (keeps batches cache-sized
/// even under jumbo frames).
const BATCH_BYTES: usize = 128 * 1024;
/// Sealed batches a dispatcher link buffers locally before one
/// `send_batch` moves them all under a single ring lock acquisition.
const OUTBOX_BATCHES: usize = 2;
/// In-flight batches per dispatcher→worker ring: enough to keep a worker
/// busy while the dispatcher fills the next batch, small enough that a slow
/// shard backpressures ingest instead of buffering the trace.
const CHANNEL_BATCHES: usize = 4;
/// Most batches a worker drains per `recv_batch` lock acquisition.
const RECV_BATCH_MAX: usize = CHANNEL_BATCHES;
/// Capacity of each worker→dispatcher arena recycle ring; sized so a
/// best-effort `try_send_batch` of every drained batch always fits.
const RECYCLE_BATCHES: usize = CHANNEL_BATCHES + 2;
/// Hard ceiling on pipeline fan-out in either role. Worker and dispatcher
/// counts are operator configuration, but every per-thread ring, slice and
/// merge buffer is sized from them, so the bounded-allocation discipline
/// (L8) wants a named cap on those statements — and far past the core
/// count extra threads only add contention anyway.
const MAX_PIPELINE_THREADS: usize = 64;

/// What a batch item tells the worker to do.
#[derive(Debug, Clone, Copy)]
enum ItemKind {
    /// Anchor the warm-up window at the trace's first frame timestamp.
    Start,
    /// A UDP datagram from the DNS port: the item's byte range is the
    /// transport payload; decode it and feed Algorithm 1 for `client`
    /// (the response's destination — the endpoint that asked).
    DnsUdp { client: IpAddr },
    /// A TCP segment from the DNS port: the byte range is the payload,
    /// framed per RFC 1035 §4.2.2 (2-byte length prefixes).
    DnsTcp { client: IpAddr },
    /// A user data segment, pre-parsed by the dispatcher: flow
    /// reconstruction + tagging (Fig. 1 fast path). The item's byte range
    /// holds only the payload prefix the flow record's DPI head still
    /// wants — usually nothing once a flow's first ~[`DPI_SNAP`] bytes per
    /// direction have shipped — so the channel moves tens of bytes per
    /// segment instead of whole frames, and the worker never re-parses.
    Seg(CompactSeg),
    /// Run one eviction scan — the dispatcher's replica of the sequential
    /// interval gate fired at this frame.
    Tick,
    /// Retire every windowed-analytics bucket strictly below `horizon` and
    /// answer with the retired partials on this worker's rotation ring —
    /// the broadcast half of [`ParallelSniffer::rotate`]'s barrier.
    Rotate { horizon: u64 },
}

/// One event in a batch; `off..off+len` indexes the batch's byte arena
/// (empty for `Start`/`Tick`).
#[derive(Debug, Clone, Copy)]
struct Item {
    kind: ItemKind,
    seq: u64,
    ts: u64,
    off: u32,
    len: u32,
}

/// A batch of items plus the arena holding their payload bytes. Recycled
/// between worker and dispatcher so steady-state ingest allocates nothing.
#[derive(Default)]
struct Batch {
    items: Vec<Item>,
    bytes: Vec<u8>,
}

/// The dispatcher's mirror of one live flow: which shard owns it, which
/// endpoint initiated it, and exactly the state the worker's flow table
/// consults when deciding evictions (`last_ts`, TCP terminal state) — kept
/// in lock-step so the routing table prunes entries at the same tick the
/// worker emits the flow, and a later packet on the same 5-tuple re-orients
/// identically on both sides.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: usize,
    client: IpAddr,
    client_port: u16,
    /// When this flow record started — the dispatcher's replica of
    /// `FlowRecord::first_ts`, reset on SYN port-reuse renewal exactly as
    /// the worker's table resets it. The rotation horizon clamps to the
    /// minimum of these so no window a live flow can still touch is
    /// retired early.
    first_ts: u64,
    last_ts: u64,
    tcp: TcpTracker,
    /// Bytes of each direction's DPI head already shipped — the
    /// dispatcher's replica of `FlowRecord::head_{c2s,s2c}.len()`, so it
    /// can truncate segment payloads to exactly the prefix the worker's
    /// record will still consume (capped at [`DPI_SNAP`]).
    head_c2s: u16,
    head_s2c: u16,
}

/// The order-sensitive routing state, owned by exactly one dispatcher at a
/// time. The push-mode driver holds it for the whole run; [`run_records`]
/// threads it through its dispatchers over capacity-1 token rings, in
/// slice order, so the flow-routing table, the eviction clock and the
/// warm-up anchor observe frames in exactly trace order.
#[derive(Default)]
struct RouterState {
    routes: FnvHashMap<CanonFlowKey, Route>,
    last_eviction: u64,
    /// Lazy min-heap of prune candidates `(deadline, key)` — the
    /// dispatcher-side mirror of the flow table's expiry heap, so each
    /// prune pass touches only routes whose deadline has passed instead of
    /// retaining over the whole table. Entries are lower bounds (pushed on
    /// insert, port-reuse renewal, and terminal transition; re-pushed at
    /// the current deadline when the exact predicate says "not yet"), so
    /// a route is always re-examined no later than it can expire — prunes
    /// stay in lock-step with the workers' evictions.
    prune_heap: BinaryHeap<Reverse<(u64, CanonFlowKey)>>,
    /// Whether some dispatcher already saw the trace's first frame and
    /// broadcast the `Start` anchor.
    started: bool,
}

/// First instant at which `route` can satisfy the prune predicate in
/// [`Dispatcher::prune_routes`] if it sees no further traffic — the mirror
/// of `FlowTable`'s expiry deadline.
fn route_deadline(route: &Route, idle: u64, linger: u64) -> u64 {
    let ttl = if route.tcp.state().is_terminal() {
        linger.min(idle)
    } else {
        idle
    };
    route.last_ts.saturating_add(ttl)
}

/// Dispatcher-side handle for one shard worker.
struct WorkerLink {
    tx: Sender<Batch>,
    recycle_rx: Receiver<Batch>,
    pending: Batch,
    /// Sealed batches awaiting one batched send.
    outbox: Vec<Batch>,
    /// Recycled arenas pulled off the return ring in batches.
    spares: Vec<Batch>,
}

/// Busy-time decomposition of one pipeline run, for the throughput
/// baseline. "Busy" excludes time blocked on channel waits (a full ring
/// means the dispatcher is waiting for a slow shard, and on a one-core
/// host it means the worker is running *on the dispatcher's core*), so
/// even with fewer cores than pipeline threads the per-stage busy time
/// still measures each stage's real CPU cost. Accumulated in nanoseconds
/// internally: the dispatcher's per-frame window is sub-microsecond, so
/// microsecond accumulation would truncate most of it to zero.
#[derive(Debug, Clone)]
pub struct PipelineTimings {
    /// Worker count the pipeline ran with.
    pub workers: usize,
    /// Dispatcher count ([`run_records`]'s `D`; always 1 in push mode).
    pub dispatchers: usize,
    /// Total dispatcher CPU time (parse + route + batch building) summed
    /// over all dispatchers, µs — blocking channel sends excluded.
    pub dispatch_busy_micros: u64,
    /// Per-dispatcher CPU time of the *parallel* phase (flat-parsing its
    /// trace slice), µs. Push mode has no separate parse phase and
    /// reports its whole dispatch busy time here.
    pub dispatcher_busy_micros: Vec<u64>,
    /// CPU time of the token-serialized routing phase summed over all
    /// dispatchers, µs — the pipeline's sequential section, so it bounds
    /// dispatcher scaling the way `max(dispatcher_busy_micros)` bounds
    /// parse scaling. Zero in push mode (routing is inlined in the single
    /// dispatcher's busy time).
    pub route_busy_micros: u64,
    /// Dispatcher time spent inside (possibly blocking) channel sends, µs.
    pub send_wait_micros: u64,
    /// Per-worker CPU time (engine work + DNS decode + final flush), µs.
    pub worker_busy_micros: Vec<u64>,
    /// FQDN interning effectiveness summed over all shard resolvers.
    pub intern: InternStats,
}

/// What one [`run_records`] dispatcher thread hands back to the merge.
struct DispatcherOutput {
    stats: SnifferStats,
    trace_start: Option<u64>,
    trace_end: Option<u64>,
    parse_busy_nanos: u64,
    route_busy_nanos: u64,
    send_wait_nanos: u64,
}

/// The routing half of a dispatcher: links to every shard worker plus the
/// counters the merge needs. Shared by the push-mode [`ParallelSniffer`]
/// (one, on the caller's thread) and [`run_records`] (one per dispatcher
/// thread).
struct Dispatcher {
    dns_port: u16,
    eviction_interval: u64,
    idle_timeout: u64,
    terminal_linger: u64,
    links: Vec<WorkerLink>,
    /// Dispatcher-side counters (frames, parse faults, DNS queries);
    /// worker engines count the rest, and the merge sums both.
    stats: SnifferStats,
    trace_start: Option<u64>,
    trace_end: Option<u64>,
    send_wait_nanos: u64,
}

impl Dispatcher {
    fn new(config: &SnifferConfig, links: Vec<WorkerLink>) -> Self {
        Dispatcher {
            dns_port: config.dns_port,
            eviction_interval: config.flow_table.eviction_interval_micros,
            idle_timeout: config.flow_table.idle_timeout_micros,
            terminal_linger: config.flow_table.terminal_linger_micros,
            links,
            stats: SnifferStats::default(),
            trace_start: None,
            trace_end: None,
            send_wait_nanos: 0,
        }
    }

    /// Classify one flat-parsed frame and enqueue whatever its shard
    /// worker needs — the dispatcher's whole per-frame job, identical for
    /// both drivers. Same demultiplexing order as the sequential sniffer;
    /// DNS frames route by the *client* (the responses' destination) so
    /// bindings land on the shard that will tag that client's flows.
    // lint_root(ingest): routes every captured frame, parsed or faulted
    fn route_frame(
        &mut self,
        st: &mut RouterState,
        seq: u64,
        ts: u64,
        wire_len: u32,
        parse: &Result<FlatParse<'_>, FrameFault>,
    ) {
        self.stats.frames += 1;
        tm_count!(Tm::IngestFrames);
        if !st.started {
            st.started = true;
            self.trace_start = Some(ts);
            // Every shard anchors its warm-up window at the global trace
            // start, not its own first frame.
            for shard in 0..self.links.len() {
                self.push_item(shard, ItemKind::Start, seq, ts, &[]);
            }
        }
        self.trace_end = Some(self.trace_end.map_or(ts, |t| t.max(ts)));
        let seg = match parse {
            Ok(FlatParse::Seg(seg)) => seg,
            // Not reconstructed; never advances the eviction-scan clock.
            Ok(FlatParse::Opaque) => return,
            Err(fault) => {
                self.stats.note_parse_fault(*fault);
                if telemetry::trace_enabled() {
                    tm_trace!(Te::FrameParse, seq, ts, *fault as u64, u64::from(wire_len));
                }
                return;
            }
        };
        let dns_port = self.dns_port;
        match seg.proto {
            IpProtocol::Udp => {
                if seg.src_port == dns_port {
                    let shard = shard_of(seg.dst, self.links.len());
                    let kind = ItemKind::DnsUdp { client: seg.dst };
                    self.push_item(shard, kind, seq, ts, seg.payload);
                    return;
                }
                if seg.dst_port == dns_port {
                    self.stats.dns_queries += 1;
                    tm_count!(Tm::IngestDnsQueries);
                    return;
                }
            }
            // `parse_flat` only yields TCP or UDP segments; TCP DNS is
            // used after truncated UDP responses (RFC 1035 §4.2.2).
            _ => {
                if seg.src_port == dns_port {
                    let shard = shard_of(seg.dst, self.links.len());
                    let kind = ItemKind::DnsTcp { client: seg.dst };
                    self.push_item(shard, kind, seq, ts, seg.payload);
                    return;
                }
                if seg.dst_port == dns_port {
                    if !seg.payload.is_empty() {
                        self.stats.dns_queries += 1;
                        tm_count!(Tm::IngestDnsQueries);
                    }
                    return;
                }
            }
        }
        self.dispatch_data(st, seq, ts, seg);
    }

    /// Route one user data segment to its flow's shard, mirroring the flow
    /// table's orientation rules, then run the eviction gate.
    fn dispatch_data(&mut self, st: &mut RouterState, seq: u64, ts: u64, seg: &FlatSeg<'_>) {
        let payload_len = seg.payload.len();
        let key = CanonFlowKey::of(seg.src, seg.src_port, seg.dst, seg.dst_port, seg.proto);
        let idle = self.idle_timeout;
        let linger = self.terminal_linger;
        let (shard, head_take, push_deadline) = match st.routes.get_mut(&key) {
            Some(route) => {
                // An existing entry fixes the orientation; the new-flow
                // case below sets sender=initiator.
                let from_client = seg.src == route.client && seg.src_port == route.client_port;
                let mut renewed = false;
                let mut was_terminal = route.tcp.state().is_terminal();
                if let Some(flags) = seg.tcp_flags {
                    // Mirror of the flow table's port-reuse rule: a fresh SYN
                    // on a terminated flow finishes the old record and starts
                    // a new one under the *same* oriented key, so the route
                    // keeps its orientation and shard but resets TCP state,
                    // DPI head fill, and ages from this packet.
                    if flags.syn() && !flags.ack() && was_terminal {
                        route.tcp = TcpTracker::new();
                        route.first_ts = ts;
                        route.last_ts = ts;
                        route.head_c2s = 0;
                        route.head_s2c = 0;
                        renewed = true;
                        was_terminal = false;
                    }
                    route.tcp.observe(from_client, flags, payload_len);
                }
                route.last_ts = route.last_ts.max(ts);
                // Replica of `FlowRecord::observe_seg`'s head fill: ship
                // exactly the prefix the worker's record will append.
                let fill = if from_client {
                    &mut route.head_c2s
                } else {
                    &mut route.head_s2c
                };
                let take = (DPI_SNAP - *fill as usize).min(payload_len);
                *fill += take as u16;
                // Renewal and terminal transition are the only events that
                // can move this route's prune deadline down (the flow
                // table's heap applies the same rule).
                let push = (renewed || (!was_terminal && route.tcp.state().is_terminal()))
                    .then(|| route_deadline(route, idle, linger));
                (route.shard, take, push)
            }
            None => {
                let shard = shard_of(seg.src, self.links.len());
                let mut tcp = TcpTracker::new();
                if let Some(flags) = seg.tcp_flags {
                    tcp.observe(true, flags, payload_len);
                }
                let take = DPI_SNAP.min(payload_len);
                let route = Route {
                    shard,
                    client: seg.src,
                    client_port: seg.src_port,
                    first_ts: ts,
                    last_ts: ts,
                    tcp,
                    head_c2s: take as u16,
                    head_s2c: 0,
                };
                let deadline = route_deadline(&route, idle, linger);
                st.routes.insert(key, route);
                (shard, take, Some(deadline))
            }
        };
        // Same lazy-heap bookkeeping the workers' flow tables keep: insert,
        // SYN-renewal, and terminal transition are the events that can move
        // a route's prune deadline down, so each pushes a fresh candidate.
        if let Some(deadline) = push_deadline {
            st.prune_heap.push(Reverse((deadline, key)));
        }
        let (cseg, payload) = compact_seg(seg);
        let head = payload.get(..head_take).unwrap_or(payload);
        self.push_item(shard, ItemKind::Seg(cseg), seq, ts, head);
        // The sequential flow table's scan gate, replicated bit-for-bit:
        // only a reconstructed data frame advances the clock, and the scan
        // runs *after* that frame — so the tick follows the data item in
        // its shard's queue, and every shard scans at the same trace times
        // the single-threaded table would.
        if ts.saturating_sub(st.last_eviction) >= self.eviction_interval {
            st.last_eviction = ts;
            self.prune_routes(st, ts);
            for shard in 0..self.links.len() {
                self.push_item(shard, ItemKind::Tick, seq, ts, &[]);
            }
        }
    }

    /// Drop routing entries for every flow the workers' scan at `now` will
    /// evict — the same predicate `FlowTable::evict` applies, over the same
    /// `last_ts`/terminal state (kept in lock-step by `dispatch_data`), at
    /// the same tick times. A later packet on such a 5-tuple then starts a
    /// fresh flow with sender-as-initiator on both sides.
    fn prune_routes(&self, st: &mut RouterState, now: u64) {
        let idle = self.idle_timeout;
        let linger = self.terminal_linger;
        while let Some(&Reverse((deadline, key))) = st.prune_heap.peek() {
            if deadline > now {
                break; // every remaining candidate is provably still alive
            }
            st.prune_heap.pop();
            let Some(r) = st.routes.get(&key) else {
                continue; // stale: route already pruned via an earlier entry
            };
            let silent = now.saturating_sub(r.last_ts);
            if silent >= idle || (r.tcp.state().is_terminal() && silent >= linger) {
                st.routes.remove(&key);
            } else {
                // Activity extended the deadline past this (lower-bound)
                // entry; re-arm at the route's current deadline.
                st.prune_heap
                    .push(Reverse((route_deadline(r, idle, linger), key)));
            }
        }
    }

    /// Append one item (and its arena bytes — a DNS payload, or a data
    /// segment's DPI head prefix) to a shard's pending batch, sealing the
    /// batch when it fills.
    fn push_item(&mut self, shard: usize, kind: ItemKind, seq: u64, ts: u64, bytes: &[u8]) {
        let Some(link) = self.links.get_mut(shard) else {
            return;
        };
        match kind {
            ItemKind::Tick => tm_count!(Tm::PipelineTicks),
            ItemKind::DnsUdp { .. } | ItemKind::DnsTcp { .. } | ItemKind::Seg(_) => {
                tm_count!(Tm::PipelineItemsRouted)
            }
            ItemKind::Start | ItemKind::Rotate { .. } => {}
        }
        let off = link.pending.bytes.len() as u32;
        link.pending.bytes.extend_from_slice(bytes);
        link.pending.items.push(Item {
            kind,
            seq,
            ts,
            off,
            len: bytes.len() as u32,
        });
        if link.pending.items.len() >= BATCH_ITEMS || link.pending.bytes.len() >= BATCH_BYTES {
            self.seal_pending(shard);
        }
    }

    /// Move a shard's filled batch into its outbox, swapping in a recycled
    /// (or fresh) arena; once [`OUTBOX_BATCHES`] have accumulated, one
    /// batched send moves them all under a single lock handoff.
    fn seal_pending(&mut self, shard: usize) {
        let Some(link) = self.links.get_mut(shard) else {
            return;
        };
        if link.pending.items.is_empty() {
            return;
        }
        if link.spares.is_empty() {
            link.recycle_rx
                .try_recv_batch(&mut link.spares, RECYCLE_BATCHES);
        }
        let next = link.spares.pop().unwrap_or_default();
        let batch = std::mem::replace(&mut link.pending, next);
        tm_count!(Tm::PipelineBatchesSent);
        tm_observe!(Tm::BatchItems, batch.items.len() as u64);
        link.outbox.push(batch);
        if link.outbox.len() >= OUTBOX_BATCHES {
            self.send_outbox(shard);
        }
    }

    /// Send a shard's outbox in one batched ring operation. Send time is
    /// accounted separately from dispatch busy time: a full ring means the
    /// dispatcher is *waiting* on a slow shard.
    fn send_outbox(&mut self, shard: usize) {
        let Some(link) = self.links.get_mut(shard) else {
            return;
        };
        if link.outbox.is_empty() {
            return;
        }
        let batches = link.outbox.len() as u64;
        // allow_lint(L7): wall-clock here feeds only the `send_wait_nanos`
        // telemetry split; no emitted byte depends on it
        let t0 = Instant::now();
        // A send only fails when the worker died; the merge then simply
        // misses that shard's output — nothing to do here.
        let _ = link.tx.send_batch(&mut link.outbox);
        link.outbox.clear();
        self.send_wait_nanos += t0.elapsed().as_nanos() as u64;
        if telemetry::trace_enabled() {
            tm_trace_wall!(Te::RingSendBatch, 0, shard as u64, batches);
        }
    }

    /// Seal and send everything still pending, on every link.
    fn flush_all(&mut self) {
        for shard in 0..self.links.len() {
            self.seal_pending(shard);
            self.send_outbox(shard);
        }
    }
}

/// Multi-core variant of [`crate::RealTimeSniffer`]: same input API, same
/// [`SnifferReport`] (byte-identical — see the module docs), `N` shard
/// workers doing the heavy lifting behind a single caller-thread
/// dispatcher. For offline traces, [`run_records`] additionally shards the
/// dispatcher.
///
/// Policy enforcement (the `process_frame_with_policy` path) stays on the
/// sequential sniffer: an enforcer is a synchronous admission hook, which
/// would reserialize the workers.
pub struct ParallelSniffer {
    config: SnifferConfig,
    dispatcher: Dispatcher,
    state: RouterState,
    handles: Vec<JoinHandle<(ShardOutput, u64)>>,
    /// Receive half of each worker's capacity-1 rotation ring, shard
    /// order; [`ParallelSniffer::rotate`] blocks on one reply per worker.
    rotation_rxs: Vec<Receiver<RotateReply>>,
    seq: u64,
    busy_nanos: u64,
    /// Per-worker telemetry registries, present only when the constructing
    /// thread had one bound. Workers bind theirs for their thread's
    /// lifetime; `finish` folds them into the dispatcher's registry so the
    /// final stable-class snapshot equals the sequential run's.
    worker_registries: Vec<std::sync::Arc<telemetry::Registry>>,
}

impl ParallelSniffer {
    /// Spawn `workers` shard threads (at least one). Each worker gets its
    /// slice of the Clist budget `L`, partitioned exactly as
    /// `ShardedResolver::new` partitions it (§3.1.1 — sharding splits the
    /// §4.2 memory budget, it does not multiply it).
    pub fn new(config: SnifferConfig, workers: usize) -> Self {
        Self::build(config, workers, None)
    }

    /// [`ParallelSniffer::new`], additionally installing a streaming
    /// analytics sink per worker: `make_sink(shard)` is called once per
    /// shard before its thread spawns. The per-shard partials come back
    /// (in shard order) from [`ParallelSniffer::finish_with_sinks`].
    pub fn with_sinks(
        config: SnifferConfig,
        workers: usize,
        make_sink: &mut dyn FnMut(usize) -> Box<dyn FlowSink>,
    ) -> Self {
        Self::build(config, workers, Some(make_sink))
    }

    fn build(
        config: SnifferConfig,
        workers: usize,
        mut make_sink: Option<&mut dyn FnMut(usize) -> Box<dyn FlowSink>>,
    ) -> Self {
        let workers = workers.max(1);
        let mut links = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let telemetry_on = telemetry::is_bound();
        // Captured on the constructing thread: workers bind their own
        // flight-recorder lanes off the same set, so one `--trace-out`
        // export shows every thread of this pipeline.
        let trace = telemetry::trace_set();
        let mut worker_registries = Vec::new();
        let mut rotation_rxs = Vec::with_capacity(workers);
        for (shard, engine) in shard_engines(&config, workers, &mut make_sink)
            .into_iter()
            .enumerate()
        {
            let (tx, rx) = ring::channel::<Batch>(CHANNEL_BATCHES);
            let (recycle_tx, recycle_rx) = ring::channel::<Batch>(RECYCLE_BATCHES);
            let (rotate_tx, rotate_rx) = ring::channel::<RotateReply>(1);
            rotation_rxs.push(rotate_rx);
            let registry = telemetry_on.then(|| {
                let reg = std::sync::Arc::new(telemetry::Registry::new());
                worker_registries.push(std::sync::Arc::clone(&reg));
                reg
            });
            let trace = trace.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(
                    engine,
                    shard,
                    vec![rx],
                    vec![recycle_tx],
                    Some(rotate_tx),
                    registry,
                    trace,
                )
            }));
            links.push(WorkerLink {
                tx,
                recycle_rx,
                pending: Batch::default(),
                outbox: Vec::with_capacity(OUTBOX_BATCHES),
                spares: Vec::with_capacity(RECYCLE_BATCHES),
            });
        }
        let dispatcher = Dispatcher::new(&config, links);
        ParallelSniffer {
            config,
            dispatcher,
            state: RouterState::default(),
            handles,
            rotation_rxs,
            seq: 0,
            busy_nanos: 0,
            worker_registries,
        }
    }

    /// Retire windowed-analytics buckets below the rotation horizon on
    /// every shard, returning the retired `(bucket, partial)` lists in
    /// shard order. The horizon is `clock` clamped down to the oldest live
    /// flow's start (the routing table's `first_ts` minimum — the mirror
    /// of the sequential sniffer's `FlowTable::oldest_live_first_ts`), so
    /// no window a live flow can still contribute to is emitted early.
    /// Runs as a barrier: a `Rotate` item is broadcast to every shard,
    /// pending batches flush, and the call blocks until each worker
    /// answers on its capacity-1 rotation ring — cheap at rotation cadence,
    /// and it pins retirement to the same packet-clock instant at every
    /// worker count.
    // lint_root(determinism): rotation barrier fires identically at every worker count
    pub fn rotate(&mut self, clock: u64) -> (u64, Vec<Vec<(u64, StreamingAnalytics)>>) {
        let oldest = self.state.routes.values().map(|r| r.first_ts).min();
        let horizon = oldest.map_or(clock, |t| t.min(clock));
        let seq = self.seq;
        for shard in 0..self.dispatcher.links.len() {
            self.dispatcher
                .push_item(shard, ItemKind::Rotate { horizon }, seq, clock, &[]);
        }
        self.dispatcher.flush_all();
        let mut replies = Vec::with_capacity(self.rotation_rxs.len());
        for rx in &self.rotation_rxs {
            // `None` = the worker died; treat as "nothing retired" and let
            // the join in `finish` surface the loss.
            replies.push(rx.recv().unwrap_or_default());
        }
        (horizon, replies)
    }

    /// Merged point-in-time copy of the *workers'* telemetry cells — empty
    /// unless a registry was bound when the sniffer was built. A live view
    /// (the `--metrics` mode) adds this to a snapshot of the dispatcher
    /// thread's own registry; mid-run values are racy but monotone, and
    /// the final post-`finish` snapshot comes from the merged dispatcher
    /// registry instead.
    pub fn worker_telemetry_snapshot(&self) -> telemetry::Snapshot {
        let mut snap = telemetry::Snapshot::default();
        for reg in &self.worker_registries {
            snap.merge(&reg.snapshot());
        }
        snap
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.dispatcher.links.len()
    }

    /// Process one pcap record.
    // lint_root(ingest): dispatcher entry, one call per pcap record
    pub fn process_record(&mut self, rec: &PcapRecord) {
        self.process_frame(rec.timestamp_micros(), &rec.frame);
    }

    /// Dispatch one raw Ethernet frame: flat-parse ([`parse_flat`], no
    /// payload copy), classify exactly as the sequential sniffer does, and
    /// enqueue it for the owning shard.
    // lint_root(ingest): dispatcher entry, one call per captured frame
    pub fn process_frame(&mut self, ts: u64, frame: &[u8]) {
        let t0 = Instant::now();
        // Blocking sends inside this frame's window are counted by
        // `send_outbox` into `send_wait_nanos`; subtract them so busy time
        // is dispatcher CPU only.
        let send_before = self.dispatcher.send_wait_nanos;
        let seq = self.seq;
        self.seq += 1;
        let parse = parse_flat(frame);
        self.dispatcher
            .route_frame(&mut self.state, seq, ts, frame.len() as u32, &parse);
        self.busy_nanos += (t0.elapsed().as_nanos() as u64)
            .saturating_sub(self.dispatcher.send_wait_nanos - send_before);
    }

    /// End of trace: flush every pending batch, close the channels, join
    /// the workers and merge their outputs into the one report.
    pub fn finish(self) -> SnifferReport {
        self.finish_full().0
    }

    /// [`ParallelSniffer::finish`], also returning the busy-time
    /// decomposition for the throughput baseline.
    pub fn finish_with_timings(self) -> (SnifferReport, PipelineTimings) {
        let (report, timings, _) = self.finish_full();
        (report, timings)
    }

    /// [`ParallelSniffer::finish`], also handing back the per-shard
    /// streaming sinks (shard order; empty unless built
    /// [`ParallelSniffer::with_sinks`]).
    pub fn finish_with_sinks(self) -> (SnifferReport, Vec<Box<dyn FlowSink>>) {
        let (report, _, sinks) = self.finish_full();
        (report, sinks)
    }

    fn finish_full(mut self) -> (SnifferReport, PipelineTimings, Vec<Box<dyn FlowSink>>) {
        self.dispatcher.flush_all();
        // Dropping the links drops the senders, which closes each ring;
        // workers drain what is queued, flush their engines and return.
        let links = std::mem::take(&mut self.dispatcher.links);
        let workers = links.len();
        drop(links);
        let mut outputs = Vec::with_capacity(workers);
        let mut worker_busy_micros = Vec::with_capacity(workers);
        for handle in std::mem::take(&mut self.handles) {
            if let Ok((out, busy)) = handle.join() {
                outputs.push(out);
                worker_busy_micros.push(busy);
            }
        }
        // Shard-order extraction; the streaming fold is commutative, but a
        // stable order keeps the driver's view reproducible regardless.
        let sinks: Vec<Box<dyn FlowSink>> =
            outputs.iter_mut().filter_map(|o| o.sink.take()).collect();
        let intern = fold_intern(&outputs);
        // The joins above are the happens-before edge: every worker-side
        // relaxed store is visible, so folding the per-shard registries
        // into the dispatcher's yields exact totals — and, for the stable
        // class, the same values a sequential run records.
        tm_count!(Tm::DispatchBusyNanos, self.busy_nanos);
        tm_count!(Tm::SendWaitNanos, self.dispatcher.send_wait_nanos);
        for reg in &self.worker_registries {
            telemetry::merge_into_bound(reg);
        }
        let report = assemble_report(
            outputs,
            std::mem::take(&mut self.dispatcher.stats),
            self.dispatcher.trace_start,
            self.dispatcher.trace_end,
            self.config.warmup_micros,
        );
        (
            report,
            PipelineTimings {
                workers,
                dispatchers: 1,
                dispatch_busy_micros: self.busy_nanos / 1_000,
                dispatcher_busy_micros: vec![self.busy_nanos / 1_000],
                route_busy_micros: 0,
                send_wait_micros: self.dispatcher.send_wait_nanos / 1_000,
                worker_busy_micros,
                intern,
            },
            sinks,
        )
    }
}

/// Run a whole in-memory trace through the sharded pipeline with `workers`
/// shard threads *and* `dispatchers` dispatcher threads, returning the
/// merged report (byte-identical to [`crate::RealTimeSniffer`]'s — see the
/// module docs) plus the busy-time decomposition.
///
/// Each dispatcher owns one contiguous slice of `records` and flat-parses
/// it concurrently with the others; frame `i`'s sequence number is simply
/// `i`, so stamping needs no coordination. The order-sensitive routing
/// pass then runs under a state token passed dispatcher-to-dispatcher in
/// slice order, and each dispatcher closes its worker rings before handing
/// the token on — so worker `w`, draining its per-dispatcher rings in that
/// same order, observes items in strictly increasing sequence order.
// lint_root(ingest): offline-trace pipeline entry, consumes raw records
pub fn run_records(
    config: &SnifferConfig,
    workers: usize,
    dispatchers: usize,
    records: &[PcapRecord],
) -> (SnifferReport, PipelineTimings) {
    let (report, timings, _) = run_records_full(config, workers, dispatchers, records, None);
    (report, timings)
}

/// [`run_records`], additionally installing a streaming analytics sink per
/// worker (`make_sink(shard)`, as in [`ParallelSniffer::with_sinks`]) and
/// handing the per-shard partials back in shard order.
pub fn run_records_with_sinks(
    config: &SnifferConfig,
    workers: usize,
    dispatchers: usize,
    records: &[PcapRecord],
    make_sink: &mut dyn FnMut(usize) -> Box<dyn FlowSink>,
) -> (SnifferReport, PipelineTimings, Vec<Box<dyn FlowSink>>) {
    run_records_full(config, workers, dispatchers, records, Some(make_sink))
}

fn run_records_full(
    config: &SnifferConfig,
    workers: usize,
    dispatchers: usize,
    records: &[PcapRecord],
    mut make_sink: Option<&mut dyn FnMut(usize) -> Box<dyn FlowSink>>,
) -> (SnifferReport, PipelineTimings, Vec<Box<dyn FlowSink>>) {
    let workers = workers.clamp(1, MAX_PIPELINE_THREADS);
    // A dispatcher per record at most: empty slices would idle a thread
    // and its rings for nothing (and a record-less trace still runs one
    // dispatcher so the merge shape stays uniform).
    let dispatchers = dispatchers
        .clamp(1, records.len().max(1))
        .min(MAX_PIPELINE_THREADS);
    let telemetry_on = telemetry::is_bound();
    // As in push mode: one trace set, captured here, lanes bound per thread.
    let trace = telemetry::trace_set();
    let engines = shard_engines(config, workers, &mut make_sink);

    // One (data, recycle) ring pair per (dispatcher, worker) edge. Worker
    // `w` drains `worker_rxs[w]` strictly in dispatcher order — the same
    // order the routing token serializes sends — so its item stream is
    // globally sequence-ordered.
    let mut worker_rxs: Vec<Vec<Receiver<Batch>>> = (0..workers)
        .map(|_| Vec::with_capacity(dispatchers.min(MAX_PIPELINE_THREADS)))
        .collect();
    let mut worker_recycles: Vec<Vec<Sender<Batch>>> = (0..workers)
        .map(|_| Vec::with_capacity(dispatchers.min(MAX_PIPELINE_THREADS)))
        .collect();
    let mut dispatcher_links: Vec<Vec<WorkerLink>> = (0..dispatchers)
        .map(|_| Vec::with_capacity(workers.min(MAX_PIPELINE_THREADS)))
        .collect();
    for links in dispatcher_links.iter_mut() {
        for (rxs, recycles) in worker_rxs.iter_mut().zip(worker_recycles.iter_mut()) {
            let (tx, rx) = ring::channel::<Batch>(CHANNEL_BATCHES);
            let (recycle_tx, recycle_rx) = ring::channel::<Batch>(RECYCLE_BATCHES);
            rxs.push(rx);
            recycles.push(recycle_tx);
            links.push(WorkerLink {
                tx,
                recycle_rx,
                pending: Batch::default(),
                outbox: Vec::with_capacity(OUTBOX_BATCHES),
                spares: Vec::with_capacity(RECYCLE_BATCHES),
            });
        }
    }

    // Capacity-1 token rings chaining dispatcher d to d+1: dispatcher d
    // sends on `token_txs[d]` (None for the last) and receives on
    // `token_rxs[d]` (None for the first, which starts with the token).
    let mut token_txs: Vec<Option<Sender<RouterState>>> = Vec::new();
    let mut token_rxs: Vec<Option<Receiver<RouterState>>> = vec![None];
    for _ in 1..dispatchers {
        let (tx, rx) = ring::channel::<RouterState>(1);
        token_txs.push(Some(tx));
        token_rxs.push(Some(rx));
    }
    token_txs.push(None);

    // Contiguous near-equal slices; sequence bases are the slices' start
    // indices (frame seq == trace index, exactly the sequential stamping).
    let slice_base = records.len() / dispatchers;
    let slice_rem = records.len() % dispatchers;
    let mut slices: Vec<(u64, &[PcapRecord])> =
        Vec::with_capacity(dispatchers.min(MAX_PIPELINE_THREADS));
    let mut rest = records;
    let mut start = 0usize;
    for d in 0..dispatchers {
        let len = slice_base + usize::from(d < slice_rem);
        let (head, tail) = rest.split_at(len);
        slices.push((start as u64, head));
        start += len;
        rest = tail;
    }

    let mut worker_registries = Vec::new();
    let mut dispatcher_registries = Vec::new();
    let (disp_outs, worker_outs) = std::thread::scope(|s| {
        let mut worker_handles = Vec::with_capacity(workers.min(MAX_PIPELINE_THREADS));
        let rx_pairs = worker_rxs.into_iter().zip(worker_recycles);
        for (shard, (engine, (rxs, recycles))) in engines.into_iter().zip(rx_pairs).enumerate() {
            let registry = telemetry_on.then(|| {
                let reg = std::sync::Arc::new(telemetry::Registry::new());
                worker_registries.push(std::sync::Arc::clone(&reg));
                reg
            });
            let trace = trace.clone();
            // Rotation never runs under the multi-dispatcher driver (no
            // single packet clock exists across concurrently-parsed
            // slices), so these workers get no rotation ring.
            worker_handles.push(
                s.spawn(move || worker_loop(engine, shard, rxs, recycles, None, registry, trace)),
            );
        }
        let mut disp_handles = Vec::with_capacity(dispatchers.min(MAX_PIPELINE_THREADS));
        let disp_parts = dispatcher_links
            .into_iter()
            .zip(slices)
            .zip(token_rxs.into_iter().zip(token_txs));
        for (d, ((links, (seq_base, slice)), (token_rx, token_tx))) in disp_parts.enumerate() {
            let disp = Dispatcher::new(config, links);
            let registry = telemetry_on.then(|| {
                let reg = std::sync::Arc::new(telemetry::Registry::new());
                dispatcher_registries.push(std::sync::Arc::clone(&reg));
                reg
            });
            let trace = trace.clone();
            disp_handles.push(s.spawn(move || {
                dispatcher_task(
                    disp, d, slice, seq_base, token_rx, token_tx, registry, trace,
                )
            }));
        }
        let disp_outs: Vec<DispatcherOutput> = disp_handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .collect();
        let worker_outs: Vec<(ShardOutput, u64)> = worker_handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .collect();
        (disp_outs, worker_outs)
    });

    // Merge the dispatcher partials. The trace anchor comes from the first
    // dispatcher that saw a frame (= the owner of trace index 0).
    let mut stats = SnifferStats::default();
    let trace_start = disp_outs.iter().find_map(|o| o.trace_start);
    let mut trace_end = None;
    let mut parse_busy_nanos = 0u64;
    let mut route_busy_nanos = 0u64;
    let mut send_wait_nanos = 0u64;
    let mut dispatcher_busy_micros = Vec::with_capacity(disp_outs.len().min(MAX_PIPELINE_THREADS));
    for out in &disp_outs {
        stats.absorb(&out.stats);
        trace_end = match (trace_end, out.trace_end) {
            (Some(a), Some(b)) => Some(std::cmp::max::<u64>(a, b)),
            (a, b) => a.or(b),
        };
        parse_busy_nanos += out.parse_busy_nanos;
        route_busy_nanos += out.route_busy_nanos;
        send_wait_nanos += out.send_wait_nanos;
        dispatcher_busy_micros.push(out.parse_busy_nanos / 1_000);
    }

    let mut shard_outputs = Vec::with_capacity(worker_outs.len().min(MAX_PIPELINE_THREADS));
    let mut worker_busy_micros = Vec::with_capacity(worker_outs.len().min(MAX_PIPELINE_THREADS));
    for (out, busy) in worker_outs {
        shard_outputs.push(out);
        worker_busy_micros.push(busy);
    }
    let sinks: Vec<Box<dyn FlowSink>> = shard_outputs
        .iter_mut()
        .filter_map(|o| o.sink.take())
        .collect();
    let intern = fold_intern(&shard_outputs);

    // The joins above are the happens-before edge; fold every thread's
    // registry into the caller's so the final stable-class snapshot equals
    // the sequential run's.
    tm_count!(Tm::DispatchBusyNanos, parse_busy_nanos + route_busy_nanos);
    tm_count!(Tm::SendWaitNanos, send_wait_nanos);
    for reg in dispatcher_registries.iter().chain(&worker_registries) {
        telemetry::merge_into_bound(reg);
    }
    let report = assemble_report(
        shard_outputs,
        stats,
        trace_start,
        trace_end,
        config.warmup_micros,
    );
    (
        report,
        PipelineTimings {
            workers,
            dispatchers,
            dispatch_busy_micros: (parse_busy_nanos + route_busy_nanos) / 1_000,
            dispatcher_busy_micros,
            route_busy_micros: route_busy_nanos / 1_000,
            send_wait_micros: send_wait_nanos / 1_000,
            worker_busy_micros,
            intern,
        },
        sinks,
    )
}

/// Build the `workers` shard engines, splitting the Clist budget exactly
/// as `ShardedResolver::new` partitions it (§3.1.1 — sharding splits the
/// §4.2 memory budget, it does not multiply it).
fn shard_engines(
    config: &SnifferConfig,
    workers: usize,
    make_sink: &mut Option<&mut dyn FnMut(usize) -> Box<dyn FlowSink>>,
) -> Vec<ShardEngine> {
    let base = config.resolver.clist_size / workers;
    let remainder = config.resolver.clist_size % workers;
    (0..workers)
        .map(|i| {
            let per_shard = (base + usize::from(i < remainder)).max(1);
            let mut engine = ShardEngine::new(
                config.clone(),
                ResolverConfig {
                    clist_size: per_shard,
                    ..config.resolver
                },
            );
            if let Some(make_sink) = make_sink.as_deref_mut() {
                engine.set_sink(make_sink(i));
            }
            engine
        })
        .collect()
}

/// Sum the per-shard interning stats.
fn fold_intern(outputs: &[ShardOutput]) -> InternStats {
    let mut intern = InternStats::default();
    for out in outputs {
        intern.allocated += out.intern.allocated;
        intern.reused += out.intern.reused;
    }
    intern
}

/// One [`run_records`] dispatcher thread: flat-parse the slice (parallel
/// phase), then take the routing token, route every frame in slice order,
/// close this dispatcher's worker rings and pass the token on.
// lint_root(ingest): per-dispatcher ingest over a raw trace slice
#[allow(clippy::too_many_arguments)]
fn dispatcher_task(
    mut disp: Dispatcher,
    index: usize,
    slice: &[PcapRecord],
    seq_base: u64,
    token_rx: Option<Receiver<RouterState>>,
    token_tx: Option<Sender<RouterState>>,
    registry: Option<std::sync::Arc<telemetry::Registry>>,
    trace: Option<std::sync::Arc<TraceSet>>,
) -> DispatcherOutput {
    // Bind this dispatcher's registry for the thread's lifetime, so its
    // parse/route telemetry lands in cells the merge later folds in.
    let _telemetry_guard = registry.map(telemetry::bind);
    // Likewise its flight-recorder lane: every trace event below lands in
    // a per-dispatcher ring the exporter renders as one timeline lane.
    let _trace_guard = trace
        .as_ref()
        .map(|set| telemetry::trace_bind(set, LaneKind::Dispatcher, index as u16));
    // Parse phase: every dispatcher runs this concurrently; nothing here
    // touches shared state.
    let t0 = Instant::now();
    let mut batch = SegBatch::new();
    batch.parse_records(slice);
    let parse_busy_nanos = t0.elapsed().as_nanos() as u64;
    // Routing phase: serialized by the state token, in slice order.
    let mut st = match &token_rx {
        Some(rx) => match rx.recv() {
            Some(st) => st,
            // The predecessor died without handing the token on; without
            // its routing state determinism is already gone, so route
            // nothing — dropping `disp` closes this dispatcher's rings.
            None => {
                return DispatcherOutput {
                    stats: SnifferStats::default(),
                    trace_start: None,
                    trace_end: None,
                    parse_busy_nanos,
                    route_busy_nanos: 0,
                    send_wait_nanos: 0,
                }
            }
        },
        None => RouterState::default(),
    };
    let t1 = Instant::now();
    // Token hand-off lane: acquire here (dispatcher 0 starts holding it),
    // release just before the send below — the export pairs the two into
    // one "token held" slice per dispatcher.
    if telemetry::trace_enabled() {
        tm_trace_wall!(Te::TokenAcquire, seq_base, index as u64, seq_base);
    }
    for (i, frame) in batch.frames.iter().enumerate() {
        disp.route_frame(
            &mut st,
            seq_base + i as u64,
            frame.ts,
            frame.wire_len,
            &frame.parse,
        );
    }
    disp.flush_all();
    let route_busy_nanos = (t1.elapsed().as_nanos() as u64).saturating_sub(disp.send_wait_nanos);
    // Close this dispatcher's rings *before* handing the token on: worker
    // drain order (ring d to exhaustion, then ring d+1) then matches token
    // order, which is what makes the merge's seq streams monotone.
    drop(std::mem::take(&mut disp.links));
    if telemetry::trace_enabled() {
        let held_nanos = t1.elapsed().as_nanos() as u64;
        tm_trace_wall!(Te::TokenRelease, seq_base, index as u64, held_nanos);
    }
    if let Some(tx) = token_tx {
        let _ = tx.send(st);
    }
    DispatcherOutput {
        stats: disp.stats,
        trace_start: disp.trace_start,
        trace_end: disp.trace_end,
        parse_busy_nanos,
        route_busy_nanos,
        send_wait_nanos: disp.send_wait_nanos,
    }
}

/// One shard worker: drive this shard's [`ShardEngine`]. Items arrive
/// pre-parsed — a [`CompactSeg`] plus DPI head bytes straight into the
/// flow table, or a DNS payload decoded here, the exact decode path the
/// sequential sniffer runs. Multiple rings arrive from the
/// multi-dispatcher driver and are drained strictly in dispatcher
/// (= token) order, several batches per lock via `recv_batch`. Returns the
/// shard's output plus its busy time (µs, excluding `recv` blocking).
// lint_root(ingest): per-worker ingest: decodes DNS and drives the shard engine
fn worker_loop(
    mut engine: ShardEngine,
    shard: usize,
    rxs: Vec<Receiver<Batch>>,
    recycles: Vec<Sender<Batch>>,
    rotate_tx: Option<Sender<RotateReply>>,
    registry: Option<std::sync::Arc<telemetry::Registry>>,
    trace: Option<std::sync::Arc<TraceSet>>,
) -> (ShardOutput, u64) {
    // Bind this shard's registry for the thread's whole lifetime, so every
    // engine/resolver/flow-table update below lands in per-shard cells that
    // the merge later folds into the dispatcher's registry.
    let _telemetry_guard = registry.map(telemetry::bind);
    // And its flight-recorder lane: resolver/flow/sink provenance events
    // fired by the engine below record into this worker's ring.
    let _trace_guard = trace
        .as_ref()
        .map(|set| telemetry::trace_bind(set, LaneKind::Worker, shard as u16));
    let mut busy_nanos = 0u64;
    let mut inbox: Vec<Batch> = Vec::with_capacity(RECV_BATCH_MAX);
    let mut done: Vec<Batch> = Vec::with_capacity(RECV_BATCH_MAX);
    let mut last_seq = 0u64;
    for (ring_index, (rx, recycle)) in rxs.iter().zip(&recycles).enumerate() {
        // Drain this dispatcher's ring to exhaustion (recv_batch returns 0
        // only once the ring is closed *and* empty), then move to the
        // next: dispatcher d closed its rings before passing the routing
        // token to d+1, so this order yields a monotone sequence stream.
        loop {
            let n = rx.recv_batch(&mut inbox, RECV_BATCH_MAX);
            if n == 0 {
                break;
            }
            if telemetry::trace_enabled() {
                tm_trace_wall!(Te::RingRecvBatch, 0, ring_index as u64, n as u64);
            }
            let t0 = Instant::now();
            let mut drained_items = 0u64;
            for mut batch in inbox.drain(..) {
                drained_items += batch.items.len() as u64;
                for item in &batch.items {
                    debug_assert!(
                        item.seq >= last_seq,
                        "worker observed seq {} after {}",
                        item.seq,
                        last_seq
                    );
                    last_seq = item.seq;
                    let start = item.off as usize;
                    let end = start + item.len as usize;
                    match item.kind {
                        ItemKind::Start => engine.note_trace_start(item.ts),
                        ItemKind::Tick => engine.tick(item.seq, item.ts),
                        ItemKind::Seg(seg) => {
                            let head = batch.bytes.get(start..end).unwrap_or(&[]);
                            engine.process_seg(
                                item.seq,
                                item.ts,
                                &seg,
                                head,
                                &mut None::<&mut RuleEnforcer>,
                            );
                        }
                        ItemKind::DnsUdp { client } => {
                            let payload = batch.bytes.get(start..end).unwrap_or(&[]);
                            engine.handle_dns_payload(item.seq, item.ts, client, payload);
                        }
                        ItemKind::DnsTcp { client } => {
                            let payload = batch.bytes.get(start..end).unwrap_or(&[]);
                            for msg in codec::decode_tcp_stream(payload) {
                                engine.handle_dns_message(item.seq, item.ts, client, &msg);
                            }
                        }
                        ItemKind::Rotate { horizon } => {
                            let retired = engine.rotate(horizon);
                            // The barrier half: the dispatcher blocks on
                            // this reply, so the send can never find the
                            // capacity-1 ring full. A failed send means
                            // the dispatcher already gave up on us.
                            if let Some(tx) = &rotate_tx {
                                let _ = tx.send(retired);
                            }
                        }
                    }
                }
                batch.items.clear();
                batch.bytes.clear();
                done.push(batch);
            }
            let drain_nanos = t0.elapsed().as_nanos() as u64;
            busy_nanos += drain_nanos;
            if telemetry::trace_enabled() {
                tm_trace_wall!(Te::WorkerDrain, 0, drained_items, drain_nanos);
            }
            // Best effort, never blocking: arenas that don't fit the
            // recycle ring are simply dropped and the dispatcher allocates
            // fresh ones.
            recycle.try_send_batch(&mut done);
            done.clear();
        }
    }
    let t0 = Instant::now();
    let out = engine.finish_shard();
    busy_nanos += t0.elapsed().as_nanos() as u64;
    tm_count!(Tm::WorkerBusyNanos, busy_nanos);
    (out, busy_nanos / 1_000)
}
