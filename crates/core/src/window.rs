//! Sliding-window streaming analytics over packet-timestamp-aligned time
//! buckets (DESIGN.md "Windowed analytics and retraction").
//!
//! [`crate::stream::StreamingAnalytics`] answers the paper's questions as
//! since-trace-start accumulations. A long-running deployment wants "last
//! hour, refreshed every five minutes" instead — over an unbounded stream,
//! with bounded state. This module borrows the differential-dataflow idea
//! of timestamped deltas: sink events are routed into **time buckets**
//! (one per `slide` interval of the packet clock), each bucket owning a
//! partial `StreamingAnalytics`, and a sliding window is maintained by
//! *merging* each newly-sealed bucket and **retracting** each expired one
//! via [`StreamingAnalytics::unmerge`] — the exact subtractive inverse of
//! merge that PR 9 gave every piece of sink state.
//!
//! **The bucket trick.** Every bucket partial is anchored at packet-clock
//! origin 0 with a snapshot interval equal to `slide`, so its internal
//! bins are *absolute bucket indices* (`bin = ts / slide`). Bucket
//! partials therefore merge with plain `merge_ref` — no per-bucket offset
//! bookkeeping — and a window view over buckets `[w, w+n)` is produced by
//! [`StreamingAnalytics::rebased_view`], which re-anchors the accumulated
//! state at the window's start time. The equivalence suite
//! (`tests/windowed_equivalence.rs`) proves the resulting render is
//! byte-identical to running a fresh sink over the trace sliced to
//! `[window_start, window_end)`.
//!
//! **Retraction failure is observable, not fatal.** `unmerge` of a bucket
//! that was merged earlier cannot underflow; if it ever does, that is an
//! invariant breach — the sweep counts it on the Runtime metric
//! `dnh_window_retract_underflow_total` and falls back to rebuilding the
//! window by merging its surviving buckets, so output stays correct even
//! then. The fault matrix asserts the counter is zero everywhere.
//!
//! **Memory bound.** Live bucket state is capped by [`MAX_LIVE_BUCKETS`]:
//! events whose timestamp would open a bucket beyond the cap are dropped
//! and counted (`dropped_bucket_events`, reported in the render header and
//! pinned to zero by the equivalence tests). Within the cap, state grows
//! with distinct entities per bucket, not flows — the same bound the
//! underlying sink provides.

use std::any::Any;
use std::collections::BTreeMap;

use dnhunter_telemetry::{tm_count, Metric};

use crate::db::TaggedFlow;
use crate::stream::{push_u64, FlowSink, StreamingAnalytics, StreamingConfig};

/// Cap on simultaneously-live bucket partials. At the default
/// `--slide 5m` this is over two weeks of stream; a hostile trace whose
/// timestamps span more opens no further buckets (events beyond the cap
/// are dropped and counted, never allocated for).
pub const MAX_LIVE_BUCKETS: usize = 4096;

/// Sliding-window configuration (`--window 1h --slide 5m` style).
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Window length in µs, always a whole multiple of `slide_micros`
    /// (constructor rounds up).
    pub window_micros: u64,
    /// Bucket width / window step in µs.
    pub slide_micros: u64,
    /// Tuning for the per-bucket partial sinks. Its snapshot interval is
    /// overridden to `slide_micros` so bucket bins align with windows.
    pub stream: StreamingConfig,
}

impl WindowConfig {
    /// Validated config: `slide` is clamped to ≥ 1 µs and `window` is
    /// rounded up to the nearest non-zero multiple of `slide`.
    pub fn new(window_micros: u64, slide_micros: u64) -> Self {
        let slide = slide_micros.max(1);
        let steps = window_micros.div_ceil(slide).max(1);
        WindowConfig {
            window_micros: steps * slide,
            slide_micros: slide,
            stream: StreamingConfig::default(),
        }
    }

    /// Buckets per window.
    pub fn steps(&self) -> u64 {
        self.window_micros / self.slide_micros
    }

    /// The configuration the per-bucket partial sinks run with: `stream`
    /// with its snapshot interval overridden to `slide_micros`. A fresh
    /// [`StreamingAnalytics`] built from this over a window's slice of the
    /// trace is the reference the equivalence suite compares against.
    pub fn bucket_sink_config(&self) -> StreamingConfig {
        StreamingConfig {
            snapshot_interval_micros: self.slide_micros,
            ..self.stream.clone()
        }
    }
}

/// One emitted window position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// Inclusive start of the window on the packet clock (µs).
    pub start: u64,
    /// Exclusive end of the window (µs).
    pub end: u64,
    /// Monotonic window sequence number, starting at 0.
    pub seq: u64,
}

/// A [`FlowSink`] that routes every event into its packet-time bucket and
/// derives sliding windows by merge + retraction at finish time.
pub struct WindowedAnalytics {
    cfg: WindowConfig,
    /// Bucket index (`ts / slide`) → partial sink anchored at origin 0.
    buckets: BTreeMap<u64, StreamingAnalytics>,
    trace_start: Option<u64>,
    /// Events dropped because their bucket would exceed
    /// [`MAX_LIVE_BUCKETS`].
    dropped_bucket_events: u64,
    /// First bucket index still live: everything below it was retired by
    /// [`FlowSink::rotate`] and emitted. 0 until the first rotation.
    retired_floor: u64,
    /// Events that arrived for an already-retired bucket (possible only
    /// under injected reordering — the rotation horizon otherwise
    /// lower-bounds every future event). Counted, never mis-attributed.
    late_bucket_events: u64,
}

impl WindowedAnalytics {
    pub fn new(cfg: WindowConfig) -> Self {
        let cfg = WindowConfig::new(cfg.window_micros, cfg.slide_micros).with_stream(cfg.stream);
        WindowedAnalytics {
            cfg,
            buckets: BTreeMap::new(),
            trace_start: None,
            dropped_bucket_events: 0,
            retired_floor: 0,
            late_bucket_events: 0,
        }
    }

    /// The configuration the sink runs with.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Live bucket partials.
    pub fn live_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Events dropped by the [`MAX_LIVE_BUCKETS`] cap (0 ⇒ windows exact).
    pub fn dropped_bucket_events(&self) -> u64 {
        self.dropped_bucket_events
    }

    /// Events that arrived below the rotation floor (0 without injected
    /// reordering).
    pub fn late_bucket_events(&self) -> u64 {
        self.late_bucket_events
    }

    /// First bucket index still live after rotation.
    pub fn retired_floor(&self) -> u64 {
        self.retired_floor
    }

    fn bucket_of(&self, ts: u64) -> u64 {
        ts / self.cfg.slide_micros
    }

    /// The bucket partial for `ts`, or `None` (counted) when the bucket
    /// was already retired by rotation or would exceed the cap.
    fn bucket_mut(&mut self, ts: u64) -> Option<&mut StreamingAnalytics> {
        let idx = self.bucket_of(ts);
        if idx < self.retired_floor {
            self.late_bucket_events += 1;
            tm_count!(Metric::WindowLateEvents);
            return None;
        }
        if self.buckets.len() >= MAX_LIVE_BUCKETS && !self.buckets.contains_key(&idx) {
            self.dropped_bucket_events += 1;
            return None;
        }
        let cfg = self.cfg.bucket_sink_config();
        Some(self.buckets.entry(idx).or_insert_with(|| {
            let mut sink = StreamingAnalytics::new(cfg);
            // Anchor at 0 so the partial's bins are absolute bucket
            // indices — the invariant the whole module rides on.
            sink.on_trace_start(0);
            sink
        }))
    }

    /// Fold per-worker partials (in shard order) back into one aggregate.
    /// Returns `None` when `sinks` is empty or holds a foreign sink type.
    pub fn fold(sinks: Vec<Box<dyn FlowSink>>) -> Option<WindowedAnalytics> {
        let mut acc: Option<WindowedAnalytics> = None;
        for sink in sinks {
            let part = *sink.as_any_box().downcast::<WindowedAnalytics>().ok()?;
            match &mut acc {
                None => acc = Some(part),
                Some(a) => a.merge(part),
            }
        }
        acc
    }

    /// Commutative, associative merge of another windowed partial:
    /// bucket-wise merge of the underlying sinks.
    pub fn merge(&mut self, other: WindowedAnalytics) {
        self.trace_start = match (self.trace_start, other.trace_start) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.dropped_bucket_events += other.dropped_bucket_events;
        self.late_bucket_events += other.late_bucket_events;
        // Shards rotate at the same global horizons, so floors agree; max
        // is the safe fold either way.
        self.retired_floor = self.retired_floor.max(other.retired_floor);
        for (idx, part) in other.buckets {
            if let Some(existing) = self.buckets.get_mut(&idx) {
                existing.merge(part);
            } else if self.buckets.len() < MAX_LIVE_BUCKETS {
                self.buckets.insert(idx, part);
            } else {
                self.dropped_bucket_events += part.flows();
            }
        }
    }

    /// The whole-stream aggregate: every bucket folded and re-anchored at
    /// the bucket-aligned trace start (`trace_start` rounded down to a
    /// slide boundary — bucket bins only exist on that grid), equivalent
    /// to a plain [`StreamingAnalytics`] over the full run anchored there
    /// (used by the fault matrix for global hit ratios).
    pub fn totals(&self) -> StreamingAnalytics {
        let origin_bucket = self.trace_start.unwrap_or(0) / self.cfg.slide_micros;
        let mut acc = StreamingAnalytics::new(self.cfg.bucket_sink_config());
        for part in self.buckets.values() {
            acc.merge_ref(part);
        }
        acc.rebased_view(origin_bucket * self.cfg.slide_micros, origin_bucket)
    }

    /// Walk every window position in time order, maintaining the window
    /// aggregate incrementally: merge the bucket entering the window,
    /// retract the bucket leaving it. `f` receives the window span and a
    /// re-anchored view whose render is byte-identical to a fresh sink
    /// over the slice `[span.start, span.end)`.
    ///
    /// Emitted positions run from the first window containing the first
    /// non-empty bucket to the last window containing the last one, so
    /// leading and trailing windows may be partially filled — exactly as a
    /// slice of the trace over those spans would be.
    // lint_root(determinism): window sweep output must be byte-identical across worker counts
    pub fn for_each_window(&self, mut f: impl FnMut(WindowSpan, &StreamingAnalytics)) {
        let n = self.cfg.steps();
        let (Some(&lo), Some(&hi)) = (self.buckets.keys().next(), self.buckets.keys().next_back())
        else {
            return;
        };
        let slide = self.cfg.slide_micros;
        let mut acc = StreamingAnalytics::new(self.cfg.bucket_sink_config());
        // Window `e` covers buckets [e + 1 - n, e]; sweeping e over
        // lo..=hi+n-1 visits every position overlapping the data.
        for (seq, e) in (lo..=hi + (n - 1)).enumerate() {
            let seq = seq as u64;
            if e <= hi {
                if let Some(part) = self.buckets.get(&e) {
                    acc.merge_ref(part);
                }
            }
            if e >= lo + n {
                if let Some(expired) = self.buckets.get(&(e - n)) {
                    if acc.unmerge(expired).is_err() {
                        // Invariant breach: a bucket merged above failed to
                        // retract. Count it and rebuild from scratch so the
                        // emitted windows stay correct regardless.
                        tm_count!(Metric::WindowRetractUnderflow);
                        acc = StreamingAnalytics::new(self.cfg.bucket_sink_config());
                        for (_, part) in self.buckets.range(e + 1 - n..=e.min(hi)) {
                            acc.merge_ref(part);
                        }
                    }
                }
            }
            // Saturating: windows overlapping the origin of the packet
            // clock are clipped at 0 rather than reaching before it.
            let first_bucket = (e + 1).saturating_sub(n);
            let span = WindowSpan {
                start: first_bucket * slide,
                end: (e + 1) * slide,
                seq,
            };
            let view = acc.rebased_view(span.start, first_bucket);
            f(span, &view);
        }
    }

    /// Render the windowed JSONL stream: a header line, then one line per
    /// window position carrying `window_start`/`window_end`/`seq` and the
    /// same summary object the plain stream renderer emits. Derived
    /// entirely from merged state — byte-identical at any worker count.
    // lint_root(determinism): windowed output must be byte-identical across worker counts
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"stream\":\"dn-hunter-windowed\",\"window_micros\":");
        push_u64(&mut out, self.cfg.window_micros);
        out.push_str(",\"slide_micros\":");
        push_u64(&mut out, self.cfg.slide_micros);
        out.push_str(",\"origin\":");
        match self.trace_start {
            Some(t) => push_u64(&mut out, t),
            None => out.push_str("null"),
        }
        out.push_str(",\"dropped_bucket_events\":");
        push_u64(&mut out, self.dropped_bucket_events);
        out.push_str("}\n");
        self.for_each_window(|span, view| {
            out.push_str("{\"window_start\":");
            push_u64(&mut out, span.start);
            out.push_str(",\"window_end\":");
            push_u64(&mut out, span.end);
            out.push_str(",\"seq\":");
            push_u64(&mut out, span.seq);
            out.push_str(",\"summary\":");
            view.render_summary_object(&mut out);
            out.push_str("}\n");
        });
        out
    }
}

impl WindowConfig {
    fn with_stream(mut self, stream: StreamingConfig) -> Self {
        self.stream = stream;
        self
    }
}

impl FlowSink for WindowedAnalytics {
    fn on_trace_start(&mut self, ts: u64) {
        self.trace_start = Some(self.trace_start.map_or(ts, |t| t.min(ts)));
    }

    fn on_answered_response(&mut self, ts: u64) {
        if let Some(b) = self.bucket_mut(ts) {
            b.on_answered_response(ts);
        }
    }

    fn on_first_flow_delay(&mut self, ts: u64, delay_micros: u64) {
        if let Some(b) = self.bucket_mut(ts) {
            b.on_first_flow_delay(ts, delay_micros);
        }
    }

    fn on_any_flow_delay(&mut self, ts: u64, delay_micros: u64) {
        if let Some(b) = self.bucket_mut(ts) {
            b.on_any_flow_delay(ts, delay_micros);
        }
    }

    fn on_flow_finished(&mut self, flow: &TaggedFlow) {
        if let Some(b) = self.bucket_mut(flow.first_ts) {
            b.on_flow_finished(flow);
        }
    }

    /// Retire-and-emit: split off every bucket strictly below the horizon
    /// and hand the partials to the caller (the daemon's rotation
    /// emitter). This is what replaces the [`MAX_LIVE_BUCKETS`] overflow
    /// drop on an unbounded stream — live state stays bounded by rotation
    /// cadence instead of by dropping events.
    fn rotate(&mut self, horizon: u64) -> Vec<(u64, StreamingAnalytics)> {
        let floor = horizon / self.cfg.slide_micros;
        if floor <= self.retired_floor {
            return Vec::new();
        }
        let keep = self.buckets.split_off(&floor);
        let retired = std::mem::replace(&mut self.buckets, keep);
        self.retired_floor = floor;
        retired.into_iter().collect()
    }

    fn as_any_box(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(client: &str, fqdn: Option<&str>, server: &str, port: u16, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                client.parse().unwrap(),
                server.parse().unwrap(),
                50000,
                port,
                IpProtocol::Tcp,
            ),
            fqdn: fqdn.map(|f| f.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: Some(1000),
            first_ts: ts,
            last_ts: ts + 10,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    fn sample_flows() -> Vec<TaggedFlow> {
        (0u64..30)
            .map(|i| {
                flow(
                    &format!("10.0.0.{}", i % 4),
                    if i % 5 == 0 {
                        None
                    } else {
                        Some(if i % 2 == 0 {
                            "www.example.com"
                        } else {
                            "img.other.org"
                        })
                    },
                    &format!("93.184.216.{}", i % 3),
                    443,
                    1_000_000 + i * 700_000,
                )
            })
            .collect()
    }

    fn feed(sink: &mut WindowedAnalytics, flows: &[TaggedFlow]) {
        sink.on_trace_start(1_000_000);
        for f in flows {
            sink.on_flow_finished(f);
        }
        sink.on_answered_response(1_100_000);
        sink.on_first_flow_delay(1_200_000, 31);
        sink.on_any_flow_delay(1_200_000, 31);
    }

    fn cfg() -> WindowConfig {
        WindowConfig::new(4_000_000, 2_000_000)
    }

    #[test]
    fn config_rounds_window_up_to_slide_multiple() {
        let c = WindowConfig::new(3_500_000, 2_000_000);
        assert_eq!(c.window_micros, 4_000_000);
        assert_eq!(c.steps(), 2);
        let degenerate = WindowConfig::new(0, 0);
        assert_eq!(degenerate.slide_micros, 1);
        assert_eq!(degenerate.steps(), 1);
    }

    #[test]
    fn each_window_view_equals_a_fresh_sink_over_the_slice() {
        let flows = sample_flows();
        let mut w = WindowedAnalytics::new(cfg());
        feed(&mut w, &flows);
        assert_eq!(w.dropped_bucket_events(), 0);
        let mut positions = 0u64;
        w.for_each_window(|span, view| {
            assert_eq!(span.seq, positions);
            positions += 1;
            let mut reference = StreamingAnalytics::new(w.config().bucket_sink_config());
            reference.on_trace_start(span.start);
            for f in &flows {
                if f.first_ts >= span.start && f.first_ts < span.end {
                    reference.on_flow_finished(f);
                }
            }
            if (span.start..span.end).contains(&1_100_000) {
                reference.on_answered_response(1_100_000);
            }
            if (span.start..span.end).contains(&1_200_000) {
                reference.on_first_flow_delay(1_200_000, 31);
                reference.on_any_flow_delay(1_200_000, 31);
            }
            assert!(view.data_eq(&reference), "window {span:?} diverged");
            assert_eq!(view.render(), reference.render(), "window {span:?}");
        });
        assert!(positions > 2, "sweep visited only {positions} windows");
    }

    #[test]
    fn fold_of_split_sinks_renders_identically() {
        let flows = sample_flows();
        let mut seq = WindowedAnalytics::new(cfg());
        feed(&mut seq, &flows);
        let mut a = WindowedAnalytics::new(cfg());
        let mut b = WindowedAnalytics::new(cfg());
        a.on_trace_start(1_000_000);
        b.on_trace_start(1_000_000);
        for (i, f) in flows.iter().enumerate() {
            if i % 2 == 0 {
                a.on_flow_finished(f);
            } else {
                b.on_flow_finished(f);
            }
        }
        a.on_answered_response(1_100_000);
        a.on_first_flow_delay(1_200_000, 31);
        b.on_any_flow_delay(1_200_000, 31);
        let folded = WindowedAnalytics::fold(vec![
            Box::new(a) as Box<dyn FlowSink>,
            Box::new(b) as Box<dyn FlowSink>,
        ])
        .unwrap();
        assert_eq!(folded.render(), seq.render());
    }

    #[test]
    fn totals_match_an_unwindowed_sink() {
        let flows = sample_flows();
        let mut w = WindowedAnalytics::new(cfg());
        feed(&mut w, &flows);
        let mut plain = StreamingAnalytics::new(w.config().bucket_sink_config());
        // totals() anchors at the slide-aligned trace start (1 M rounds
        // down to 0 on the 2 M grid).
        plain.on_trace_start(0);
        for f in &flows {
            plain.on_flow_finished(f);
        }
        plain.on_answered_response(1_100_000);
        plain.on_first_flow_delay(1_200_000, 31);
        plain.on_any_flow_delay(1_200_000, 31);
        let totals = w.totals();
        assert!(totals.data_eq(&plain));
        assert_eq!(totals.render(), plain.render());
    }

    #[test]
    fn bucket_cap_drops_and_counts_far_future_events() {
        let mut w = WindowedAnalytics::new(WindowConfig::new(4, 2));
        w.on_trace_start(0);
        // One event per bucket until the cap, then one beyond it.
        for i in 0..MAX_LIVE_BUCKETS as u64 {
            w.on_answered_response(i * 2);
        }
        assert_eq!(w.live_buckets(), MAX_LIVE_BUCKETS);
        assert_eq!(w.dropped_bucket_events(), 0);
        w.on_answered_response(MAX_LIVE_BUCKETS as u64 * 2);
        assert_eq!(w.live_buckets(), MAX_LIVE_BUCKETS);
        assert_eq!(w.dropped_bucket_events(), 1);
    }

    #[test]
    fn render_has_header_and_tagged_window_lines() {
        let mut w = WindowedAnalytics::new(cfg());
        feed(&mut w, &sample_flows());
        let r = w.render();
        let mut lines = r.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("{\"stream\":\"dn-hunter-windowed\""));
        assert!(header.contains("\"window_micros\":4000000"));
        assert!(header.contains("\"dropped_bucket_events\":0"));
        let mut expect_seq = 0u64;
        for line in lines {
            assert!(line.starts_with("{\"window_start\":"), "{line}");
            assert!(line.contains(&format!("\"seq\":{expect_seq},")), "{line}");
            assert!(line.contains("\"summary\":{"), "{line}");
            expect_seq += 1;
        }
        assert!(expect_seq > 2);
        assert_eq!(r, w.render(), "render must be stable");
    }
}
