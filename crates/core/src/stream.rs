//! One-pass streaming analytics: the paper's offline algorithms as
//! bounded-memory incremental state, fed by the engine while the trace
//! streams through (DESIGN.md "Streaming analytics and bounded-memory
//! summaries").
//!
//! The offline modules in `dnhunter-analytics` consume the complete
//! [`crate::SnifferReport`] — a full flow log buffered in memory. A
//! long-running daemon cannot afford that, so [`StreamingAnalytics`]
//! maintains, per worker shard, exactly the aggregates the paper's
//! algorithms need and nothing per-flow:
//!
//! * **Spatial (Alg. 2):** FQDN → server-IP occurrence counts and
//!   2nd-level-domain → server-IP occurrence counts.
//! * **Content (Alg. 3):** organization → (2nd-level domain → flow count).
//! * **Service tags (Alg. 4, Eq. 1):** port → token → client → flow count,
//!   from which `score(X) = Σ_c ln(N_X(c)+1)` is derived at render time.
//! * **Growth (Fig. 6):** per-entity birth-bin multisets, from which the
//!   cumulative unique-entity curves are reconstructed (an entity's birth
//!   bin is the minimum bin still holding one of its flows).
//! * **Delays (Figs. 12–13, Tab. 9):** log2 histograms
//!   ([`dnhunter_telemetry::Log2Hist`] — the same counter-summary shape the
//!   telemetry registry uses) over first-flow and any-flow delays, plus the
//!   answered/useless response counters.
//!
//! **Merge determinism.** Every piece of state is a sum over ordered maps
//! — commutative and associative — so folding per-shard partials in any
//! order yields exactly the sequential run's state, and everything rendered
//! from the folded state (periodic packet-clock snapshot lines plus the
//! final summary) is byte-identical at any `--workers N`. Snapshot lines
//! are scheduled on the packet clock but *derived at finish* from the
//! per-bin counters: emitting them live from one shard's partial view would
//! break that byte-identity.
//!
//! **Retraction.** Because every data field is an occurrence count (what
//! used to be set-union state is a refcounted multiset, and what used to be
//! a min-timestamp is a bin-keyed multiset whose minimum is its first key),
//! every merge has an exact inverse: [`StreamingAnalytics::unmerge`]
//! subtracts a previously merged partial with checked arithmetic, deleting
//! entries whose count reaches zero so the result is indistinguishable from
//! never having merged. This is what lets `dnhunter::stream::windowed`
//! maintain sliding windows by retiring whole time buckets (DESIGN.md
//! "Windowed analytics and retraction"). The two run anchors
//! (`trace_start`, `last_ts`) are deliberately excluded: they are monotone
//! extremes a subtraction cannot restore, and nothing rendered reads them
//! (`last_ts` is write-only; windowed views override `trace_start`).
//!
//! **Memory bounds.** State grows with distinct entities (times active
//! snapshot bins for the birth multisets), not flows. A configurable cap
//! ([`StreamingConfig::max_tracked`]) stops each family of maps from
//! growing past the budget; drops are counted in `dropped_entities` and
//! reported in the summary. While no drop occurs (the default cap of 2^20
//! entities is far above trace scale) streaming aggregates equal the
//! offline modules exactly; past the cap they degrade to documented
//! under-counts — and because caps apply per shard, a run that drops
//! entities is no longer guaranteed byte-identical across worker counts.
//! The equivalence tests pin `dropped_entities == 0`.

use std::any::Any;
use std::collections::BTreeMap;
use std::net::IpAddr;

use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::tokenize_fqdn;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::{builtin_registry, OrgDb};
use dnhunter_telemetry::{self as telemetry, tm_trace, Log2Hist, TraceEvent as Te};

use crate::db::TaggedFlow;

/// Windowed sibling of this module: time-bucketed partial sinks with
/// merge/retract window maintenance (`dnhunter::stream::windowed`).
pub use crate::window as windowed;

/// Finite log2 buckets for the delay histograms: `2^39 µs` ≈ 6.4 days,
/// wide enough that real DNS-to-flow delays never hit the overflow cell.
pub const DELAY_HIST_BUCKETS: usize = 40;

/// Events the engine feeds a streaming sink, in per-shard event order.
///
/// A sink must be mergeable: the parallel pipeline gives each worker its
/// own sink and folds them after the join, so implementations may only
/// keep state whose merge is order-independent (see the module docs).
/// Every event carries its packet timestamp — the windowed sink routes on
/// it, so the time an event is attributed to is part of the contract.
pub trait FlowSink: Send {
    /// First frame timestamp of the whole trace (not just this shard).
    /// Fired once, before any other event of the run.
    fn on_trace_start(&mut self, ts: u64);
    /// A DNS response carrying at least one A/AAAA answer, at its frame
    /// timestamp.
    fn on_answered_response(&mut self, ts: u64);
    /// The *first* flow matching an answered response started
    /// `delay_micros` after it (one event per answered response at most —
    /// the Fig. 12 sample). `ts` is the flow-start timestamp the sample
    /// is attributed to.
    fn on_first_flow_delay(&mut self, ts: u64, delay_micros: u64);
    /// *Any* flow matched a response `delay_micros` after it (the Fig. 13
    /// sample; fires for every tagged flow start). `ts` is the flow-start
    /// timestamp the sample is attributed to.
    fn on_any_flow_delay(&mut self, ts: u64, delay_micros: u64);
    /// A flow finished (eviction, port reuse, or final flush) and its
    /// database row is complete. `flow.second_level` is still unset here;
    /// sinks derive it themselves.
    fn on_flow_finished(&mut self, flow: &TaggedFlow);
    /// Daemon-mode state rotation: retire and return every time bucket
    /// strictly before the packet-clock `horizon` (µs), as `(bucket_index,
    /// partial)` pairs. The engine guarantees no further event at a
    /// timestamp below `horizon` except under injected reordering, which
    /// the windowed sink counts rather than mis-attributes. Sinks without
    /// time-bucketed state (the default) have nothing to retire.
    fn rotate(&mut self, _horizon: u64) -> Vec<(u64, StreamingAnalytics)> {
        Vec::new()
    }
    /// Downcast support for [`StreamingAnalytics::fold`].
    fn as_any_box(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// Tuning for [`StreamingAnalytics`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Packet-clock width of one snapshot bin (µs). Snapshot lines and the
    /// reconstructed growth curves use this granularity.
    pub snapshot_interval_micros: u64,
    /// Entries per ranking in the rendered summary.
    pub top_k: usize,
    /// Soft cap on tracked entities per state family (distinct FQDNs,
    /// organizations, tokens per port, …). Inserts beyond the cap are
    /// dropped and counted.
    pub max_tracked: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            snapshot_interval_micros: 300 * 1_000_000,
            top_k: 10,
            max_tracked: 1 << 20,
        }
    }
}

/// A retraction failed because the subtracted partial was not contained
/// in the receiver. `field` names the first [`StreamState`] field whose
/// checked subtraction underflowed, so every sink field is accounted for
/// in diagnostics (and the xtask L11 lint keeps the unmerge coverage
/// complete). The receiver may be left partially retracted; callers
/// rebuild from the surviving buckets (see `window.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetractError {
    /// The state field that failed its checked subtraction.
    pub field: &'static str,
}

impl std::fmt::Display for RetractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retraction underflow in streaming state field `{}`",
            self.field
        )
    }
}

/// Checked subtraction every piece of retractable sink state implements.
///
/// `retract` removes `other`'s contribution exactly or fails without a
/// silent wrap; `is_void` tells a parent container the value carries no
/// information left and must be deleted, so a retracted map is
/// byte-identical to one that never saw the merged entries.
trait Retract {
    fn retract(&mut self, other: &Self) -> Result<(), ()>;
    fn is_void(&self) -> bool;
}

impl Retract for u64 {
    fn retract(&mut self, other: &Self) -> Result<(), ()> {
        *self = self.checked_sub(*other).ok_or(())?;
        Ok(())
    }
    fn is_void(&self) -> bool {
        *self == 0
    }
}

impl<K: Ord + Clone, V: Retract> Retract for BTreeMap<K, V> {
    fn retract(&mut self, other: &Self) -> Result<(), ()> {
        for (k, v) in other {
            let slot = self.get_mut(k).ok_or(())?;
            slot.retract(v)?;
            if slot.is_void() {
                self.remove(k);
            }
        }
        Ok(())
    }
    fn is_void(&self) -> bool {
        self.is_empty()
    }
}

/// Per-snapshot-bin counters (packet clock, relative to trace start).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct BinCounters {
    flows: u64,
    labeled: u64,
    responses: u64,
}

impl Retract for BinCounters {
    fn retract(&mut self, other: &Self) -> Result<(), ()> {
        self.flows.retract(&other.flows)?;
        self.labeled.retract(&other.labeled)?;
        self.responses.retract(&other.responses)?;
        Ok(())
    }
    fn is_void(&self) -> bool {
        self.flows == 0 && self.labeled == 0 && self.responses == 0
    }
}

/// Per-entity birth record: snapshot bin → number of labeled flows whose
/// `first_ts` fell in that bin. The entity's birth bin is the minimum key,
/// which survives retraction exactly (removing one bucket's flows deletes
/// its bins when their count reaches zero, re-exposing the next-oldest).
type BirthBins = BTreeMap<u64, u64>;

/// The mergeable aggregate state. Separated from [`StreamingAnalytics`] so
/// equality (used by the determinism tests) covers exactly the data, not
/// the suffix/org lookup tables. Every field is either subtractive state
/// covered by `unmerge` or an explicitly waived run anchor — the xtask
/// L11 lint enforces that no field is silently missing an inverse.
// retract_state(unmerge)
#[derive(Debug, Clone, PartialEq, Eq)]
struct StreamState {
    trace_start: Option<u64>, // not_retracted: monotone run anchor (min over shards); windowed views override it
    last_ts: Option<u64>, // not_retracted: monotone run anchor (max over shards); write-only, nothing rendered reads it
    flows: u64,
    labeled_flows: u64,
    answered_responses: u64,
    first_flow_count: u64,
    /// Alg. 2: FQDN → (server → labeled-flow count). The key set of the
    /// inner map is the paper's server set; counts make it retractable.
    fqdn_servers: BTreeMap<DomainName, BTreeMap<IpAddr, u64>>,
    /// Alg. 2: 2nd-level domain → (server → labeled-flow count).
    sld_servers: BTreeMap<DomainName, BTreeMap<IpAddr, u64>>,
    /// Alg. 3: organization → (2nd-level domain → labeled flow count).
    org_content: BTreeMap<String, BTreeMap<DomainName, u64>>,
    /// Alg. 4: port → token → client → flow count (N_X(c) of Eq. 1).
    tag_counts: BTreeMap<u16, BTreeMap<String, BTreeMap<IpAddr, u64>>>,
    /// Labeled flows per server port (ranks ports in the summary).
    port_flows: BTreeMap<u16, u64>,
    /// Fig. 6 birth processes: entity → bin-keyed flow multiset (see
    /// [`BirthBins`]).
    fqdn_birth: BTreeMap<DomainName, BirthBins>,
    sld_birth: BTreeMap<DomainName, BirthBins>,
    server_birth: BTreeMap<IpAddr, BirthBins>,
    /// Packet-clock snapshot bins.
    bins: BTreeMap<u64, BinCounters>,
    first_flow_hist: Log2Hist,
    any_flow_hist: Log2Hist,
    /// Entities discarded by the `max_tracked` cap (summed across families
    /// and, after a fold, across shards).
    dropped_entities: u64,
}

impl StreamState {
    fn new() -> Self {
        StreamState {
            trace_start: None,
            last_ts: None,
            flows: 0,
            labeled_flows: 0,
            answered_responses: 0,
            first_flow_count: 0,
            fqdn_servers: BTreeMap::new(),
            sld_servers: BTreeMap::new(),
            org_content: BTreeMap::new(),
            tag_counts: BTreeMap::new(),
            port_flows: BTreeMap::new(),
            fqdn_birth: BTreeMap::new(),
            sld_birth: BTreeMap::new(),
            server_birth: BTreeMap::new(),
            bins: BTreeMap::new(),
            first_flow_hist: Log2Hist::new(DELAY_HIST_BUCKETS),
            any_flow_hist: Log2Hist::new(DELAY_HIST_BUCKETS),
            dropped_entities: 0,
        }
    }
}

/// Reconstructed Fig. 6 growth curves (mirrors
/// `dnhunter-analytics`' `GrowthCurves` field-for-field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamGrowth {
    pub bin_starts: Vec<u64>,
    pub unique_fqdns: Vec<u64>,
    pub unique_second_levels: Vec<u64>,
    pub unique_servers: Vec<u64>,
}

/// Mutate-or-drop insert under the entity cap: returns the value slot when
/// the key exists or fits, else counts a drop.
fn capped<'m, K: Ord, V: Default>(
    map: &'m mut BTreeMap<K, V>,
    key: K,
    cap: usize,
    dropped: &mut u64,
) -> Option<&'m mut V> {
    if map.len() >= cap && !map.contains_key(&key) {
        *dropped = dropped.saturating_add(1);
        return None;
    }
    Some(map.entry(key).or_default())
}

/// Number of entities per birth bin: each entity contributes once, at its
/// minimum (first) recorded bin.
fn birth_bin_counts<K>(map: &BTreeMap<K, BirthBins>) -> BTreeMap<u64, u64> {
    let mut out: BTreeMap<u64, u64> = BTreeMap::new();
    for bins in map.values() {
        if let Some((&bin, _)) = bins.iter().next() {
            *out.entry(bin).or_default() += 1;
        }
    }
    out
}

/// The streaming analytics sink (see the module docs).
pub struct StreamingAnalytics {
    cfg: StreamingConfig,
    suffixes: SuffixSet,
    orgdb: OrgDb,
    state: StreamState,
}

impl StreamingAnalytics {
    /// A fresh sink. Each pipeline worker gets its own (the suffix set and
    /// org database are per-sink copies so updates stay lock-free).
    pub fn new(cfg: StreamingConfig) -> Self {
        let mut cfg = cfg;
        cfg.snapshot_interval_micros = cfg.snapshot_interval_micros.max(1);
        cfg.max_tracked = cfg.max_tracked.max(1);
        StreamingAnalytics {
            cfg,
            suffixes: SuffixSet::builtin(),
            orgdb: builtin_registry(),
            state: StreamState::new(),
        }
    }

    /// The configuration the sink runs with.
    pub fn config(&self) -> &StreamingConfig {
        &self.cfg
    }

    fn bin_of(&self, ts: u64) -> u64 {
        ts.saturating_sub(self.state.trace_start.unwrap_or(ts)) / self.cfg.snapshot_interval_micros
    }

    /// Fold per-worker partials (in shard order) back into one aggregate.
    /// Returns `None` when `sinks` is empty or holds a foreign sink type.
    pub fn fold(sinks: Vec<Box<dyn FlowSink>>) -> Option<StreamingAnalytics> {
        let mut acc: Option<StreamingAnalytics> = None;
        for sink in sinks {
            let part = *sink.as_any_box().downcast::<StreamingAnalytics>().ok()?;
            match &mut acc {
                None => acc = Some(part),
                Some(a) => a.merge(part),
            }
        }
        acc
    }

    /// Commutative, associative merge of another partial into this one.
    pub fn merge(&mut self, other: StreamingAnalytics) {
        self.merge_ref(&other);
    }

    /// [`merge`](Self::merge) by reference: the windowed layer folds the
    /// same bucket partial into many window positions, so the source must
    /// survive the call.
    pub fn merge_ref(&mut self, other: &StreamingAnalytics) {
        let cap = self.cfg.max_tracked;
        let s = &mut self.state;
        let o = &other.state;
        s.trace_start = match (s.trace_start, o.trace_start) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        s.last_ts = match (s.last_ts, o.last_ts) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        s.flows += o.flows;
        s.labeled_flows += o.labeled_flows;
        s.answered_responses += o.answered_responses;
        s.first_flow_count += o.first_flow_count;
        s.dropped_entities += o.dropped_entities;
        let mut dropped = 0u64;
        for (fqdn, servers) in &o.fqdn_servers {
            if let Some(m) = capped(&mut s.fqdn_servers, fqdn.clone(), cap, &mut dropped) {
                for (ip, n) in servers {
                    if let Some(c) = capped(m, *ip, cap, &mut dropped) {
                        *c += n;
                    }
                }
            }
        }
        for (sld, servers) in &o.sld_servers {
            if let Some(m) = capped(&mut s.sld_servers, sld.clone(), cap, &mut dropped) {
                for (ip, n) in servers {
                    if let Some(c) = capped(m, *ip, cap, &mut dropped) {
                        *c += n;
                    }
                }
            }
        }
        for (org, domains) in &o.org_content {
            if let Some(m) = capped(&mut s.org_content, org.clone(), cap, &mut dropped) {
                for (sld, n) in domains {
                    if let Some(c) = capped(m, sld.clone(), cap, &mut dropped) {
                        *c += n;
                    }
                }
            }
        }
        for (port, tokens) in &o.tag_counts {
            // Never materialise a void entry: retraction removes keys when
            // their value empties, so a key held only by empty values would
            // vanish while another partial still "owns" it, and retracting
            // that partial would underflow.
            if tokens.is_empty() {
                continue;
            }
            if let Some(m) = capped(&mut s.tag_counts, *port, cap, &mut dropped) {
                for (token, clients) in tokens {
                    if let Some(cm) = capped(m, token.clone(), cap, &mut dropped) {
                        for (client, n) in clients {
                            if let Some(c) = capped(cm, *client, cap, &mut dropped) {
                                *c += n;
                            }
                        }
                    }
                }
            }
        }
        for (port, n) in &o.port_flows {
            *s.port_flows.entry(*port).or_default() += n;
        }
        for (fqdn, bins) in &o.fqdn_birth {
            if let Some(m) = capped(&mut s.fqdn_birth, fqdn.clone(), cap, &mut dropped) {
                for (bin, n) in bins {
                    *m.entry(*bin).or_default() += n;
                }
            }
        }
        for (sld, bins) in &o.sld_birth {
            if let Some(m) = capped(&mut s.sld_birth, sld.clone(), cap, &mut dropped) {
                for (bin, n) in bins {
                    *m.entry(*bin).or_default() += n;
                }
            }
        }
        for (ip, bins) in &o.server_birth {
            if let Some(m) = capped(&mut s.server_birth, *ip, cap, &mut dropped) {
                for (bin, n) in bins {
                    *m.entry(*bin).or_default() += n;
                }
            }
        }
        for (bin, counters) in &o.bins {
            let c = s.bins.entry(*bin).or_default();
            c.flows += counters.flows;
            c.labeled += counters.labeled;
            c.responses += counters.responses;
        }
        s.first_flow_hist.merge(&o.first_flow_hist);
        s.any_flow_hist.merge(&o.any_flow_hist);
        s.dropped_entities += dropped;
    }

    /// The exact inverse of [`merge_ref`](Self::merge_ref): subtract a
    /// previously merged partial from this aggregate with checked
    /// arithmetic, deleting entries whose count reaches zero.
    ///
    /// After `a.merge_ref(&b); a.unmerge(&b)` every data field of `a` —
    /// maps, sums, histograms, and everything rendered from them — equals
    /// the state before the merge ([`data_eq`](Self::data_eq) holds and
    /// renders are byte-identical). The two run anchors (`trace_start`,
    /// `last_ts`) are not retracted; see the module docs.
    ///
    /// Fails with the first underflowing field when `other` was not
    /// contained in `self` (e.g. it was never merged, or was merged into a
    /// different aggregate). On failure the receiver may be left partially
    /// retracted; the windowed layer counts the event on the
    /// `dnh_window_retract_underflow_total` metric and rebuilds from its
    /// surviving buckets instead.
    pub fn unmerge(&mut self, other: &StreamingAnalytics) -> Result<(), RetractError> {
        let err = |field: &'static str| RetractError { field };
        let s = &mut self.state;
        let o = &other.state;
        s.flows.retract(&o.flows).map_err(|()| err("flows"))?;
        s.labeled_flows
            .retract(&o.labeled_flows)
            .map_err(|()| err("labeled_flows"))?;
        s.answered_responses
            .retract(&o.answered_responses)
            .map_err(|()| err("answered_responses"))?;
        s.first_flow_count
            .retract(&o.first_flow_count)
            .map_err(|()| err("first_flow_count"))?;
        s.fqdn_servers
            .retract(&o.fqdn_servers)
            .map_err(|()| err("fqdn_servers"))?;
        s.sld_servers
            .retract(&o.sld_servers)
            .map_err(|()| err("sld_servers"))?;
        s.org_content
            .retract(&o.org_content)
            .map_err(|()| err("org_content"))?;
        s.tag_counts
            .retract(&o.tag_counts)
            .map_err(|()| err("tag_counts"))?;
        s.port_flows
            .retract(&o.port_flows)
            .map_err(|()| err("port_flows"))?;
        s.fqdn_birth
            .retract(&o.fqdn_birth)
            .map_err(|()| err("fqdn_birth"))?;
        s.sld_birth
            .retract(&o.sld_birth)
            .map_err(|()| err("sld_birth"))?;
        s.server_birth
            .retract(&o.server_birth)
            .map_err(|()| err("server_birth"))?;
        s.bins.retract(&o.bins).map_err(|()| err("bins"))?;
        s.first_flow_hist
            .sub_merge(&o.first_flow_hist)
            .map_err(|_| err("first_flow_hist"))?;
        s.any_flow_hist
            .sub_merge(&o.any_flow_hist)
            .map_err(|_| err("any_flow_hist"))?;
        s.dropped_entities
            .retract(&o.dropped_entities)
            .map_err(|()| err("dropped_entities"))?;
        Ok(())
    }

    /// Equality over every data field, ignoring the two run anchors
    /// (`trace_start`, `last_ts`) that retraction deliberately leaves
    /// alone. This is the equality [`unmerge`](Self::unmerge) restores.
    pub fn data_eq(&self, other: &StreamingAnalytics) -> bool {
        let (s, o) = (&self.state, &other.state);
        s.flows == o.flows
            && s.labeled_flows == o.labeled_flows
            && s.answered_responses == o.answered_responses
            && s.first_flow_count == o.first_flow_count
            && s.fqdn_servers == o.fqdn_servers
            && s.sld_servers == o.sld_servers
            && s.org_content == o.org_content
            && s.tag_counts == o.tag_counts
            && s.port_flows == o.port_flows
            && s.fqdn_birth == o.fqdn_birth
            && s.sld_birth == o.sld_birth
            && s.server_birth == o.server_birth
            && s.bins == o.bins
            && s.first_flow_hist == o.first_flow_hist
            && s.any_flow_hist == o.any_flow_hist
            && s.dropped_entities == o.dropped_entities
    }

    /// A window's-eye view of this aggregate: same data, anchored at
    /// `origin` with every packet-clock bin key (snapshot bins and birth
    /// bins) shifted down by `bin_offset`. The windowed layer keeps bucket
    /// partials on an absolute bin clock (bin = ts / slide) and rebases at
    /// render time, so a view over `[t0, t1)` is field-for-field equal —
    /// and therefore byte-identical in render — to a fresh sink that only
    /// ever saw the events of `[t0, t1)` with `on_trace_start(t0)`.
    pub(crate) fn rebased_view(&self, origin: u64, bin_offset: u64) -> StreamingAnalytics {
        let mut view = self.clone_data();
        let s = &mut view.state;
        s.trace_start = Some(origin);
        s.last_ts = None;
        let shift = |bins: &mut BirthBins| {
            let shifted: BirthBins = bins
                .iter()
                .map(|(&b, &n)| (b.saturating_sub(bin_offset), n))
                .collect();
            *bins = shifted;
        };
        s.bins = s
            .bins
            .iter()
            .map(|(&b, &c)| (b.saturating_sub(bin_offset), c))
            .collect();
        for b in s.fqdn_birth.values_mut() {
            shift(b);
        }
        for b in s.sld_birth.values_mut() {
            shift(b);
        }
        for b in s.server_birth.values_mut() {
            shift(b);
        }
        view
    }

    /// Clone configuration, lookup tables, and state into a new sink.
    fn clone_data(&self) -> StreamingAnalytics {
        StreamingAnalytics {
            cfg: self.cfg.clone(),
            suffixes: SuffixSet::builtin(),
            orgdb: builtin_registry(),
            state: self.state.clone(),
        }
    }

    // ---- accessors (the equivalence tests compare these against the ----
    // ---- offline modules' output)                                   ----

    /// Total finished flows (labeled or not).
    pub fn flows(&self) -> u64 {
        self.state.flows
    }

    /// Finished flows that carried a label.
    pub fn labeled_flows(&self) -> u64 {
        self.state.labeled_flows
    }

    /// DNS responses with at least one A/AAAA answer.
    pub fn answered_responses(&self) -> u64 {
        self.state.answered_responses
    }

    /// Answered responses never followed by any flow (Tab. 9).
    pub fn useless_responses(&self) -> u64 {
        self.state
            .answered_responses
            .saturating_sub(self.state.first_flow_count)
    }

    /// Entities dropped by the `max_tracked` cap (0 ⇒ aggregates exact).
    pub fn dropped_entities(&self) -> u64 {
        self.state.dropped_entities
    }

    /// Alg. 2 state: FQDN → (server → labeled-flow count). The inner key
    /// set is the paper's server set.
    pub fn fqdn_servers(&self) -> &BTreeMap<DomainName, BTreeMap<IpAddr, u64>> {
        &self.state.fqdn_servers
    }

    /// Alg. 2 state: 2nd-level domain → (server → labeled-flow count).
    pub fn sld_servers(&self) -> &BTreeMap<DomainName, BTreeMap<IpAddr, u64>> {
        &self.state.sld_servers
    }

    /// Alg. 3 state: organization → (2nd-level domain → flow count).
    pub fn org_content(&self) -> &BTreeMap<String, BTreeMap<DomainName, u64>> {
        &self.state.org_content
    }

    /// Alg. 4 state: port → token → client → flow count.
    pub fn tag_counts(&self) -> &BTreeMap<u16, BTreeMap<String, BTreeMap<IpAddr, u64>>> {
        &self.state.tag_counts
    }

    /// First-flow delay histogram (Fig. 12 summary).
    pub fn first_flow_hist(&self) -> &Log2Hist {
        &self.state.first_flow_hist
    }

    /// Any-flow delay histogram (Fig. 13 summary).
    pub fn any_flow_hist(&self) -> &Log2Hist {
        &self.state.any_flow_hist
    }

    /// Eq. 1 scores for one port, in deterministic (token-ordered) sum
    /// order: `score(X) = Σ_c ln(N_X(c) + 1)`.
    pub fn token_scores(&self, port: u16) -> Vec<(String, f64)> {
        let Some(tokens) = self.state.tag_counts.get(&port) else {
            return Vec::new();
        };
        tokens
            .iter()
            .map(|(token, clients)| {
                let score: f64 = clients.values().map(|&n| ((n + 1) as f64).ln()).sum();
                (token.clone(), score)
            })
            .collect()
    }

    /// Reconstruct the Fig. 6 growth curves at the snapshot granularity —
    /// exactly the offline `growth_curves(db, trace_start, interval)`
    /// output: one contiguous sample per bin from the first to the last
    /// bin containing a flow, each sample counting entities born up to
    /// that bin.
    pub fn growth(&self) -> StreamGrowth {
        let mut out = StreamGrowth {
            bin_starts: Vec::new(),
            unique_fqdns: Vec::new(),
            unique_second_levels: Vec::new(),
            unique_servers: Vec::new(),
        };
        let (Some(origin), Some(first), Some(last)) = (
            self.state.trace_start,
            self.flow_bin_edge(true),
            self.flow_bin_edge(false),
        ) else {
            return out;
        };
        let interval = self.cfg.snapshot_interval_micros;
        let fqdn_bins = birth_bin_counts(&self.state.fqdn_birth);
        let sld_bins = birth_bin_counts(&self.state.sld_birth);
        let server_bins = birth_bin_counts(&self.state.server_birth);
        let (mut f, mut s, mut v) = (0u64, 0u64, 0u64);
        // Births can only land in bins that contain a flow, so summing the
        // range below reaches each family's total by `last`.
        for bin in 0..=last {
            f += fqdn_bins.get(&bin).copied().unwrap_or(0);
            s += sld_bins.get(&bin).copied().unwrap_or(0);
            v += server_bins.get(&bin).copied().unwrap_or(0);
            if bin < first {
                continue;
            }
            out.bin_starts.push(origin + bin * interval);
            out.unique_fqdns.push(f);
            out.unique_second_levels.push(s);
            out.unique_servers.push(v);
        }
        out
    }

    /// First (`true`) or last (`false`) snapshot bin containing a flow.
    fn flow_bin_edge(&self, first: bool) -> Option<u64> {
        let mut it = self
            .state
            .bins
            .iter()
            .filter(|(_, c)| c.flows > 0)
            .map(|(&b, _)| b);
        if first {
            it.next()
        } else {
            it.next_back()
        }
    }

    // ---- rendering -------------------------------------------------------

    /// Render the full deterministic output: a header line, one JSONL
    /// snapshot per packet-clock bin, and a final summary object. Derived
    /// entirely from merged state, so the bytes are identical for
    /// sequential and any-worker-count parallel runs.
    // lint_root(determinism): streaming output must be byte-identical across worker counts
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"stream\":\"dn-hunter\",\"interval_micros\":");
        push_u64(&mut out, self.cfg.snapshot_interval_micros);
        out.push_str(",\"origin\":");
        match self.state.trace_start {
            Some(t) => push_u64(&mut out, t),
            None => out.push_str("null"),
        }
        out.push_str("}\n");
        self.render_snapshots(&mut out);
        self.render_summary(&mut out);
        out
    }

    /// The periodic packet-clock snapshot lines: cumulative totals at the
    /// end of every active bin (first to last bin with any activity).
    fn render_snapshots(&self, out: &mut String) {
        let Some(origin) = self.state.trace_start else {
            return;
        };
        let (Some(&first), Some(&last)) = (
            self.state.bins.keys().next(),
            self.state.bins.keys().next_back(),
        ) else {
            return;
        };
        let interval = self.cfg.snapshot_interval_micros;
        let fqdn_bins = birth_bin_counts(&self.state.fqdn_birth);
        let sld_bins = birth_bin_counts(&self.state.sld_birth);
        let server_bins = birth_bin_counts(&self.state.server_birth);
        let (mut flows, mut labeled, mut responses) = (0u64, 0u64, 0u64);
        let (mut f, mut s, mut v) = (0u64, 0u64, 0u64);
        for bin in first..=last {
            if let Some(c) = self.state.bins.get(&bin) {
                flows += c.flows;
                labeled += c.labeled;
                responses += c.responses;
            }
            f += fqdn_bins.get(&bin).copied().unwrap_or(0);
            s += sld_bins.get(&bin).copied().unwrap_or(0);
            v += server_bins.get(&bin).copied().unwrap_or(0);
            out.push_str("{\"ts\":");
            push_u64(out, origin + (bin + 1) * interval);
            out.push_str(",\"flows\":");
            push_u64(out, flows);
            out.push_str(",\"labeled\":");
            push_u64(out, labeled);
            out.push_str(",\"answered_responses\":");
            push_u64(out, responses);
            out.push_str(",\"unique_fqdns\":");
            push_u64(out, f);
            out.push_str(",\"unique_slds\":");
            push_u64(out, s);
            out.push_str(",\"unique_servers\":");
            push_u64(out, v);
            out.push_str("}\n");
        }
    }

    fn render_summary(&self, out: &mut String) {
        out.push_str("{\"summary\":");
        self.render_summary_object(out);
        out.push_str("}\n");
    }

    /// The summary as one JSON object (no wrapper, no newline) — shared
    /// between the stream summary line and the windowed per-window lines.
    pub(crate) fn render_summary_object(&self, out: &mut String) {
        let st = &self.state;
        out.push_str("{\"flows\":");
        push_u64(out, st.flows);
        out.push_str(",\"labeled_flows\":");
        push_u64(out, st.labeled_flows);
        out.push_str(",\"unique_fqdns\":");
        push_u64(out, st.fqdn_servers.len() as u64);
        out.push_str(",\"unique_slds\":");
        push_u64(out, st.sld_servers.len() as u64);
        out.push_str(",\"unique_servers\":");
        push_u64(out, st.server_birth.len() as u64);
        out.push_str(",\"answered_responses\":");
        push_u64(out, st.answered_responses);
        out.push_str(",\"useless_responses\":");
        push_u64(out, self.useless_responses());
        out.push_str(",\"useless_fraction\":");
        let frac = if st.answered_responses == 0 {
            0.0
        } else {
            self.useless_responses() as f64 / st.answered_responses as f64
        };
        push_f64(out, frac);
        out.push_str(",\"first_flow_delay\":");
        push_hist(out, &st.first_flow_hist);
        out.push_str(",\"any_flow_delay\":");
        push_hist(out, &st.any_flow_hist);

        // Alg. 2 view: FQDNs ranked by server-set size.
        out.push_str(",\"top_fqdns_by_servers\":[");
        let mut fqdns: Vec<(&DomainName, usize)> =
            st.fqdn_servers.iter().map(|(d, s)| (d, s.len())).collect();
        fqdns.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (i, (fqdn, servers)) in fqdns.iter().take(self.cfg.top_k).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"fqdn\":");
            push_str(out, &fqdn.to_string());
            out.push_str(",\"servers\":");
            push_u64(out, *servers as u64);
            out.push('}');
        }
        out.push(']');

        // Alg. 3 view: organizations ranked by labeled flows, with their
        // top hosted 2nd-level domains.
        out.push_str(",\"top_orgs\":[");
        let mut orgs: Vec<(&String, u64)> = st
            .org_content
            .iter()
            .map(|(org, domains)| (org, domains.values().sum::<u64>()))
            .collect();
        orgs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (i, (org, total)) in orgs.iter().take(self.cfg.top_k).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"org\":");
            push_str(out, org);
            out.push_str(",\"labeled_flows\":");
            push_u64(out, *total);
            out.push_str(",\"top_domains\":[");
            let mut domains: Vec<(&DomainName, u64)> = st
                .org_content
                .get(*org)
                .map(|m| m.iter().map(|(d, &n)| (d, n)).collect())
                .unwrap_or_default();
            domains.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            for (j, (domain, n)) in domains.iter().take(self.cfg.top_k).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"domain\":");
                push_str(out, &domain.to_string());
                out.push_str(",\"flows\":");
                push_u64(out, *n);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push(']');

        // Alg. 4 / Eq. 1 view: ports ranked by labeled flows, each with its
        // top-scoring service tokens.
        out.push_str(",\"top_ports\":[");
        let mut ports: Vec<(u16, u64)> = st.port_flows.iter().map(|(&p, &n)| (p, n)).collect();
        ports.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (i, (port, n)) in ports.iter().take(self.cfg.top_k).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"port\":");
            push_u64(out, u64::from(*port));
            out.push_str(",\"labeled_flows\":");
            push_u64(out, *n);
            out.push_str(",\"tags\":[");
            let mut scores = self.token_scores(*port);
            scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (j, (token, score)) in scores.iter().take(self.cfg.top_k).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"token\":");
                push_str(out, token);
                out.push_str(",\"score\":");
                push_f64(out, *score);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"dropped_entities\":");
        push_u64(out, st.dropped_entities);
        out.push('}');
    }
}

impl FlowSink for StreamingAnalytics {
    fn on_trace_start(&mut self, ts: u64) {
        let s = &mut self.state;
        s.trace_start = Some(s.trace_start.map_or(ts, |t| t.min(ts)));
    }

    fn on_answered_response(&mut self, ts: u64) {
        let bin = self.bin_of(ts);
        let s = &mut self.state;
        s.answered_responses += 1;
        s.last_ts = Some(s.last_ts.map_or(ts, |t| t.max(ts)));
        s.bins.entry(bin).or_default().responses += 1;
    }

    fn on_first_flow_delay(&mut self, _ts: u64, delay_micros: u64) {
        self.state.first_flow_count += 1;
        self.state.first_flow_hist.record(delay_micros);
    }

    fn on_any_flow_delay(&mut self, _ts: u64, delay_micros: u64) {
        self.state.any_flow_hist.record(delay_micros);
    }

    fn on_flow_finished(&mut self, flow: &TaggedFlow) {
        if telemetry::trace_enabled() {
            let server_key = flow.key.server_trace_key();
            let bytes = flow.bytes_c2s.saturating_add(flow.bytes_s2c);
            tm_trace!(Te::SinkFlow, 0, flow.last_ts, server_key, bytes);
        }
        let bin = self.bin_of(flow.first_ts);
        let cap = self.cfg.max_tracked;
        let mut dropped = 0u64;
        {
            let s = &mut self.state;
            s.flows += 1;
            s.last_ts = Some(s.last_ts.map_or(flow.last_ts, |t| t.max(flow.last_ts)));
            let c = s.bins.entry(bin).or_default();
            c.flows += 1;
            if flow.fqdn.is_some() {
                c.labeled += 1;
                s.labeled_flows += 1;
            }
        }
        if let Some(fqdn) = &flow.fqdn {
            let sld = fqdn.second_level_domain(&self.suffixes);
            let server = flow.key.server;
            let port = flow.key.server_port;
            let client = flow.key.client;
            let org = self.orgdb.org_name(server).to_string();
            let s = &mut self.state;
            if let Some(m) = capped(&mut s.fqdn_servers, fqdn.clone(), cap, &mut dropped) {
                if let Some(n) = capped(m, server, cap, &mut dropped) {
                    *n += 1;
                }
            }
            if let Some(m) = capped(&mut s.sld_servers, sld.clone(), cap, &mut dropped) {
                if let Some(n) = capped(m, server, cap, &mut dropped) {
                    *n += 1;
                }
            }
            if let Some(m) = capped(&mut s.org_content, org, cap, &mut dropped) {
                if let Some(n) = capped(m, sld.clone(), cap, &mut dropped) {
                    *n += 1;
                }
            }
            *s.port_flows.entry(port).or_default() += 1;
            // Apex names tokenize to nothing; creating the port entry for
            // them would store a void value, which breaks retraction's
            // remove-when-empty key accounting (see `merge_ref`).
            let port_tokens = tokenize_fqdn(fqdn, &self.suffixes);
            if !port_tokens.is_empty() {
                if let Some(tokens) = capped(&mut s.tag_counts, port, cap, &mut dropped) {
                    for token in port_tokens {
                        if let Some(clients) = capped(tokens, token, cap, &mut dropped) {
                            if let Some(n) = capped(clients, client, cap, &mut dropped) {
                                *n += 1;
                            }
                        }
                    }
                }
            }
            if let Some(m) = capped(&mut s.fqdn_birth, fqdn.clone(), cap, &mut dropped) {
                *m.entry(bin).or_default() += 1;
            }
            if let Some(m) = capped(&mut s.sld_birth, sld, cap, &mut dropped) {
                *m.entry(bin).or_default() += 1;
            }
            if let Some(m) = capped(&mut s.server_birth, server, cap, &mut dropped) {
                *m.entry(bin).or_default() += 1;
            }
        }
        self.state.dropped_entities += dropped;
    }

    fn as_any_box(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

// ---- JSON helpers (hand-rolled, zero-dependency, deterministic) ----------

pub(crate) fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

fn push_f64(out: &mut String, v: f64) {
    // Fixed 6-decimal formatting: deterministic across platforms, enough
    // precision for fractions and Eq. 1 scores.
    out.push_str(&format!("{v:.6}"));
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_hist(out: &mut String, h: &Log2Hist) {
    out.push_str("{\"count\":");
    push_u64(out, h.count());
    out.push_str(",\"sum\":");
    push_u64(out, h.sum());
    out.push_str(",\"buckets\":[");
    // Trailing zero buckets are elided to keep lines short; the layout is
    // fixed (DELAY_HIST_BUCKETS), so elision is deterministic too.
    let cells = h.buckets();
    let used = cells.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    for (i, &c) in cells.iter().take(used).enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, c);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(client: &str, fqdn: Option<&str>, server: &str, port: u16, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                client.parse().unwrap(),
                server.parse().unwrap(),
                50000,
                port,
                IpProtocol::Tcp,
            ),
            fqdn: fqdn.map(|f| f.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: Some(1000),
            first_ts: ts,
            last_ts: ts + 10,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    fn feed(sink: &mut StreamingAnalytics, flows: &[TaggedFlow]) {
        sink.on_trace_start(0);
        for f in flows {
            sink.on_flow_finished(f);
        }
    }

    #[test]
    fn merge_of_split_equals_sequential() {
        let flows: Vec<TaggedFlow> = (0..40)
            .map(|i| {
                flow(
                    &format!("10.0.0.{}", i % 7),
                    if i % 3 == 0 {
                        None
                    } else {
                        Some(if i % 2 == 0 {
                            "www.example.com"
                        } else {
                            "img.other.org"
                        })
                    },
                    &format!("93.184.216.{}", i % 5),
                    if i % 2 == 0 { 80 } else { 443 },
                    i * 1_000_000,
                )
            })
            .collect();
        let cfg = StreamingConfig {
            snapshot_interval_micros: 5_000_000,
            ..StreamingConfig::default()
        };
        let mut seq = StreamingAnalytics::new(cfg.clone());
        feed(&mut seq, &flows);
        seq.on_answered_response(500_000);
        seq.on_first_flow_delay(500_042, 42);
        seq.on_any_flow_delay(500_042, 42);

        // Split by client hash parity into two partials, merged in both
        // orders.
        let mut a = StreamingAnalytics::new(cfg.clone());
        let mut b = StreamingAnalytics::new(cfg.clone());
        a.on_trace_start(0);
        b.on_trace_start(0);
        for (i, f) in flows.iter().enumerate() {
            if i % 2 == 0 {
                a.on_flow_finished(f);
            } else {
                b.on_flow_finished(f);
            }
        }
        a.on_answered_response(500_000);
        a.on_first_flow_delay(500_042, 42);
        a.on_any_flow_delay(500_042, 42);

        let mut ab = StreamingAnalytics::new(cfg.clone());
        ab.merge(a);
        ab.merge(b);
        assert_eq!(ab.state, seq.state);
        assert_eq!(ab.render(), seq.render());
        assert_eq!(ab.dropped_entities(), 0);
    }

    #[test]
    fn unmerge_inverts_merge_exactly() {
        let mk_flows = |salt: u64| -> Vec<TaggedFlow> {
            (0..25)
                .map(|i| {
                    flow(
                        &format!("10.0.{salt}.{}", i % 5),
                        if i % 4 == 0 {
                            None
                        } else {
                            Some(if (i + salt).is_multiple_of(2) {
                                "cdn.example.com"
                            } else {
                                "static.other.org"
                            })
                        },
                        &format!("93.184.21{salt}.{}", i % 3),
                        443,
                        salt * 1_000 + i * 977,
                    )
                })
                .collect()
        };
        let cfg = StreamingConfig {
            snapshot_interval_micros: 4_000,
            ..StreamingConfig::default()
        };
        let mut a = StreamingAnalytics::new(cfg.clone());
        feed(&mut a, &mk_flows(1));
        a.on_answered_response(123);
        a.on_first_flow_delay(150, 27);
        a.on_any_flow_delay(150, 27);
        let mut b = StreamingAnalytics::new(cfg.clone());
        feed(&mut b, &mk_flows(2));
        b.on_answered_response(456);
        b.on_any_flow_delay(500, 44);

        let before_render = a.render();
        let mut merged = a.clone_data();
        merged.merge_ref(&b);
        assert!(!merged.data_eq(&a), "merge must change the state");
        merged.unmerge(&b).expect("merged partial retracts");
        assert!(merged.data_eq(&a), "unmerge must restore every data field");
        assert_eq!(merged.render(), before_render);
    }

    #[test]
    fn unmerge_of_foreign_partial_is_a_checked_error() {
        let cfg = StreamingConfig::default();
        let mut a = StreamingAnalytics::new(cfg.clone());
        feed(
            &mut a,
            &[flow("10.0.0.1", Some("a.x.com"), "1.1.1.1", 80, 0)],
        );
        let mut b = StreamingAnalytics::new(cfg);
        feed(
            &mut b,
            &[
                flow("10.0.0.1", Some("b.y.com"), "2.2.2.2", 80, 0),
                flow("10.0.0.1", Some("b.y.com"), "2.2.2.2", 80, 5),
            ],
        );
        let e = a.unmerge(&b).expect_err("b was never merged into a");
        assert!(!e.field.is_empty());
    }

    #[test]
    fn growth_counts_entities_by_birth_bin() {
        let mut sink = StreamingAnalytics::new(StreamingConfig {
            snapshot_interval_micros: 100,
            ..StreamingConfig::default()
        });
        feed(
            &mut sink,
            &[
                flow("10.0.0.1", Some("a.x.com"), "1.1.1.1", 80, 0),
                flow("10.0.0.1", Some("b.x.com"), "1.1.1.1", 80, 150),
                flow("10.0.0.1", Some("a.x.com"), "1.1.1.1", 80, 260),
                flow("10.0.0.1", Some("c.y.org"), "2.2.2.2", 80, 350),
            ],
        );
        let g = sink.growth();
        assert_eq!(g.unique_fqdns, vec![1, 2, 2, 3]);
        assert_eq!(g.unique_second_levels, vec![1, 1, 1, 2]);
        assert_eq!(g.unique_servers, vec![1, 1, 1, 2]);
        assert_eq!(g.bin_starts, vec![0, 100, 200, 300]);
    }

    #[test]
    fn useless_fraction_matches_counters() {
        let mut sink = StreamingAnalytics::new(StreamingConfig::default());
        sink.on_trace_start(0);
        sink.on_answered_response(10);
        sink.on_answered_response(20);
        sink.on_first_flow_delay(110, 100);
        assert_eq!(sink.answered_responses(), 2);
        assert_eq!(sink.useless_responses(), 1);
    }

    #[test]
    fn cap_drops_new_entities_and_counts_them() {
        let mut sink = StreamingAnalytics::new(StreamingConfig {
            max_tracked: 2,
            ..StreamingConfig::default()
        });
        feed(
            &mut sink,
            &[
                flow("10.0.0.1", Some("a.x.com"), "1.1.1.1", 80, 0),
                flow("10.0.0.1", Some("b.x.com"), "1.1.1.2", 80, 10),
                flow("10.0.0.1", Some("c.x.com"), "1.1.1.3", 80, 20),
            ],
        );
        assert_eq!(sink.fqdn_servers().len(), 2);
        assert!(sink.dropped_entities() > 0);
        // Flow-level counters are never capped.
        assert_eq!(sink.flows(), 3);
        assert_eq!(sink.labeled_flows(), 3);
    }

    #[test]
    fn render_is_stable_and_escapes_strings() {
        let mut sink = StreamingAnalytics::new(StreamingConfig {
            snapshot_interval_micros: 1_000,
            ..StreamingConfig::default()
        });
        feed(
            &mut sink,
            &[flow("10.0.0.1", Some("www.example.com"), "1.1.1.1", 80, 5)],
        );
        let r1 = sink.render();
        let r2 = sink.render();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("{\"stream\":\"dn-hunter\""));
        assert!(r1.contains("\"summary\""));
        assert!(r1.contains("www.example.com"));
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\u0001\"");
    }

    #[test]
    fn fold_downcasts_and_merges() {
        let mk = || {
            let mut s = StreamingAnalytics::new(StreamingConfig::default());
            s.on_trace_start(0);
            s.on_answered_response(5);
            Box::new(s) as Box<dyn FlowSink>
        };
        let folded = StreamingAnalytics::fold(vec![mk(), mk()]).unwrap();
        assert_eq!(folded.answered_responses(), 2);
        assert!(StreamingAnalytics::fold(Vec::new()).is_none());
    }

    #[test]
    fn rebased_view_matches_a_fresh_run_over_the_same_events() {
        // A sink anchored at bin clock 0 (the windowed bucket trick) viewed
        // through `rebased_view(origin, offset)` must equal a fresh sink
        // that saw the same events with `on_trace_start(origin)`.
        let interval = 1_000u64;
        let origin = 7 * interval;
        let flows = [
            flow("10.0.0.1", Some("a.x.com"), "1.1.1.1", 80, origin + 10),
            flow("10.0.0.2", Some("b.y.org"), "2.2.2.2", 443, origin + 1_500),
        ];
        let cfg = StreamingConfig {
            snapshot_interval_micros: interval,
            ..StreamingConfig::default()
        };
        let mut absolute = StreamingAnalytics::new(cfg.clone());
        absolute.on_trace_start(0);
        for f in &flows {
            absolute.on_flow_finished(f);
        }
        absolute.on_answered_response(origin + 20);
        let mut fresh = StreamingAnalytics::new(cfg);
        fresh.on_trace_start(origin);
        for f in &flows {
            fresh.on_flow_finished(f);
        }
        fresh.on_answered_response(origin + 20);
        let view = absolute.rebased_view(origin, 7);
        assert!(view.data_eq(&fresh));
        assert_eq!(view.render(), fresh.render());
    }
}
