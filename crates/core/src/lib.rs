//! # DN-Hunter
//!
//! A reproduction of *"DNS to the Rescue: Discerning Content and Services in
//! a Tangled Web"* (Bermudez, Mellia, Munafò, Keralapura, Nucci — IMC 2012).
//!
//! DN-Hunter correlates sniffed **DNS responses** with **layer-4 flows** so
//! every flow is tagged with the FQDN its client resolved just before
//! connecting — even when the payload is encrypted, and *before the first
//! data packet arrives*:
//!
//! ```
//! use dnhunter::{RealTimeSniffer, SnifferConfig};
//! use dnhunter_net::{build_udp_v4, build_tcp_v4, MacAddr, TcpFlags};
//! use dnhunter_dns::{codec, DnsMessage, DomainName, QType, ResourceRecord, QClass, RData};
//!
//! let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
//!
//! // The client resolves www.example.com …
//! let q = DnsMessage::query(7, "www.example.com".parse().unwrap(), QType::A);
//! let resp = DnsMessage::answer_to(&q, vec![ResourceRecord {
//!     name: "www.example.com".parse().unwrap(),
//!     class: QClass::In,
//!     ttl: 60,
//!     rdata: RData::A("93.184.216.34".parse().unwrap()),
//! }]);
//! let frame = build_udp_v4(MacAddr::from_id(1), MacAddr::from_id(2),
//!     "192.0.2.53".parse().unwrap(), "10.0.0.5".parse().unwrap(),
//!     53, 40000, &codec::encode(&resp).unwrap()).unwrap();
//! sniffer.process_frame(1_000_000, &frame);
//!
//! // … and the SYN that follows is labelled immediately.
//! let syn = build_tcp_v4(MacAddr::from_id(1), MacAddr::from_id(2),
//!     "10.0.0.5".parse().unwrap(), "93.184.216.34".parse().unwrap(),
//!     51000, 443, 1, 0, TcpFlags::SYN, &[]).unwrap();
//! sniffer.process_frame(1_200_000, &syn);
//!
//! let report = sniffer.finish();
//! let flow = &report.database.flows()[0];
//! assert_eq!(flow.fqdn.as_ref().unwrap().to_string(), "www.example.com");
//! ```
//!
//! The crate hosts the *real-time sniffer* of the paper's Fig. 1 — flow
//! sniffer + DNS response sniffer + DNS resolver + flow tagger — plus the
//! labeled-flow [`db::FlowDatabase`] consumed by the offline analytics in
//! `dnhunter-analytics`, and a [`policy`] layer demonstrating the
//! "identify flows before the flows begin" capability.

#![forbid(unsafe_code)]

/// Daemon mode: poll-driven ingest over any frame source, packet-clock
/// state rotation, and the flow-record (NetFlow/IPFIX-style) regime.
pub mod daemon;
pub mod db;
/// Per-shard sniffer engine shared by the sequential and parallel drivers.
mod engine;
pub mod export;
/// Multi-core ingest: sharded parallel sniffer over §3.1.1 client shards.
pub mod pipeline;
pub mod policy;
/// Bounded SPSC rings connecting the pipeline's dispatcher and workers.
/// Public only under `--cfg loom`, so the schedule-exploration tests can
/// drive the (batched) ring protocol directly — including the deliberately
/// racy mutant that proves the checker catches close-vs-drain races.
#[cfg(loom)]
pub mod ring;
#[cfg(not(loom))]
mod ring;
pub mod sniffer;
/// One-pass streaming analytics fed by the engine, merged per shard.
pub mod stream;
/// Flight-recorder consumers: drop accounting, `--explain` parsing, export.
pub mod traceio;
/// Sliding-window analytics: time-bucketed partial sinks maintained by
/// merge + retraction (also reachable as `stream::windowed`).
pub mod window;

pub use daemon::{
    run_flowrec_daemon, run_frame_daemon, DaemonSniffer, FlowrecConfig, FlowrecStats, Rotation,
    RotationEmitter,
};
pub use db::{FlowDatabase, TaggedFlow};
pub use export::{write_csv, write_tstat_log};
pub use pipeline::{run_records, run_records_with_sinks, ParallelSniffer, PipelineTimings};
pub use policy::{PolicyAction, PolicyDecision, PolicyEnforcer, PolicyRule, RuleEnforcer};
pub use sniffer::{DelaySamples, RealTimeSniffer, SnifferConfig, SnifferReport, SnifferStats};
pub use stream::{FlowSink, RetractError, StreamGrowth, StreamingAnalytics, StreamingConfig};
pub use traceio::{note_trace_drops, parse_explain_target, write_chrome_trace, write_trace_jsonl};
pub use window::{WindowConfig, WindowSpan, WindowedAnalytics, MAX_LIVE_BUCKETS};
