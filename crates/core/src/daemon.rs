//! Daemon mode: a poll/backpressure event loop over any [`FrameSource`],
//! with packet-clock-driven **state rotation** (DESIGN.md §13).
//!
//! The batch drivers hold the whole trace's windowed-analytics state live
//! until `finish`. A long-running service cannot: the [`run_frame_daemon`]
//! loop polls its source (`Pending`/`Ready`/`Eof`), advances a packet
//! clock (`clock = max(clock, ts)` — monotone even over jittered capture
//! stamps), and every `rotate` interval retires every windowed bucket no
//! future event can touch. Retired buckets flow into the
//! [`RotationEmitter`], which replays [`WindowedAnalytics::for_each_window`]
//! *incrementally*: window positions are emitted as soon as every bucket
//! they cover is final, in exactly the order — and with exactly the bytes —
//! the batch sweep would produce. Retire-and-emit is what replaces the
//! [`crate::window::MAX_LIVE_BUCKETS`] overflow drop on an unbounded
//! stream: live state is bounded by rotation cadence, not by dropping
//! events.
//!
//! The **rotation horizon** is the packet clock clamped down to the oldest
//! live flow's first timestamp (a flow contributes to the bucket of its
//! `first_ts` only when it *finishes*, which can be arbitrarily later), so
//! no bucket a live flow can still touch is ever retired. Both drivers
//! compute the same horizon — the sequential sniffer from its flow table,
//! the parallel one from its routing-table mirror — which, together with
//! the rotation barrier firing at the same packet-clock instants, makes
//! daemon output byte-identical at every worker count.
//!
//! [`run_flowrec_daemon`] is the NetFlow/IPFIX-style regime: a versioned
//! export stream ([`dnhunter_net::flowrec`]) carrying mirrored DNS
//! payloads and pre-aggregated flow summaries. Export order is not event
//! order (a flow exports at its *last* packet), so a bounded reorder
//! buffer sits in front of the resolver: records are released in event-time
//! order once the watermark (max event time seen minus the skew bound)
//! passes them, overflow past the buffer's capacity force-releases the
//! earliest record (counted on `dnh_flowrec_skew_overflow_total`), and a
//! record landing behind the release clock is counted late but still
//! processed — never dropped, never panicking.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::io::Read;

use dnhunter_net::{
    ExportRecord, FlowRecError, FlowRecReader, FrameSource, NetError, PcapRecord, SourcePoll,
};
use dnhunter_telemetry::{tm_count, Metric};

use crate::pipeline::ParallelSniffer;
use crate::sniffer::{RealTimeSniffer, SnifferReport};
use crate::stream::{push_u64, FlowSink, StreamingAnalytics};
use crate::window::{WindowConfig, WindowedAnalytics};

/// How long the daemon loop sleeps when its source reports `Pending`
/// (a non-blocking FIFO/socket with nothing buffered). Short enough that
/// replay latency stays sub-millisecond, long enough not to spin.
const PENDING_BACKOFF_MICROS: u64 = 200;

/// Either sniffer driver, behind the one record/rotate surface the daemon
/// loop needs. Rotation is sequential-or-single-dispatcher only: the
/// multi-dispatcher offline driver has no single packet clock while its
/// slices parse concurrently, so it never rotates (the CLI refuses the
/// combination).
pub enum DaemonSniffer {
    Seq(Box<RealTimeSniffer>),
    Par(Box<ParallelSniffer>),
}

impl DaemonSniffer {
    /// Feed one pcap record to the underlying driver.
    // lint_root(ingest): daemon record entry, one call per polled record
    pub fn process_record(&mut self, rec: &PcapRecord) {
        match self {
            DaemonSniffer::Seq(s) => s.process_record(rec),
            DaemonSniffer::Par(s) => s.process_record(rec),
        }
    }

    /// Rotate at packet-clock `clock`: returns the horizon actually used
    /// (clamped to the oldest live flow) and the retired bucket partials,
    /// per-shard lists concatenated in shard order.
    // lint_root(determinism): one rotation point for both drivers
    pub fn rotate(&mut self, clock: u64) -> (u64, Vec<(u64, StreamingAnalytics)>) {
        match self {
            DaemonSniffer::Seq(s) => s.rotate(clock),
            DaemonSniffer::Par(s) => {
                let (horizon, per_shard) = s.rotate(clock);
                (horizon, per_shard.into_iter().flatten().collect())
            }
        }
    }

    /// Finish the run, handing back the report and the per-shard sinks
    /// (shard order) for the emitter's final fold.
    pub fn finish_with_sinks(self) -> (SnifferReport, Vec<Box<dyn FlowSink>>) {
        match self {
            DaemonSniffer::Seq(s) => s.finish_with_sinks(),
            DaemonSniffer::Par(s) => s.finish_with_sinks(),
        }
    }
}

/// The rotation schedule plus the emitter it feeds. Owned by the daemon
/// loop caller so the final [`RotationEmitter::finish`] can fold the
/// post-`finish` sinks in.
pub struct Rotation {
    interval_micros: u64,
    /// Monotone packet clock: `max` over every observed record timestamp.
    clock: u64,
    /// Clock value at the last rotation, anchored at the first record's
    /// timestamp — both are functions of the record stream alone, so the
    /// schedule is deterministic for any source pacing or worker count.
    last_rotate: Option<u64>,
    /// Rotations fired so far.
    pub rotations: u64,
    /// The incremental window renderer fed by each rotation.
    pub emitter: RotationEmitter,
}

impl Rotation {
    /// A rotation schedule firing every `interval_micros` of packet time,
    /// emitting windows shaped by `cfg`.
    pub fn new(interval_micros: u64, cfg: WindowConfig) -> Self {
        Rotation {
            interval_micros: interval_micros.max(1),
            clock: 0,
            last_rotate: None,
            rotations: 0,
            emitter: RotationEmitter::new(cfg, interval_micros.max(1)),
        }
    }

    /// Advance the packet clock by one record timestamp; `Some(clock)`
    /// means a rotation is due at that clock value.
    fn observe(&mut self, ts: u64) -> Option<u64> {
        self.clock = self.clock.max(ts);
        let anchor = *self.last_rotate.get_or_insert(ts);
        (self.clock.saturating_sub(anchor) >= self.interval_micros).then_some(self.clock)
    }

    /// Run one rotation against `sniffer` at packet-clock `clock`.
    // lint_root(determinism): rotation instants are a function of the record stream
    fn fire(&mut self, sniffer: &mut DaemonSniffer, clock: u64) {
        let (horizon, retired) = sniffer.rotate(clock);
        self.last_rotate = Some(clock);
        self.rotations += 1;
        tm_count!(Metric::DaemonRotations);
        self.emitter.on_rotation(horizon, retired);
    }
}

/// Drive `sniffer` from `source` until `Eof`: the daemon's event loop.
/// `Ready` records advance the packet clock and may fire a rotation;
/// `Pending` sleeps briefly (bounded backpressure — the pipeline's rings
/// already bound in-flight work); `on_record(ts)` runs after every record
/// for driver-side polling (metric snapshots). Returns the record count.
// lint_root(ingest): daemon event loop over a polled frame source
pub fn run_frame_daemon(
    source: &mut dyn FrameSource,
    sniffer: &mut DaemonSniffer,
    mut rotation: Option<&mut Rotation>,
    mut on_record: impl FnMut(u64),
) -> Result<u64, NetError> {
    let mut records = 0u64;
    loop {
        match source.poll_next()? {
            SourcePoll::Ready(rec) => {
                records += 1;
                let ts = rec.timestamp_micros();
                if let Some(rot) = rotation.as_deref_mut() {
                    rot.emitter.note_origin(ts);
                }
                sniffer.process_record(&rec);
                if let Some(rot) = rotation.as_deref_mut() {
                    if let Some(clock) = rot.observe(ts) {
                        rot.fire(sniffer, clock);
                    }
                }
                on_record(ts);
            }
            SourcePoll::Pending => {
                std::thread::sleep(std::time::Duration::from_micros(PENDING_BACKOFF_MICROS));
            }
            SourcePoll::Eof => return Ok(records),
        }
    }
}

/// Flow-record ingest tuning: how much export-time skew the reorder
/// buffer absorbs, and its hard capacity.
#[derive(Debug, Clone)]
pub struct FlowrecConfig {
    /// Watermark lag: a record is released once the maximum event time
    /// seen exceeds its own by this much (export order lags event order by
    /// at most a flow's duration; size this to the probe's active timeout).
    pub skew_micros: u64,
    /// Hard cap on buffered records; beyond it the earliest buffered
    /// record is force-released and counted as a skew overflow.
    pub capacity: usize,
}

impl Default for FlowrecConfig {
    fn default() -> Self {
        FlowrecConfig {
            skew_micros: 60 * 1_000_000,
            capacity: 65_536,
        }
    }
}

/// What the flow-record daemon counted, for the driver's summary.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlowrecStats {
    /// DNS export records ingested.
    pub dns_records: u64,
    /// Flow export records ingested.
    pub flow_records: u64,
    /// Records force-released because the buffer hit capacity.
    pub skew_overflow: u64,
    /// Records released behind the release clock (reordering beyond the
    /// skew bound); processed anyway, never dropped.
    pub late_records: u64,
}

/// One buffered export record, ordered by `(event_ts, arrival)` so the
/// release order is deterministic even among equal timestamps.
struct PendingRec {
    ts: u64,
    arrival: u64,
    rec: ExportRecord,
}

impl PartialEq for PendingRec {
    fn eq(&self, other: &Self) -> bool {
        (self.ts, self.arrival) == (other.ts, other.arrival)
    }
}
impl Eq for PendingRec {}
impl PartialOrd for PendingRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.arrival).cmp(&(other.ts, other.arrival))
    }
}

/// The bounded reorder buffer in front of the resolver for the
/// NetFlow/IPFIX regime: DNS must reach Algorithm 1 before the flows it
/// tags, but a flow exports at its *last* packet — so releases follow
/// event time under a watermark, not arrival order.
struct ReorderBuffer {
    heap: BinaryHeap<Reverse<PendingRec>>,
    arrival: u64,
    max_event_ts: u64,
    released_ts: u64,
}

impl ReorderBuffer {
    fn new() -> Self {
        ReorderBuffer {
            heap: BinaryHeap::new(),
            arrival: 0,
            max_event_ts: 0,
            released_ts: 0,
        }
    }

    fn push(&mut self, rec: ExportRecord) {
        let ts = rec.event_ts();
        self.max_event_ts = self.max_event_ts.max(ts);
        let arrival = self.arrival;
        self.arrival += 1;
        self.heap.push(Reverse(PendingRec { ts, arrival, rec }));
    }

    /// End of stream: every buffered record is present and heap-ordered,
    /// so the watermark can jump to infinity — remaining releases are
    /// exact, not skew violations.
    fn seal(&mut self) {
        self.max_event_ts = u64::MAX;
    }

    /// Pop the earliest buffered record if the watermark passed it, or
    /// unconditionally when `force` (capacity overflow).
    fn release(
        &mut self,
        skew: u64,
        force: bool,
        stats: &mut FlowrecStats,
    ) -> Option<ExportRecord> {
        let watermark = self.max_event_ts.saturating_sub(skew);
        let due = self.heap.peek().is_some_and(|p| p.0.ts <= watermark);
        let capacity_forced = force && !self.heap.is_empty();
        if !(due || capacity_forced) {
            return None;
        }
        let Reverse(p) = self.heap.pop()?;
        if !due {
            stats.skew_overflow += 1;
            tm_count!(Metric::FlowrecSkewOverflow);
        }
        if p.ts < self.released_ts {
            // Reordered beyond the skew bound: the resolver sees it out of
            // order (a flow may miss a binding DNS already established for
            // a later clock). Count it; never drop it.
            stats.late_records += 1;
            tm_count!(Metric::FlowrecLateRecords);
        }
        self.released_ts = self.released_ts.max(p.ts);
        Some(p.rec)
    }
}

/// Drive `sniffer` from a flow-record export stream until EOF, releasing
/// records in watermarked event-time order. Rotation (when given) runs on
/// the released-record clock — the same packet-clock contract as
/// [`run_frame_daemon`]. Decode errors surface as `Err` (counted first),
/// never as panics.
// lint_root(ingest): flow-record daemon over an attacker-controlled export stream
pub fn run_flowrec_daemon<R: Read>(
    reader: &mut FlowRecReader<R>,
    sniffer: &mut RealTimeSniffer,
    cfg: &FlowrecConfig,
    mut rotation: Option<&mut Rotation>,
) -> Result<FlowrecStats, FlowRecError> {
    let mut stats = FlowrecStats::default();
    let mut buf = ReorderBuffer::new();
    let capacity = cfg.capacity.max(1);
    let mut ingest =
        |rec: ExportRecord, stats: &mut FlowrecStats, rotation: &mut Option<&mut Rotation>| {
            let ts = rec.event_ts();
            match &rec {
                ExportRecord::Dns(_) => {
                    stats.dns_records += 1;
                    tm_count!(Metric::FlowrecDnsRecords);
                }
                ExportRecord::Flow(_) => {
                    stats.flow_records += 1;
                    tm_count!(Metric::FlowrecFlowRecords);
                }
            }
            if let Some(rot) = rotation.as_deref_mut() {
                rot.emitter.note_origin(ts);
            }
            sniffer.ingest_export(&rec);
            if let Some(rot) = rotation.as_deref_mut() {
                if let Some(clock) = rot.observe(ts) {
                    let (horizon, retired) = sniffer.rotate(clock);
                    rot.last_rotate = Some(clock);
                    rot.rotations += 1;
                    tm_count!(Metric::DaemonRotations);
                    rot.emitter.on_rotation(horizon, retired);
                }
            }
        };
    loop {
        let rec = match reader.next_record() {
            Ok(Some(rec)) => rec,
            Ok(None) => break,
            Err(err) => {
                tm_count!(Metric::FlowrecDecodeErrors);
                return Err(err);
            }
        };
        buf.push(rec);
        while let Some(rec) = buf.release(cfg.skew_micros, buf.heap.len() > capacity, &mut stats) {
            ingest(rec, &mut stats, &mut rotation);
        }
    }
    // End of stream: seal the watermark and drain — the tail releases in
    // exact event order, so it is not a skew violation.
    buf.seal();
    while let Some(rec) = buf.release(cfg.skew_micros, false, &mut stats) {
        ingest(rec, &mut stats, &mut rotation);
    }
    Ok(stats)
}

/// Incremental replica of [`WindowedAnalytics`]'s window sweep, fed by
/// rotations instead of a finish-time pass.
///
/// Correctness rests on the rotation horizon's invariants:
///
/// * every bucket strictly below the retirement floor is **final** — no
///   future event can land in it (late arrivals are counted and refused by
///   the sink), so a window position `e` is emittable once `e < floor`;
/// * the first non-empty retirement's minimum bucket is the **global**
///   minimum (`lo` of the batch sweep): rotation retires *every* bucket
///   below the floor, and later events only open buckets at or above it;
/// * positions are additionally held back until `e ≤ hi + (steps-1)` for
///   the highest retired bucket `hi` seen so far — the batch sweep ends
///   there, so emitting further would fabricate trailing empty windows.
///
/// The rolling accumulator mirrors the batch sweep exactly: merge bucket
/// `e` on entry, retract bucket `e − steps` on exit, rebuild from the
/// surviving range on retraction underflow (counted — the fault matrix
/// pins it to zero). Retired buckets are dropped as soon as their last
/// window retires them, so emitter memory is bounded by rotation cadence
/// plus one window, not by stream length.
pub struct RotationEmitter {
    cfg: WindowConfig,
    rotate_micros: u64,
    /// First record timestamp — the rendered header's `origin`.
    origin: Option<u64>,
    /// Retired-but-still-windowed bucket partials.
    retired: BTreeMap<u64, StreamingAnalytics>,
    /// The batch sweep's `lo`: fixed by the first non-empty retirement.
    lo: Option<u64>,
    /// Highest retired bucket index seen so far.
    hi: u64,
    /// Everything below is final: `horizon / slide` of the last rotation.
    floor: u64,
    /// Next window position to emit.
    next_pos: u64,
    /// The rolling window aggregate, as of `next_pos`.
    acc: StreamingAnalytics,
    /// Unique buckets retired into the emitter.
    pub buckets_retired: u64,
    /// Rendered output: header (lazy), window lines, then one footer line
    /// appended by [`RotationEmitter::finish`].
    pub out: String,
    header_written: bool,
}

impl RotationEmitter {
    /// An emitter for windows shaped by `cfg`, rotating every
    /// `rotate_micros` (echoed in the stream header).
    pub fn new(cfg: WindowConfig, rotate_micros: u64) -> Self {
        let cfg = WindowConfig::new(cfg.window_micros, cfg.slide_micros);
        let acc = StreamingAnalytics::new(cfg.bucket_sink_config());
        RotationEmitter {
            cfg,
            rotate_micros,
            origin: None,
            retired: BTreeMap::new(),
            lo: None,
            hi: 0,
            floor: 0,
            next_pos: 0,
            acc,
            buckets_retired: 0,
            out: String::new(),
            header_written: false,
        }
    }

    /// Record the stream origin (first record timestamp); first call wins.
    pub fn note_origin(&mut self, ts: u64) {
        self.origin.get_or_insert(ts);
    }

    /// Fold one rotation's retired partials in and emit every window
    /// position that became final.
    pub fn on_rotation(&mut self, horizon: u64, retired: Vec<(u64, StreamingAnalytics)>) {
        self.absorb(retired);
        self.floor = self.floor.max(horizon / self.cfg.slide_micros);
        self.emit_ready(false);
    }

    /// Fold retired pairs (shard lists concatenated in shard order; the
    /// per-bucket merge is commutative, so any order folds to the same
    /// partial) and account unique buckets.
    fn absorb(&mut self, retired: Vec<(u64, StreamingAnalytics)>) {
        for (idx, part) in retired {
            self.hi = self.hi.max(idx);
            match self.retired.get_mut(&idx) {
                Some(existing) => existing.merge(part),
                None => {
                    self.buckets_retired += 1;
                    tm_count!(Metric::WindowBucketsRetired);
                    self.retired.insert(idx, part);
                }
            }
        }
    }

    /// Emit every position the batch sweep would have reached by now: all
    /// buckets `≤ e` final (`e < floor`, waived at `finish`) and inside
    /// the sweep's range (`e ≤ hi + steps − 1`).
    // lint_root(determinism): emitted bytes must equal the batch window sweep's
    fn emit_ready(&mut self, at_finish: bool) {
        let n = self.cfg.steps();
        let slide = self.cfg.slide_micros;
        let Some(lo) = self.lo.or_else(|| {
            let first = self.retired.keys().next().copied();
            self.lo = first;
            first
        }) else {
            return;
        };
        if self.next_pos < lo {
            self.next_pos = lo;
        }
        while (at_finish || self.next_pos < self.floor) && self.next_pos <= self.hi + (n - 1) {
            let e = self.next_pos;
            if let Some(part) = self.retired.get(&e) {
                self.acc.merge_ref(part);
            }
            if e >= lo + n {
                if let Some(expired) = self.retired.get(&(e - n)) {
                    if self.acc.unmerge(expired).is_err() {
                        // Same observable-not-fatal contract as the batch
                        // sweep: count the breach, rebuild from surviving
                        // buckets, keep the output correct.
                        tm_count!(Metric::WindowRetractUnderflow);
                        self.acc = StreamingAnalytics::new(self.cfg.bucket_sink_config());
                        for (_, part) in self.retired.range(e + 1 - n..=e) {
                            self.acc.merge_ref(part);
                        }
                    }
                }
                // Bucket e−n left the window; no later position needs it.
                self.retired.remove(&(e - n));
            }
            let first_bucket = (e + 1).saturating_sub(n);
            let start = first_bucket * slide;
            let view = self.acc.rebased_view(start, first_bucket);
            self.write_header_once();
            self.out.push_str("{\"window_start\":");
            push_u64(&mut self.out, start);
            self.out.push_str(",\"window_end\":");
            push_u64(&mut self.out, (e + 1) * slide);
            self.out.push_str(",\"seq\":");
            push_u64(&mut self.out, e - lo);
            self.out.push_str(",\"summary\":");
            view.render_summary_object(&mut self.out);
            self.out.push_str("}\n");
            self.next_pos += 1;
        }
    }

    fn write_header_once(&mut self) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        self.out
            .push_str("{\"stream\":\"dn-hunter-rotated\",\"window_micros\":");
        push_u64(&mut self.out, self.cfg.window_micros);
        self.out.push_str(",\"slide_micros\":");
        push_u64(&mut self.out, self.cfg.slide_micros);
        self.out.push_str(",\"rotate_micros\":");
        push_u64(&mut self.out, self.rotate_micros);
        self.out.push_str(",\"origin\":");
        match self.origin {
            Some(t) => push_u64(&mut self.out, t),
            None => self.out.push_str("null"),
        }
        self.out.push_str("}\n");
    }

    /// End of stream: retire everything still live in the finished sinks,
    /// sweep the remaining window positions, and append the footer line.
    /// Returns the full rotated JSONL stream.
    pub fn finish(mut self, rotations: u64, sinks: Vec<Box<dyn FlowSink>>) -> String {
        let mut late_bucket_events = 0u64;
        let mut dropped_bucket_events = 0u64;
        for mut sink in sinks {
            self.absorb(sink.rotate(u64::MAX));
            if let Ok(w) = sink.as_any_box().downcast::<WindowedAnalytics>() {
                late_bucket_events += w.late_bucket_events();
                dropped_bucket_events += w.dropped_bucket_events();
            }
        }
        self.emit_ready(true);
        self.write_header_once();
        self.out.push_str("{\"rotations\":");
        push_u64(&mut self.out, rotations);
        self.out.push_str(",\"buckets_retired\":");
        push_u64(&mut self.out, self.buckets_retired);
        self.out.push_str(",\"late_bucket_events\":");
        push_u64(&mut self.out, late_bucket_events);
        self.out.push_str(",\"dropped_bucket_events\":");
        push_u64(&mut self.out, dropped_bucket_events);
        self.out.push_str("}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(i: u64, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                format!("10.0.0.{}", i % 5).parse().unwrap(),
                format!("93.184.216.{}", i % 3).parse().unwrap(),
                50000 + i as u16,
                443,
                IpProtocol::Tcp,
            ),
            fqdn: (!i.is_multiple_of(3)).then(|| {
                if i.is_multiple_of(2) {
                    "www.example.com".parse().unwrap()
                } else {
                    "img.other.org".parse().unwrap()
                }
            }),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: Some(1000 + i),
            first_ts: ts,
            last_ts: ts + 10,
            packets_c2s: 1 + i,
            packets_s2c: 1,
            bytes_c2s: 10 * (i + 1),
            bytes_s2c: 10,
            protocol: AppProtocol::Tls,
            tls: None,
            in_warmup: false,
        }
    }

    fn feed(sink: &mut WindowedAnalytics, flows: &[TaggedFlow]) {
        sink.on_trace_start(flows.first().map_or(0, |f| f.first_ts));
        for f in flows {
            sink.on_flow_finished(f);
            sink.on_any_flow_delay(f.first_ts, 40);
        }
    }

    fn cfg() -> WindowConfig {
        WindowConfig::new(4_000_000, 2_000_000)
    }

    /// Rotating at any cadence reproduces the batch sweep's window lines.
    #[test]
    fn rotated_lines_equal_batch_sweep() {
        let flows: Vec<TaggedFlow> = (0u64..40).map(|i| flow(i, 500_000 + i * 600_000)).collect();
        let mut batch = WindowedAnalytics::new(cfg());
        feed(&mut batch, &flows);
        let reference: Vec<String> = batch.render().lines().skip(1).map(str::to_owned).collect();

        for rotate_every in [1usize, 3, 7, 40] {
            let mut sink = WindowedAnalytics::new(cfg());
            let mut emitter = RotationEmitter::new(cfg(), 1_000_000);
            emitter.note_origin(flows[0].first_ts);
            sink.on_trace_start(flows[0].first_ts);
            for (i, f) in flows.iter().enumerate() {
                sink.on_flow_finished(f);
                sink.on_any_flow_delay(f.first_ts, 40);
                if (i + 1) % rotate_every == 0 {
                    // Horizon = current clock: every flow here is finished
                    // the moment it is fed, so nothing live holds it back.
                    let horizon = f.first_ts;
                    let retired = FlowSink::rotate(&mut sink, horizon);
                    emitter.on_rotation(horizon, retired);
                }
            }
            let out = emitter.finish(0, vec![Box::new(sink) as Box<dyn FlowSink>]);
            let lines: Vec<String> = out
                .lines()
                .filter(|l| l.starts_with("{\"window_start\""))
                .map(str::to_owned)
                .collect();
            assert_eq!(lines, reference, "cadence {rotate_every} diverged");
        }
    }

    #[test]
    fn header_and_footer_shape() {
        let sink = WindowedAnalytics::new(cfg());
        let emitter = RotationEmitter::new(cfg(), 600_000_000);
        let out = emitter.finish(3, vec![Box::new(sink) as Box<dyn FlowSink>]);
        let mut lines = out.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("{\"stream\":\"dn-hunter-rotated\""));
        assert!(header.contains("\"rotate_micros\":600000000"));
        assert!(header.contains("\"origin\":null"));
        let footer = lines.next().unwrap();
        assert!(footer.starts_with("{\"rotations\":3"));
        assert!(footer.contains("\"dropped_bucket_events\":0"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn reorder_buffer_releases_in_event_order_within_skew() {
        let mut stats = FlowrecStats::default();
        let mut buf = ReorderBuffer::new();
        let dns = |ts: u64| {
            ExportRecord::Dns(dnhunter_net::DnsExportRecord {
                ts_micros: ts,
                client: "10.0.0.1".parse().unwrap(),
                message: vec![0; 4],
            })
        };
        for ts in [500u64, 100, 300, 900, 200] {
            buf.push(dns(ts));
        }
        // Watermark = 900 - 250 = 650: releases 100, 200, 300, 500.
        let mut released = Vec::new();
        while let Some(rec) = buf.release(250, false, &mut stats) {
            released.push(rec.event_ts());
        }
        assert_eq!(released, vec![100, 200, 300, 500]);
        assert_eq!(stats.late_records, 0);
        // Capacity pressure forces the 900-ts record out while it is still
        // inside the skew window: that is the overflow the metric counts.
        assert!(buf.release(250, true, &mut stats).is_some());
        assert_eq!(stats.skew_overflow, 1);
        // A record behind the release clock is late but still released,
        // and the sealed EOF drain is not a skew violation.
        buf.push(dns(50));
        buf.seal();
        while buf.release(250, false, &mut stats).is_some() {}
        assert_eq!(stats.late_records, 1);
        assert_eq!(stats.skew_overflow, 1);
    }
}
