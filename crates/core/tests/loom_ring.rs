//! Loom-style schedule exploration of the pipeline's ring handoff.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p dnhunter --test
//! loom_ring --release`. Under `--cfg loom` the ring's blocking operations
//! become yield loops over the loom shim's perturbed mutex (see
//! `src/ring.rs`), so each iteration executes a materially different
//! producer/consumer interleaving.
//!
//! The ring module is private; these tests drive it through the public
//! [`ParallelSniffer`], whose dispatcher/worker protocol is exactly the
//! batch handoff under scrutiny: batches cross the capacity-bounded ring,
//! arenas come back over the recycle ring, close-on-drop ends the workers.
#![cfg(loom)]

use dnhunter::{ParallelSniffer, RealTimeSniffer, SnifferConfig};
use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};

/// A tiny deterministic frame sequence: one DNS-ish UDP query per client,
/// then a TCP SYN per client. Small enough to model-check, rich enough to
/// cross the ring in both roles (frame batches out, arenas back).
fn frames() -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..4u8 {
        let client = format!("10.0.0.{}", i + 1).parse().unwrap();
        let server = format!("93.184.216.{}", i + 1).parse().unwrap();
        let udp = build_udp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            server,
            40_000 + u16::from(i),
            8_000,
            b"payload",
        )
        .unwrap();
        out.push((1_000 * u64::from(i) + 1, udp));
        let syn = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            server,
            50_000 + u16::from(i),
            443,
            1,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap();
        out.push((1_000 * u64::from(i) + 500, syn));
    }
    out
}

/// Across every explored schedule, the pipeline must deliver all frames
/// exactly once and in order — the merged report equals the sequential one.
#[test]
fn ring_handoff_is_complete_and_ordered_under_perturbed_schedules() {
    let input = frames();
    let mut sequential = RealTimeSniffer::new(SnifferConfig::default());
    for (ts, frame) in &input {
        sequential.process_frame(*ts, frame);
    }
    let reference = sequential.finish();
    let want_frames = reference.sniffer_stats.frames;
    let want_rows = reference.database.len();

    loom::model(move || {
        let mut parallel = ParallelSniffer::new(SnifferConfig::default(), 2);
        for (ts, frame) in &input {
            parallel.process_frame(*ts, frame);
        }
        let report = parallel.finish();
        assert_eq!(report.sniffer_stats.frames, want_frames);
        assert_eq!(report.database.len(), want_rows);
    });
}

/// Dropping the pipeline mid-stream (worker channels close while batches
/// may be in flight) must neither deadlock nor panic, on any schedule.
#[test]
fn early_drop_closes_cleanly() {
    let input = frames();
    loom::model(move || {
        let mut parallel = ParallelSniffer::new(SnifferConfig::default(), 2);
        for (ts, frame) in input.iter().take(3) {
            parallel.process_frame(*ts, frame);
        }
        drop(parallel);
    });
}
