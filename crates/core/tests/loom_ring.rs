//! Loom-style schedule exploration of the pipeline's ring handoff.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p dnhunter --test
//! loom_ring --release`. Under `--cfg loom` the ring's blocking operations
//! become yield loops over the loom shim's perturbed mutex (see
//! `src/ring.rs`), so each iteration executes a materially different
//! producer/consumer interleaving.
//!
//! Two layers are exercised. The batched ring operations are driven
//! directly (the module is `pub` under `--cfg loom`): `send_batch` /
//! `recv_batch` must lose nothing and preserve FIFO order across every
//! explored schedule, including the send-then-drop shutdown edge, and the
//! deliberately racy `recv_batch_racy` mutant must be *caught* — proving
//! the exploration still finds close-vs-drain races. On top of that, the
//! public [`ParallelSniffer`] runs the full dispatcher/worker protocol:
//! batches cross the capacity-bounded ring, arenas come back over the
//! recycle ring, close-on-drop ends the workers.
#![cfg(loom)]

use dnhunter::ring;
use dnhunter::{ParallelSniffer, RealTimeSniffer, SnifferConfig};
use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;

/// A tiny deterministic frame sequence: one DNS-ish UDP query per client,
/// then a TCP SYN per client. Small enough to model-check, rich enough to
/// cross the ring in both roles (frame batches out, arenas back).
fn frames() -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..4u8 {
        let client = format!("10.0.0.{}", i + 1).parse().unwrap();
        let server = format!("93.184.216.{}", i + 1).parse().unwrap();
        let udp = build_udp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            server,
            40_000 + u16::from(i),
            8_000,
            b"payload",
        )
        .unwrap();
        out.push((1_000 * u64::from(i) + 1, udp));
        let syn = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            server,
            50_000 + u16::from(i),
            443,
            1,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap();
        out.push((1_000 * u64::from(i) + 500, syn));
    }
    out
}

/// Across every explored schedule, the pipeline must deliver all frames
/// exactly once and in order — the merged report equals the sequential one.
#[test]
fn ring_handoff_is_complete_and_ordered_under_perturbed_schedules() {
    let input = frames();
    let mut sequential = RealTimeSniffer::new(SnifferConfig::default());
    for (ts, frame) in &input {
        sequential.process_frame(*ts, frame);
    }
    let reference = sequential.finish();
    let want_frames = reference.sniffer_stats.frames;
    let want_rows = reference.database.len();

    loom::model(move || {
        let mut parallel = ParallelSniffer::new(SnifferConfig::default(), 2);
        for (ts, frame) in &input {
            parallel.process_frame(*ts, frame);
        }
        let report = parallel.finish();
        assert_eq!(report.sniffer_stats.frames, want_frames);
        assert_eq!(report.database.len(), want_rows);
    });
}

/// The batched operations, driven directly: a producer pushes several
/// batches through a ring smaller than the total (so `send_batch` must
/// block mid-stream) and then drops its sender. On every explored schedule
/// the consumer's `recv_batch` loop must observe every value exactly once,
/// in order — the close flag may never eclipse queued values.
#[test]
fn batched_push_pop_loses_nothing_across_send_then_drop() {
    loom::model(|| {
        let (tx, rx) = ring::channel::<u32>(2);
        let producer = loom::thread::spawn(move || {
            for pair in [[0u32, 1], [2, 3], [4, 5]] {
                let mut batch = pair.to_vec();
                tx.send_batch(&mut batch).expect("receiver alive");
                assert!(batch.is_empty(), "send_batch moves every value");
            }
            // `tx` drops here: shutdown races against the in-flight drain.
        });
        let mut got = Vec::new();
        loop {
            // Odd `max` so drains straddle batch boundaries.
            if rx.recv_batch(&mut got, 3) == 0 {
                break;
            }
        }
        producer.join().expect("producer must not panic");
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "lossless FIFO");
    });
}

/// The checker's own regression test: `recv_batch_racy` reads `closed` in
/// a separate critical section from the drain, so a send-then-drop landing
/// between the two reports end-of-stream while values sit in the queue.
/// The exploration must find such a schedule — if this stops firing, the
/// lossless guarantee above proves nothing.
#[test]
fn racy_batched_pop_is_caught() {
    let violated = Arc::new(AtomicBool::new(false));
    let violated_in_model = Arc::clone(&violated);
    loom::model(move || {
        let (tx, rx) = ring::channel::<u32>(4);
        let producer = loom::thread::spawn(move || {
            let mut batch = vec![1u32, 2];
            tx.send_batch(&mut batch).expect("receiver alive");
        });
        let mut got = Vec::new();
        loop {
            if rx.recv_batch_racy(&mut got, 2) == 0 {
                break;
            }
        }
        producer.join().expect("producer must not panic");
        if got.len() != 2 {
            violated_in_model.store(true, Ordering::Relaxed);
        }
    });
    assert!(
        violated.load(Ordering::Relaxed),
        "schedule exploration failed to catch the check-then-drain race in \
         recv_batch_racy; the batched-ring checks in this suite prove \
         nothing if this fires"
    );
}

/// Dropping the pipeline mid-stream (worker channels close while batches
/// may be in flight) must neither deadlock nor panic, on any schedule.
#[test]
fn early_drop_closes_cleanly() {
    let input = frames();
    loom::model(move || {
        let mut parallel = ParallelSniffer::new(SnifferConfig::default(), 2);
        for (ts, frame) in input.iter().take(3) {
            parallel.process_frame(*ts, frame);
        }
        drop(parallel);
    });
}
