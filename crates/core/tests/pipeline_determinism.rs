//! The parallel pipeline's headline guarantee: for any worker count *and*
//! dispatcher count, the merged [`SnifferReport`] is **byte-identical** to
//! the sequential sniffer's. Determinism is by construction — global
//! sequence numbers, dispatcher-broadcast eviction ticks, the serialized
//! routing token, `(seq, phase)`-ordered merge — and these tests pin it
//! against a full seeded simnet workload (DNS, TCP/TLS, UDP, port reuse,
//! idle evictions, the §5.1 delay accounting, all of it).

use dnhunter::{run_records, ParallelSniffer, RealTimeSniffer, SnifferConfig, SnifferReport};
use dnhunter_simnet::{profiles, TraceGenerator};

/// Canonical serialization of everything a report contains. Two reports
/// with equal digests are equal field-for-field, including database row
/// order and every delay/time-series sample.
fn digest(report: &SnifferReport) -> String {
    let mut out = String::new();
    let mut push = |part: Result<String, serde_json::Error>| {
        out.push_str(&part.expect("report part serializes"));
        out.push('\n');
    };
    push(serde_json::to_string(report.database.flows()));
    push(serde_json::to_string(&report.sniffer_stats));
    push(serde_json::to_string(&report.resolver_stats));
    push(serde_json::to_string(&report.delays));
    push(serde_json::to_string(&report.dns_response_times));
    push(serde_json::to_string(&report.answers_per_response));
    push(serde_json::to_string(&report.trace_start));
    push(serde_json::to_string(&report.trace_end));
    push(serde_json::to_string(&report.warmup_micros));
    out
}

#[test]
fn parallel_report_is_byte_identical_to_sequential() {
    let profile = profiles::eu1_adsl1().scaled(0.2);
    let trace = TraceGenerator::new(profile, false).generate();
    assert!(
        trace.records.len() > 5_000,
        "trace too small ({} frames) to exercise the pipeline",
        trace.records.len()
    );

    let config = SnifferConfig::default();

    let mut sequential = RealTimeSniffer::new(config.clone());
    for rec in &trace.records {
        sequential.process_record(rec);
    }
    let reference = sequential.finish();
    let reference_digest = digest(&reference);

    // The workload must actually exercise tagging and flow accounting for
    // the byte-identity claim to mean anything.
    assert!(reference.database.len() > 50, "too few flows");
    assert!(
        reference.sniffer_stats.dns_responses > 50,
        "too few responses"
    );
    assert!(reference.sniffer_stats.tag_hits > 0, "no tags assigned");

    for workers in [1usize, 2, 8] {
        let mut parallel = ParallelSniffer::new(config.clone(), workers);
        for rec in &trace.records {
            parallel.process_record(rec);
        }
        let (report, timings) = parallel.finish_with_timings();
        assert_eq!(timings.workers, workers);
        assert_eq!(
            digest(&report),
            reference_digest,
            "{workers}-worker report diverged from the sequential report"
        );
        // The allocation diet must be visible: interning reuses far more
        // FQDN Arcs than it allocates on a workload with repeated lookups.
        assert!(
            timings.intern.reused > timings.intern.allocated,
            "interner should mostly reuse ({:?})",
            timings.intern
        );
    }
}

#[test]
fn multi_dispatcher_report_is_byte_identical_to_sequential() {
    let profile = profiles::eu1_adsl1().scaled(0.2);
    let trace = TraceGenerator::new(profile, false).generate();

    let config = SnifferConfig::default();
    let mut sequential = RealTimeSniffer::new(config.clone());
    for rec in &trace.records {
        sequential.process_record(rec);
    }
    let reference = sequential.finish();
    let reference_digest = digest(&reference);
    assert!(reference.sniffer_stats.tag_hits > 0, "no tags assigned");

    for (workers, dispatchers) in [(1usize, 1usize), (2, 2), (8, 2)] {
        let (report, timings) = run_records(&config, workers, dispatchers, &trace.records);
        assert_eq!(timings.workers, workers);
        assert_eq!(timings.dispatchers, dispatchers);
        assert_eq!(
            timings.dispatcher_busy_micros.len(),
            dispatchers,
            "one parse-busy sample per dispatcher"
        );
        assert_eq!(
            digest(&report),
            reference_digest,
            "{workers}x{dispatchers} (workers x dispatchers) report \
             diverged from the sequential report"
        );
    }
}

#[test]
fn parallel_sniffer_with_empty_input_matches_sequential() {
    let config = SnifferConfig::default();
    let reference = RealTimeSniffer::new(config.clone()).finish();
    let parallel = ParallelSniffer::new(config.clone(), 4).finish();
    assert_eq!(digest(&parallel), digest(&reference));
    // The multi-dispatcher driver clamps to one dispatcher on an empty
    // trace and must produce the same empty report.
    let (report, timings) = run_records(&config, 4, 8, &[]);
    assert_eq!(timings.dispatchers, 1);
    assert_eq!(digest(&report), digest(&reference));
}
