//! Telemetry companion to `pipeline_determinism`: the *stable-class*
//! metric snapshot is a pure function of the input trace. A sequential
//! run and merged parallel runs at any worker count must render the same
//! Prometheus exposition and the same final JSONL line, byte for byte
//! (DESIGN.md "Telemetry and live monitoring").

use std::sync::Arc;

use dnhunter::{ParallelSniffer, RealTimeSniffer, SnifferConfig};
use dnhunter_simnet::{profiles, TraceGenerator};
use dnhunter_telemetry as telemetry;

#[test]
fn stable_metrics_identical_across_worker_counts() {
    let profile = profiles::eu1_adsl1().scaled(0.1);
    let trace = TraceGenerator::new(profile, false).generate();
    assert!(
        trace.records.len() > 5_000,
        "trace too small ({} frames) to exercise the pipeline",
        trace.records.len()
    );
    let config = SnifferConfig::default();

    let reference = {
        let registry = Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let mut sequential = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            sequential.process_record(rec);
        }
        let report = sequential.finish();
        // The workload must actually drive the instrumented layers for
        // byte-equality to mean anything.
        assert!(report.sniffer_stats.tag_hits > 0, "no tags assigned");
        registry.snapshot()
    };
    let reference_prom = telemetry::prometheus(&reference, false);
    let reference_jsonl = telemetry::jsonl(&reference, 0, 0, false);
    assert!(reference.get(telemetry::Metric::IngestFrames) > 5_000);
    assert!(reference.get(telemetry::Metric::DnsResponsesSniffed) > 0);
    assert!(reference.get(telemetry::Metric::ResolverHits) > 0);
    assert!(reference.get(telemetry::Metric::FlowsStarted) > 0);
    // Final flush returned every flow: the gauge must read empty.
    assert_eq!(reference.gauge(telemetry::Metric::FlowTableSize), 0);

    for workers in [1usize, 2, 8] {
        let registry = Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let mut parallel = ParallelSniffer::new(config.clone(), workers);
        for rec in &trace.records {
            parallel.process_record(rec);
        }
        let _ = parallel.finish();
        let snap = registry.snapshot();
        assert_eq!(
            telemetry::prometheus(&snap, false),
            reference_prom,
            "{workers}-worker stable exposition diverged from sequential"
        );
        assert_eq!(
            telemetry::jsonl(&snap, 0, 0, false),
            reference_jsonl,
            "{workers}-worker stable JSONL diverged from sequential"
        );
    }
}

#[test]
fn snapshots_fire_on_packet_timestamps() {
    let profile = profiles::eu1_adsl1().scaled(0.1);
    let trace = TraceGenerator::new(profile, false).generate();
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    // One snapshot per 10 minutes of *trace* time: the count depends only
    // on the trace's timestamps, never on host speed.
    let mut emitter = telemetry::SnapshotEmitter::new(600 * 1_000_000);
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    let mut lines = Vec::new();
    for rec in &trace.records {
        let ts = rec.timestamp_micros();
        sniffer.process_record(rec);
        if emitter.poll(ts) {
            let seq = emitter.emitted().saturating_sub(1);
            lines.push(telemetry::jsonl(&registry.snapshot(), seq, ts, false));
        }
    }
    let span = trace
        .records
        .last()
        .map(|r| r.timestamp_micros())
        .unwrap_or(0)
        .saturating_sub(
            trace
                .records
                .first()
                .map(|r| r.timestamp_micros())
                .unwrap_or(0),
        );
    let expected = (span / (600 * 1_000_000)) as usize;
    assert!(
        lines.len() >= expected.saturating_sub(1) && lines.len() <= expected + 1,
        "{} snapshots over a {span}µs trace (expected ~{expected})",
        lines.len()
    );
    assert!(lines.len() >= 2, "need at least two mid-run snapshots");
    // Counters are monotone across successive snapshots of one run.
    let frames: Vec<u64> = lines
        .iter()
        .map(|l| {
            l.split("\"dnh_ingest_frames_total\":")
                .nth(1)
                .and_then(|r| r.split([',', '}']).next())
                .and_then(|v| v.parse().ok())
                .expect("frames counter present")
        })
        .collect();
    assert!(frames.windows(2).all(|w| w[0] <= w[1]));
}
