//! Property tests for the retraction machinery behind windowed analytics:
//! `StreamingAnalytics::unmerge` must be a *true* inverse of `merge_ref` —
//! not just on the counters, but on the full data state and the rendered
//! bytes — for arbitrary interleavings of sink events. The sliding-window
//! sweep built on top of it must therefore match a fresh per-slice run for
//! arbitrary window geometries.

use dnhunter::{
    FlowSink, StreamingAnalytics, StreamingConfig, TaggedFlow, WindowConfig, WindowedAnalytics,
};
use dnhunter_flow::{AppProtocol, FlowKey};
use dnhunter_net::IpProtocol;
use proptest::prelude::*;

/// One abstract sink event; small index pools force heavy key sharing
/// between the merged and retracted halves, which is exactly where a
/// destructive (set-based rather than refcounted) state would break.
#[derive(Debug, Clone)]
enum Ev {
    Answered(u64),
    FirstDelay(u64, u64),
    AnyDelay(u64, u64),
    Flow {
        ts: u64,
        client: u8,
        server: u8,
        fqdn: u8,
        port_alt: bool,
    },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    (
        0u8..4,
        0u64..8_000_000,
        0u8..4,
        0u8..3,
        0u8..5,
        any::<bool>(),
        0u64..2_000_000,
    )
        .prop_map(
            |(kind, ts, client, server, fqdn, port_alt, delay)| match kind {
                0 => Ev::Answered(ts),
                1 => Ev::FirstDelay(ts, delay),
                2 => Ev::AnyDelay(ts, delay),
                _ => Ev::Flow {
                    ts,
                    client,
                    server,
                    fqdn,
                    port_alt,
                },
            },
        )
}

fn flow_of(ts: u64, client: u8, server: u8, fqdn: u8, port_alt: bool) -> TaggedFlow {
    // `example.com` is deliberate: apex names tokenize to zero tokens,
    // which once produced void tag-count entries whose remove-when-empty
    // retraction underflowed (the bug class these properties pin down).
    static FQDNS: [&str; 4] = [
        "www.example.com",
        "example.com",
        "cdn.other.org",
        "api.other.org",
    ];
    TaggedFlow {
        key: FlowKey::from_initiator(
            format!("10.0.0.{client}").parse().unwrap(),
            format!("93.184.216.{server}").parse().unwrap(),
            50_000,
            if port_alt { 80 } else { 443 },
            IpProtocol::Tcp,
        ),
        fqdn: (fqdn > 0).then(|| FQDNS[(fqdn - 1) as usize].parse().unwrap()),
        second_level: None,
        alt_labels: Vec::new(),
        tag_delay_micros: Some(1_000),
        first_ts: ts,
        last_ts: ts + 10,
        packets_c2s: 1,
        packets_s2c: 1,
        bytes_c2s: 10,
        bytes_s2c: 10,
        protocol: AppProtocol::Http,
        tls: None,
        in_warmup: false,
    }
}

fn apply(sink: &mut dyn FlowSink, ev: &Ev) {
    match ev {
        Ev::Answered(ts) => sink.on_answered_response(*ts),
        Ev::FirstDelay(ts, d) => sink.on_first_flow_delay(*ts, *d),
        Ev::AnyDelay(ts, d) => sink.on_any_flow_delay(*ts, *d),
        Ev::Flow {
            ts,
            client,
            server,
            fqdn,
            port_alt,
        } => {
            sink.on_flow_finished(&flow_of(*ts, *client, *server, *fqdn, *port_alt));
        }
    }
}

fn cfg() -> StreamingConfig {
    StreamingConfig {
        snapshot_interval_micros: 1_000_000,
        ..StreamingConfig::default()
    }
}

fn sink_over(events: &[Ev]) -> StreamingAnalytics {
    let mut s = StreamingAnalytics::new(cfg());
    s.on_trace_start(0);
    for ev in events {
        apply(&mut s, ev);
    }
    s
}

proptest! {
    /// merge_ref then unmerge of the same partial restores the full data
    /// state AND the rendered bytes, for any split of any event stream —
    /// retraction is a true inverse, not an approximation.
    #[test]
    fn unmerge_is_a_true_inverse_of_merge(
        events in proptest::collection::vec(ev_strategy(), 1..120),
        split_num in 0u8..=100,
    ) {
        let split = events.len() * split_num as usize / 100;
        let (first, second) = events.split_at(split);
        let mut acc = sink_over(first);
        let before_render = acc.render();
        let reference = sink_over(first);
        let other = sink_over(second);

        acc.merge_ref(&other);
        prop_assert!(acc.unmerge(&other).is_ok(), "retraction underflowed");
        prop_assert!(acc.data_eq(&reference), "data state not restored");
        prop_assert_eq!(acc.render(), before_render, "render bytes not restored");
    }

    /// Retraction chains: merging k partials then retracting them one by
    /// one walks back through exactly the prefix states.
    #[test]
    fn retraction_chain_walks_back_through_prefixes(
        events in proptest::collection::vec(ev_strategy(), 3..90),
    ) {
        // Three roughly equal chunks merged in order.
        let third = events.len() / 3;
        let chunks = [
            &events[..third],
            &events[third..2 * third],
            &events[2 * third..],
        ];
        let parts: Vec<StreamingAnalytics> = chunks.iter().map(|c| sink_over(c)).collect();
        let mut acc = StreamingAnalytics::new(cfg());
        acc.on_trace_start(0);
        for p in &parts {
            acc.merge_ref(p);
        }
        // Retract newest-last chunk, then the middle: each step must land
        // exactly on the corresponding prefix sink.
        prop_assert!(acc.unmerge(&parts[2]).is_ok());
        let prefix2 = sink_over(&events[..2 * third]);
        prop_assert!(acc.data_eq(&prefix2));
        prop_assert_eq!(acc.render(), prefix2.render());
        prop_assert!(acc.unmerge(&parts[1]).is_ok());
        let prefix1 = sink_over(&events[..third]);
        prop_assert!(acc.data_eq(&prefix1));
        prop_assert_eq!(acc.render(), prefix1.render());
    }

    /// The windowed sweep (merge + retract per step) matches a fresh sink
    /// over each window's slice for arbitrary window geometries.
    #[test]
    fn window_sweep_matches_slices_for_any_geometry(
        events in proptest::collection::vec(ev_strategy(), 1..120),
        slide_steps in 1u64..5,
        window_steps in 1u64..5,
    ) {
        let slide = slide_steps * 700_000;
        let wcfg = WindowConfig::new(window_steps * slide, slide);
        let mut windowed = WindowedAnalytics::new(wcfg.clone());
        windowed.on_trace_start(0);
        for ev in &events {
            apply(&mut windowed, ev);
        }
        prop_assert_eq!(windowed.dropped_bucket_events(), 0);

        let mut positions = 0u64;
        let mut failure: Option<String> = None;
        windowed.for_each_window(|span, view| {
            if failure.is_some() {
                return;
            }
            positions += 1;
            let mut reference = StreamingAnalytics::new(wcfg.bucket_sink_config());
            reference.on_trace_start(span.start);
            for ev in &events {
                let ts = match ev {
                    Ev::Answered(ts) | Ev::FirstDelay(ts, _) | Ev::AnyDelay(ts, _) => *ts,
                    Ev::Flow { ts, .. } => *ts,
                };
                if ts >= span.start && ts < span.end {
                    apply(&mut reference, ev);
                }
            }
            if !view.data_eq(&reference) || view.render() != reference.render() {
                failure = Some(format!("window {span:?} diverged from its slice"));
            }
        });
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
        prop_assert!(positions >= 1);
    }
}
