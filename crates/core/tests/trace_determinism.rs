//! The flight recorder's headline guarantee: observing the pipeline does
//! not change it. Reports, stable metrics and streaming analytics must be
//! byte-identical with tracing on and off, across worker *and* dispatcher
//! counts — and the `--explain` chain itself is deterministic: stable
//! trace events are a pure function of the input trace, so the rendered
//! provenance of any FQDN is identical no matter which lanes recorded it.

use std::sync::Arc;

use dnhunter::{
    run_records_with_sinks, FlowSink, RealTimeSniffer, SnifferConfig, SnifferReport,
    StreamingAnalytics, StreamingConfig,
};
use dnhunter_simnet::{profiles, TraceGenerator};
use dnhunter_telemetry as telemetry;

/// The `pipeline_determinism` digest: equal strings mean equal reports.
fn digest(report: &SnifferReport) -> String {
    let mut out = String::new();
    let mut push = |part: Result<String, serde_json::Error>| {
        out.push_str(&part.expect("report part serializes"));
        out.push('\n');
    };
    push(serde_json::to_string(report.database.flows()));
    push(serde_json::to_string(&report.sniffer_stats));
    push(serde_json::to_string(&report.resolver_stats));
    push(serde_json::to_string(&report.delays));
    push(serde_json::to_string(&report.dns_response_times));
    push(serde_json::to_string(&report.answers_per_response));
    push(serde_json::to_string(&report.trace_start));
    push(serde_json::to_string(&report.trace_end));
    push(serde_json::to_string(&report.warmup_micros));
    out
}

/// The busiest FQDN of a report, ties broken by name — a deterministic
/// pick of a provenance target that every grid cell resolves identically.
fn busiest_fqdn(report: &SnifferReport) -> String {
    report
        .database
        .fqdn_flow_counts()
        .map(|(k, v)| (k.to_string(), v))
        .max_by(|(fa, na), (fb, nb)| na.cmp(nb).then_with(|| fb.cmp(fa)))
        .map(|(f, _)| f)
        .expect("workload produced labeled flows")
}

#[test]
fn tracing_changes_nothing_and_explains_identically_across_the_grid() {
    let profile = profiles::eu1_adsl1().scaled(0.1);
    let trace = TraceGenerator::new(profile, false).generate();
    assert!(trace.records.len() > 5_000, "trace too small");
    let config = SnifferConfig::default();
    let scfg = StreamingConfig {
        snapshot_interval_micros: 60 * 1_000_000,
        ..StreamingConfig::default()
    };

    // Reference: the sequential sniffer, traced — it pins the outputs the
    // grid must reproduce *and* the explain chain (stable events are
    // packet-timestamped, so one reference covers both traced and
    // untraced cells).
    let (reference_digest, reference_prom, reference_stream, reference_explain, target) = {
        let registry = Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let trace_set = telemetry::TraceSet::new();
        let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
        let mut sniffer = RealTimeSniffer::new(config.clone());
        sniffer.set_sink(Box::new(StreamingAnalytics::new(scfg.clone())));
        for rec in &trace.records {
            sniffer.process_record(rec);
        }
        let (report, sinks) = sniffer.finish_with_sinks();
        assert!(report.sniffer_stats.tag_hits > 0, "no tags assigned");
        assert_eq!(dnhunter::note_trace_drops(&trace_set), 0);
        let streaming = StreamingAnalytics::fold(sinks).expect("sink returned");
        let target = dnhunter::parse_explain_target(&busiest_fqdn(&report))
            .expect("busiest FQDN parses as an explain target");
        let explain = telemetry::explain(&trace_set, &target);
        // The chain must actually chain: the target's own DNS events plus
        // the flow events joined through its bound servers.
        assert!(explain.contains("dns_response"), "{explain}");
        assert!(explain.contains("flow_open"), "{explain}");
        (
            digest(&report),
            telemetry::prometheus(&registry.snapshot(), false),
            streaming.render(),
            explain,
            target,
        )
    };

    for traced in [false, true] {
        for (workers, dispatchers) in [(1usize, 1usize), (2, 1), (2, 2), (8, 2)] {
            let registry = Arc::new(telemetry::Registry::new());
            let _guard = telemetry::bind(registry.clone());
            let trace_set = traced.then(telemetry::TraceSet::new);
            let _trace_guard = trace_set
                .as_ref()
                .map(|set| telemetry::trace_bind(set, telemetry::LaneKind::Driver, 0));
            let (report, _, sinks) =
                run_records_with_sinks(&config, workers, dispatchers, &trace.records, &mut |_| {
                    Box::new(StreamingAnalytics::new(scfg.clone())) as Box<dyn FlowSink>
                });
            let cell = format!("traced={traced} {workers}x{dispatchers}");
            assert_eq!(digest(&report), reference_digest, "{cell}: report diverged");
            assert_eq!(
                telemetry::prometheus(&registry.snapshot(), false),
                reference_prom,
                "{cell}: stable metrics diverged"
            );
            let streaming = StreamingAnalytics::fold(sinks).expect("worker sinks returned");
            assert_eq!(
                streaming.render(),
                reference_stream,
                "{cell}: streaming analytics diverged"
            );
            if let Some(set) = &trace_set {
                assert_eq!(dnhunter::note_trace_drops(set), 0, "{cell}: rings wrapped");
                assert_eq!(
                    telemetry::explain(set, &target),
                    reference_explain,
                    "{cell}: explain chain diverged from the sequential one"
                );
            }
        }
    }
}
