//! # dnhunter-baselines
//!
//! The alternatives the paper compares DN-Hunter against:
//!
//! * [`reverse`] — active reverse-DNS (PTR) lookup of server addresses
//!   (§3.1.3, Tab. 3): returns the *designated* name of the machine, which
//!   for CDN servers has nothing to do with the content.
//! * [`cert`] — TLS certificate inspection (§5.2.1, Tab. 4): a DPI that
//!   reads the server certificate's CN, defeated by generic wildcards, CDN
//!   certificates and session resumption.
//! * [`ports`] — classic port-based ground truth used for the "GT" columns
//!   of Tabs. 6–7.

#![forbid(unsafe_code)]

pub mod cert;
pub mod ports;
pub mod reverse;

pub use cert::{certificate_comparison, CertMatch, CertMatchCounts};
pub use ports::well_known_service;
pub use reverse::{reverse_lookup_comparison, ReverseMatch, ReverseMatchCounts};
