//! The reverse-DNS baseline (paper §3.1.3, Tab. 3).
//!
//! For a sample of server addresses that DN-Hunter labelled, perform a PTR
//! lookup in the (synthetic) reverse zone and compare the outcome with the
//! sniffer's FQDN. Four outcome classes, as in Tab. 3.

use std::collections::HashMap;
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_simnet::PtrZone;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Outcome of comparing one PTR answer with the sniffer's label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReverseMatch {
    /// PTR equals the FQDN the client actually used.
    SameFqdn,
    /// PTR shares only the second-level domain.
    SameSecondLevel,
    /// PTR names something else entirely.
    Different,
    /// No PTR record.
    NoAnswer,
}

/// Tab. 3 counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReverseMatchCounts {
    pub same_fqdn: usize,
    pub same_second_level: usize,
    pub different: usize,
    pub no_answer: usize,
}

impl ReverseMatchCounts {
    /// Total samples.
    pub fn total(&self) -> usize {
        self.same_fqdn + self.same_second_level + self.different + self.no_answer
    }

    /// Fractions in Tab. 3 order (same FQDN, same 2nd-level, different,
    /// no answer).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.same_fqdn as f64 / t,
            self.same_second_level as f64 / t,
            self.different as f64 / t,
            self.no_answer as f64 / t,
        ]
    }
}

/// Compare one PTR answer against the sniffer's label.
pub fn classify_match(
    label: &DomainName,
    ptr: Option<&DomainName>,
    suffixes: &SuffixSet,
) -> ReverseMatch {
    match ptr {
        None => ReverseMatch::NoAnswer,
        Some(p) if p == label => ReverseMatch::SameFqdn,
        Some(p) => {
            if p.second_level_domain(suffixes) == label.second_level_domain(suffixes) {
                ReverseMatch::SameSecondLevel
            } else {
                ReverseMatch::Different
            }
        }
    }
}

/// The Tab. 3 experiment: sample up to `sample_size` labelled server
/// addresses from the database, PTR-look them up, classify the outcomes.
/// Deterministic for a given `seed`.
pub fn reverse_lookup_comparison(
    db: &FlowDatabase,
    zone: &PtrZone,
    suffixes: &SuffixSet,
    sample_size: usize,
    seed: u64,
) -> ReverseMatchCounts {
    // The sniffer's label per server: most common FQDN observed.
    let mut per_server: HashMap<IpAddr, HashMap<&DomainName, u64>> = HashMap::new();
    for f in db.flows() {
        if let Some(fqdn) = &f.fqdn {
            *per_server
                .entry(f.key.server)
                .or_default()
                .entry(fqdn)
                .or_default() += 1;
        }
    }
    let mut servers: Vec<(IpAddr, &DomainName)> = per_server
        .iter()
        .map(|(ip, counts)| {
            let label = counts
                .iter()
                .max_by_key(|(name, n)| (**n, std::cmp::Reverse(*name)))
                .map(|(name, _)| *name)
                .expect("non-empty counts");
            (*ip, label)
        })
        .collect();
    servers.sort_by_key(|(ip, _)| *ip);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    servers.shuffle(&mut rng);
    servers.truncate(sample_size);

    let mut counts = ReverseMatchCounts::default();
    for (ip, label) in servers {
        match classify_match(label, zone.lookup(ip), suffixes) {
            ReverseMatch::SameFqdn => counts.same_fqdn += 1,
            ReverseMatch::SameSecondLevel => counts.same_second_level += 1,
            ReverseMatch::Different => counts.different += 1,
            ReverseMatch::NoAnswer => counts.no_answer += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn classification_rules() {
        let s = SuffixSet::builtin();
        let label = n("www.linkedin.com");
        assert_eq!(
            classify_match(&label, Some(&n("www.linkedin.com")), &s),
            ReverseMatch::SameFqdn
        );
        assert_eq!(
            classify_match(&label, Some(&n("host7.linkedin.com")), &s),
            ReverseMatch::SameSecondLevel
        );
        assert_eq!(
            classify_match(
                &label,
                Some(&n("a23-1-2-3.deploy.akamaitechnologies.com")),
                &s
            ),
            ReverseMatch::Different
        );
        assert_eq!(classify_match(&label, None, &s), ReverseMatch::NoAnswer);
    }

    #[test]
    fn counts_and_fractions() {
        let c = ReverseMatchCounts {
            same_fqdn: 9,
            same_second_level: 36,
            different: 26,
            no_answer: 29,
        };
        assert_eq!(c.total(), 100);
        let f = c.fractions();
        assert!((f[0] - 0.09).abs() < 1e-9);
        assert!((f[3] - 0.29).abs() < 1e-9);
    }

    #[test]
    fn multi_label_suffix_counts_as_same_org() {
        let s = SuffixSet::builtin();
        assert_eq!(
            classify_match(&n("news.bbc.co.uk"), Some(&n("cache3.bbc.co.uk")), &s),
            ReverseMatch::SameSecondLevel
        );
        assert_eq!(
            classify_match(&n("news.bbc.co.uk"), Some(&n("cache3.itv.co.uk")), &s),
            ReverseMatch::Different
        );
    }
}
