//! Port-based classification — the legacy ground truth used in the "GT"
//! columns of Tables 6–7 (augmented, in the paper, by Tstat DPI and
//! operator knowledge).

/// The conventional service name for a layer-4 port, if one is well-known
/// to the operator community. Covers every port the paper's tables show.
pub fn well_known_service(port: u16) -> Option<&'static str> {
    Some(match port {
        21 => "FTP",
        22 => "SSH",
        25 => "SMTP",
        53 => "DNS",
        80 => "HTTP",
        110 => "POP3",
        143 => "IMAP",
        443 => "HTTPS",
        554 => "RTSP",
        587 => "SMTP",
        993 => "IMAPS",
        995 => "POP3S",
        1080 => "Opera Browser",
        1337 => "BT Tracker",
        1863 => "MSN",
        2710 => "BT Tracker",
        5050 => "Yahoo Messager",
        5190 => "AOL ICQ",
        5222 => "Gtalk",
        5223 => "Apple push services",
        5228 => "Android Market",
        6969 => "BT Tracker",
        12043 => "Second Life",
        12046 => "Second Life",
        18182 => "BT Tracker",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_ports_are_covered() {
        // Tab. 6 ports.
        for p in [25u16, 110, 143, 554, 587, 995, 1863] {
            assert!(well_known_service(p).is_some(), "port {p}");
        }
        // Tab. 7 ports.
        for p in [
            1080u16, 1337, 2710, 5050, 5190, 5222, 5223, 5228, 6969, 12043, 12046, 18182,
        ] {
            assert!(well_known_service(p).is_some(), "port {p}");
        }
    }

    #[test]
    fn specific_labels() {
        assert_eq!(well_known_service(5228), Some("Android Market"));
        assert_eq!(well_known_service(1337), Some("BT Tracker"));
        assert_eq!(well_known_service(12043), Some("Second Life"));
        assert_eq!(well_known_service(49152), None);
    }
}
