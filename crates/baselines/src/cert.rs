//! The certificate-inspection baseline (paper §5.2.1, Tab. 4).
//!
//! A DPI extended to read the CN of the server certificate during the TLS
//! handshake, compared against the FQDN DN-Hunter assigned to the same
//! flow. Four outcome classes, as in Tab. 4.

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_flow::AppProtocol;
use serde::{Deserialize, Serialize};

/// Outcome for one TLS flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertMatch {
    /// CN equals the FQDN.
    Equal,
    /// Wildcard/generic CN covering the FQDN (`*.google.com`).
    Generic,
    /// CN names something else (typically the hosting CDN).
    Different,
    /// No certificate observed (session resumption / missed handshake).
    NoCertificate,
}

/// Tab. 4 counts over the TLS flows of a trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertMatchCounts {
    pub equal: usize,
    pub generic: usize,
    pub different: usize,
    pub no_certificate: usize,
}

impl CertMatchCounts {
    /// Total classified flows.
    pub fn total(&self) -> usize {
        self.equal + self.generic + self.different + self.no_certificate
    }

    /// Fractions in Tab. 4 order (equal, generic, different, none).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.equal as f64 / t,
            self.generic as f64 / t,
            self.different as f64 / t,
            self.no_certificate as f64 / t,
        ]
    }
}

/// Does a wildcard pattern (`*.example.com`) cover `fqdn`?
fn wildcard_covers(pattern: &str, fqdn: &DomainName) -> bool {
    let Some(base) = pattern.strip_prefix("*.") else {
        return false;
    };
    let Ok(base_name) = base.parse::<DomainName>() else {
        return false;
    };
    fqdn.is_subdomain_of(&base_name) && *fqdn != base_name
}

/// Classify one flow's certificate CN against the DNS label.
pub fn classify_cert(label: &DomainName, cn: Option<&str>) -> CertMatch {
    match cn {
        None => CertMatch::NoCertificate,
        Some(cn) => {
            if cn.starts_with("*.") {
                if wildcard_covers(cn, label) {
                    CertMatch::Generic
                } else {
                    CertMatch::Different
                }
            } else if cn.parse::<DomainName>().ok().as_ref() == Some(label) {
                CertMatch::Equal
            } else {
                CertMatch::Different
            }
        }
    }
}

/// The Tab. 4 experiment over every labelled TLS flow in the database.
pub fn certificate_comparison(db: &FlowDatabase, _suffixes: &SuffixSet) -> CertMatchCounts {
    let mut counts = CertMatchCounts::default();
    for f in db.flows() {
        if f.protocol != AppProtocol::Tls {
            continue;
        }
        let (Some(label), Some(tls)) = (&f.fqdn, &f.tls) else {
            continue;
        };
        match classify_cert(label, tls.certificate_cn.as_deref()) {
            CertMatch::Equal => counts.equal += 1,
            CertMatch::Generic => counts.generic += 1,
            CertMatch::Different => counts.different += 1,
            CertMatch::NoCertificate => counts.no_certificate += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn classification_rules() {
        let label = n("mail.google.com");
        assert_eq!(
            classify_cert(&label, Some("mail.google.com")),
            CertMatch::Equal
        );
        assert_eq!(
            classify_cert(&label, Some("*.google.com")),
            CertMatch::Generic
        );
        assert_eq!(
            classify_cert(&label, Some("a248.e.akamai.net")),
            CertMatch::Different
        );
        assert_eq!(classify_cert(&label, None), CertMatch::NoCertificate);
        // A wildcard for another org does not cover the label.
        assert_eq!(
            classify_cert(&label, Some("*.akamai.net")),
            CertMatch::Different
        );
        // A wildcard never matches its own base name.
        assert_eq!(
            classify_cert(&n("google.com"), Some("*.google.com")),
            CertMatch::Different
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = CertMatchCounts {
            equal: 18,
            generic: 19,
            different: 40,
            no_certificate: 23,
        };
        assert_eq!(c.total(), 100);
        let sum: f64 = c.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn garbage_cn_is_different() {
        assert_eq!(
            classify_cert(&n("x.example.com"), Some("not a hostname at all !!")),
            CertMatch::Different
        );
    }
}
