//! Property-based tests for prefixes and longest-prefix matching.

use dnhunter_orgdb::{OrgDb, OrgKind, Prefix};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

proptest! {
    /// A prefix always contains its own network address, and
    /// canonicalisation is idempotent.
    #[test]
    fn prefix_contains_network(bits in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).unwrap();
        prop_assert!(p.contains(p.network()));
        let q = Prefix::new(p.network(), len).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Any address whose masked form equals the network is contained, and
    /// vice versa.
    #[test]
    fn containment_matches_masking(bits in any::<u32>(), probe in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).unwrap();
        let ip = IpAddr::V4(Ipv4Addr::from(probe));
        let masked = Prefix::new(ip, len).unwrap().network();
        prop_assert_eq!(p.contains(ip), masked == p.network());
    }

    /// Display → parse round-trips.
    #[test]
    fn prefix_display_parse(bits in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(IpAddr::V4(Ipv4Addr::from(bits)), len).unwrap();
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// Longest-prefix match: when two nested prefixes are announced for
    /// different orgs, addresses in the inner one always resolve to it.
    #[test]
    fn longest_prefix_wins(
        outer_bits in any::<u32>(),
        outer_len in 1u8..=16,
        extra in 1u8..=8,
        host in any::<u32>(),
    ) {
        let inner_len = outer_len + extra;
        let outer = Prefix::new(IpAddr::V4(Ipv4Addr::from(outer_bits)), outer_len).unwrap();
        // An inner prefix inside the outer one.
        let inner = Prefix::new(outer.network(), inner_len).unwrap();
        let mut db = OrgDb::new();
        let big = db.add_org("big", OrgKind::Isp);
        let small = db.add_org("small", OrgKind::Cloud);
        db.announce(big, outer);
        db.announce(small, inner);
        // Any host in the inner prefix goes to "small".
        let probe_inner = Prefix::new(
            IpAddr::V4(inner.v4_host(host).unwrap()),
            32,
        )
        .unwrap()
        .network();
        prop_assert_eq!(db.org_name(probe_inner), "small");
        // The outer network itself maps to whichever prefix covers it most
        // specifically; it's inside inner (same base) so also "small",
        // but an address outside inner with the outer prefix maps to "big"
        // whenever one exists.
        if inner_len < 32 {
            let flip_bit = 1u32 << (32 - u32::from(inner_len) - 1).min(31);
            let outside = match outer.network() {
                IpAddr::V4(a) => u32::from(a) ^ flip_bit,
                IpAddr::V6(_) => unreachable!("v4 only in this test"),
            };
            let ip = IpAddr::V4(Ipv4Addr::from(outside));
            if outer.contains(ip) && !inner.contains(ip) {
                prop_assert_eq!(db.org_name(ip), "big");
            }
        }
    }
}
