//! Longest-prefix-match organization lookup.

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::prefix::Prefix;
use crate::registry::OrgKind;

/// One organization entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgRecord {
    /// Canonical lowercase name, e.g. `akamai`, `amazon`.
    pub name: String,
    /// What kind of operator this is.
    pub kind: OrgKind,
}

/// An IP→organization database with longest-prefix-match semantics,
/// mirroring what the paper obtains from MaxMind/whois.
///
/// Prefixes are bucketed by length so a lookup probes at most 33 (v4) or
/// 129 (v6) hash tables, longest first — plenty fast for offline analytics
/// and O(1) in the number of prefixes.
#[derive(Debug, Default, Clone)]
pub struct OrgDb {
    orgs: Vec<OrgRecord>,
    /// prefix-length → (canonical network address → org index)
    v4_by_len: HashMap<u8, HashMap<IpAddr, usize>>,
    v6_by_len: HashMap<u8, HashMap<IpAddr, usize>>,
    v4_lens: Vec<u8>,
    v6_lens: Vec<u8>,
}

impl OrgDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an organization; returns its handle for [`OrgDb::announce`].
    pub fn add_org(&mut self, name: &str, kind: OrgKind) -> usize {
        let name = name.to_ascii_lowercase();
        if let Some(i) = self.orgs.iter().position(|o| o.name == name) {
            return i;
        }
        self.orgs.push(OrgRecord { name, kind });
        self.orgs.len() - 1
    }

    /// Announce a prefix as belonging to `org` (handle from [`OrgDb::add_org`]).
    /// Later announcements of the same prefix overwrite earlier ones.
    pub fn announce(&mut self, org: usize, prefix: Prefix) {
        assert!(org < self.orgs.len(), "unknown org handle {org}");
        let (table, lens) = match prefix.network() {
            IpAddr::V4(_) => (&mut self.v4_by_len, &mut self.v4_lens),
            IpAddr::V6(_) => (&mut self.v6_by_len, &mut self.v6_lens),
        };
        table
            .entry(prefix.len())
            .or_default()
            .insert(prefix.network(), org);
        if !lens.contains(&prefix.len()) {
            lens.push(prefix.len());
            lens.sort_unstable_by(|a, b| b.cmp(a)); // longest first
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, ip: IpAddr) -> Option<&OrgRecord> {
        let (table, lens) = match ip {
            IpAddr::V4(_) => (&self.v4_by_len, &self.v4_lens),
            IpAddr::V6(_) => (&self.v6_by_len, &self.v6_lens),
        };
        for &len in lens {
            let masked = Prefix::new(ip, len).expect("len came from announce");
            if let Some(&idx) = table.get(&len).and_then(|m| m.get(&masked.network())) {
                return Some(&self.orgs[idx]);
            }
        }
        None
    }

    /// Organization name for `ip`, or `"unknown"`.
    pub fn org_name(&self, ip: IpAddr) -> &str {
        self.lookup(ip).map_or("unknown", |o| o.name.as_str())
    }

    /// All registered organizations.
    pub fn orgs(&self) -> &[OrgRecord] {
        &self.orgs
    }

    /// Record for an organization by name.
    pub fn org_by_name(&self, name: &str) -> Option<&OrgRecord> {
        let name = name.to_ascii_lowercase();
        self.orgs.iter().find(|o| o.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn basic_lookup() {
        let mut db = OrgDb::new();
        let ak = db.add_org("Akamai", OrgKind::Cdn);
        db.announce(ak, p("23.0.0.0/12"));
        assert_eq!(db.org_name(ip("23.15.9.9")), "akamai");
        assert_eq!(db.org_name(ip("24.0.0.1")), "unknown");
        assert!(db.lookup(ip("24.0.0.1")).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = OrgDb::new();
        let isp = db.add_org("bigisp", OrgKind::Isp);
        let tenant = db.add_org("tenant", OrgKind::Cloud);
        db.announce(isp, p("100.64.0.0/10"));
        db.announce(tenant, p("100.64.8.0/24"));
        assert_eq!(db.org_name(ip("100.64.8.77")), "tenant");
        assert_eq!(db.org_name(ip("100.64.9.77")), "bigisp");
    }

    #[test]
    fn add_org_is_idempotent_by_name() {
        let mut db = OrgDb::new();
        let a = db.add_org("Google", OrgKind::Cloud);
        let b = db.add_org("google", OrgKind::Cdn); // same name, kind ignored
        assert_eq!(a, b);
        assert_eq!(db.orgs().len(), 1);
    }

    #[test]
    fn v6_lookups_are_independent() {
        let mut db = OrgDb::new();
        let g = db.add_org("google", OrgKind::Cloud);
        db.announce(g, p("2001:4860::/32"));
        assert_eq!(db.org_name(ip("2001:4860::8888")), "google");
        assert_eq!(db.org_name(ip("8.8.8.8")), "unknown");
    }

    #[test]
    fn overwrite_same_prefix() {
        let mut db = OrgDb::new();
        let a = db.add_org("first", OrgKind::Cdn);
        let b = db.add_org("second", OrgKind::Cdn);
        db.announce(a, p("198.51.100.0/24"));
        db.announce(b, p("198.51.100.0/24"));
        assert_eq!(db.org_name(ip("198.51.100.1")), "second");
    }

    #[test]
    fn org_by_name_is_case_insensitive() {
        let mut db = OrgDb::new();
        db.add_org("EdgeCast", OrgKind::Cdn);
        assert!(db.org_by_name("edgecast").is_some());
        assert!(db.org_by_name("EDGECAST").is_some());
        assert!(db.org_by_name("nope").is_none());
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let mut db = OrgDb::new();
        let rest = db.add_org("internet", OrgKind::Other);
        db.announce(rest, p("0.0.0.0/0"));
        assert_eq!(db.org_name(ip("203.0.113.99")), "internet");
        assert_eq!(db.org_name(ip("2001:db8::1")), "unknown");
    }
}
