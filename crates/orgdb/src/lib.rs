//! # dnhunter-orgdb
//!
//! The paper's content-discovery analytics (§4.2, Fig. 5, Fig. 9, Tab. 5)
//! attribute each `serverIP` to the *organization* operating it — Akamai,
//! Amazon EC2, Google, EdgeCast, … — using the MaxMind organization
//! database. This crate plays that role: a longest-prefix-match database
//! from IP prefixes to organization records, plus the synthetic registry
//! that matches the address plan of `dnhunter-simnet`.

#![forbid(unsafe_code)]

pub mod db;
pub mod prefix;
pub mod registry;

pub use db::{OrgDb, OrgRecord};
pub use prefix::Prefix;
pub use registry::{builtin_registry, org_plan, OrgKind};
