//! CIDR prefixes over v4 and v6 addresses.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IP prefix (`10.0.0.0/8`, `2001:db8::/32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: IpAddr,
    len: u8,
}

impl Prefix {
    /// Build a prefix, canonicalising the address (host bits cleared).
    /// Returns `None` if `len` exceeds the address width.
    pub fn new(addr: IpAddr, len: u8) -> Option<Prefix> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return None;
        }
        Some(Prefix {
            addr: mask_addr(addr, len),
            len,
        })
    }

    /// The canonical network address.
    pub fn network(&self) -> IpAddr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (match-everything) prefix of this family.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `ip` (same family) falls inside this prefix.
    pub fn contains(&self, ip: IpAddr) -> bool {
        match (self.addr, ip) {
            (IpAddr::V4(_), IpAddr::V4(_)) | (IpAddr::V6(_), IpAddr::V6(_)) => {
                mask_addr(ip, self.len) == self.addr
            }
            _ => false,
        }
    }

    /// The `n`-th host address inside a v4 prefix (wraps within the prefix).
    /// Handy for the simulator's deterministic address allocation.
    pub fn v4_host(&self, n: u32) -> Option<Ipv4Addr> {
        match self.addr {
            IpAddr::V4(net) => {
                let size = 1u64 << (32 - self.len);
                let base = u32::from(net);
                let off = (u64::from(n) % size) as u32;
                Some(Ipv4Addr::from(base + off))
            }
            IpAddr::V6(_) => None,
        }
    }
}

fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(a) => {
            let bits = u32::from(a);
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            IpAddr::V4(Ipv4Addr::from(bits & mask))
        }
        IpAddr::V6(a) => {
            let bits = u128::from(a);
            let mask = if len == 0 {
                0
            } else {
                u128::MAX << (128 - len)
            };
            IpAddr::V6(Ipv6Addr::from(bits & mask))
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| format!("'{s}': missing '/'"))?;
        let addr: IpAddr = addr_s.parse().map_err(|e| format!("'{addr_s}': {e}"))?;
        let len: u8 = len_s.parse().map_err(|e| format!("'{len_s}': {e}"))?;
        Prefix::new(addr, len).ok_or_else(|| format!("'{s}': prefix length out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        assert_eq!(p("10.0.0.0/8").to_string(), "10.0.0.0/8");
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8::/32");
    }

    #[test]
    fn canonicalises_host_bits() {
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
        assert_eq!(p("2001:db8:1::1/32").to_string(), "2001:db8::/32");
    }

    #[test]
    fn containment_v4() {
        let pre = p("192.168.0.0/16");
        assert!(pre.contains("192.168.255.1".parse().unwrap()));
        assert!(!pre.contains("192.169.0.1".parse().unwrap()));
        assert!(!pre.contains("2001:db8::1".parse().unwrap())); // family mismatch
    }

    #[test]
    fn containment_v6_and_zero_len() {
        let pre = p("2001:db8::/32");
        assert!(pre.contains("2001:db8:ffff::1".parse().unwrap()));
        assert!(!pre.contains("2001:db9::1".parse().unwrap()));
        let all4 = p("0.0.0.0/0");
        assert!(all4.contains("8.8.8.8".parse().unwrap()));
        assert!(all4.is_empty());
    }

    #[test]
    fn rejects_overlong_prefix() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("::/129".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn v4_host_allocation() {
        let pre = p("203.0.113.0/24");
        assert_eq!(pre.v4_host(0), Some(Ipv4Addr::new(203, 0, 113, 0)));
        assert_eq!(pre.v4_host(7), Some(Ipv4Addr::new(203, 0, 113, 7)));
        // Wraps modulo the prefix size.
        assert_eq!(pre.v4_host(256), Some(Ipv4Addr::new(203, 0, 113, 0)));
        assert_eq!(p("2001:db8::/32").v4_host(1), None);
    }
}
