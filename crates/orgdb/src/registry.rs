//! The synthetic Internet registry: organizations and their address plan.
//!
//! This single table is the shared contract between the organization
//! database (standing in for MaxMind) and the traffic simulator's address
//! allocator: the simulator places a CDN's servers inside the prefixes
//! announced here, so that the analytics' whois-style attribution works the
//! same way it does in the paper. Names follow the organizations that appear
//! in the paper's figures (Fig. 5, 7, 8, 9; Tab. 5).

use serde::{Deserialize, Serialize};

use crate::db::OrgDb;
use crate::prefix::Prefix;

/// What kind of operator an organization is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKind {
    /// Content delivery network (Akamai, EdgeCast, …).
    Cdn,
    /// Cloud/IaaS provider (Amazon EC2, Microsoft).
    Cloud,
    /// A content owner hosting its own servers ("SELF" in Fig. 9).
    SelfHosted,
    /// The monitored ISP itself (client space, resolvers).
    Isp,
    /// Anything else (unattributed peers, …).
    Other,
}

/// (name, kind, announced prefixes) for every organization in the synthetic
/// Internet. The simulator allocates server addresses from these prefixes.
pub fn org_plan() -> Vec<(&'static str, OrgKind, Vec<&'static str>)> {
    vec![
        // --- CDNs ---
        ("akamai", OrgKind::Cdn, vec!["23.0.0.0/12", "96.16.0.0/15"]),
        ("edgecast", OrgKind::Cdn, vec!["93.184.216.0/22"]),
        ("level 3", OrgKind::Cdn, vec!["8.19.0.0/16"]),
        ("leaseweb", OrgKind::Cdn, vec!["85.17.0.0/16"]),
        ("cotendo", OrgKind::Cdn, vec!["67.131.0.0/16"]),
        ("cdnetworks", OrgKind::Cdn, vec!["120.29.0.0/16"]),
        ("limelight", OrgKind::Cdn, vec!["68.142.64.0/18"]),
        ("dedibox", OrgKind::Cdn, vec!["88.190.0.0/16"]),
        ("meta", OrgKind::Cdn, vec!["205.186.0.0/16"]),
        ("ntt", OrgKind::Cdn, vec!["129.250.0.0/16"]),
        // --- Clouds ---
        (
            "amazon",
            OrgKind::Cloud,
            vec!["54.224.0.0/12", "107.20.0.0/14"],
        ),
        ("microsoft", OrgKind::Cloud, vec!["65.52.0.0/14"]),
        (
            "google",
            OrgKind::Cloud,
            vec!["74.125.0.0/16", "173.194.0.0/16"],
        ),
        // --- Self-hosting content owners ---
        (
            "facebook",
            OrgKind::SelfHosted,
            vec!["66.220.144.0/20", "69.171.224.0/19"],
        ),
        ("twitter", OrgKind::SelfHosted, vec!["199.59.148.0/22"]),
        ("linkedin", OrgKind::SelfHosted, vec!["216.52.242.0/24"]),
        ("zynga", OrgKind::SelfHosted, vec!["72.26.200.0/24"]),
        ("dailymotion", OrgKind::SelfHosted, vec!["195.8.215.0/24"]),
        ("apple", OrgKind::SelfHosted, vec!["17.0.0.0/8"]),
        ("yahoo", OrgKind::SelfHosted, vec!["98.136.0.0/14"]),
        ("wikipedia", OrgKind::SelfHosted, vec!["208.80.152.0/22"]),
        ("flurry", OrgKind::SelfHosted, vec!["216.74.41.0/24"]),
        ("aol", OrgKind::SelfHosted, vec!["64.12.0.0/16"]),
        ("opera", OrgKind::SelfHosted, vec!["195.189.142.0/24"]),
        ("lindenlab", OrgKind::SelfHosted, vec!["216.82.0.0/18"]),
        ("mailprovider", OrgKind::SelfHosted, vec!["62.211.72.0/21"]),
        ("smallhosts", OrgKind::SelfHosted, vec!["151.1.0.0/16"]),
        // --- ISP-internal space ---
        ("isp-clients", OrgKind::Isp, vec!["10.0.0.0/8"]),
        ("isp-infra", OrgKind::Isp, vec!["192.0.2.0/24"]),
        // --- Un-attributed peer-to-peer space ---
        (
            "p2p-space",
            OrgKind::Other,
            vec!["171.0.0.0/8", "186.0.0.0/8"],
        ),
    ]
}

/// Build the [`OrgDb`] from [`org_plan`].
pub fn builtin_registry() -> OrgDb {
    let mut db = OrgDb::new();
    for (name, kind, prefixes) in org_plan() {
        let h = db.add_org(name, kind);
        for p in prefixes {
            let prefix: Prefix = p.parse().expect("builtin prefix is valid");
            db.announce(h, prefix);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn builtin_covers_paper_organizations() {
        let db = builtin_registry();
        for org in [
            "akamai",
            "amazon",
            "google",
            "level 3",
            "leaseweb",
            "cotendo",
            "edgecast",
            "microsoft",
            "facebook",
            "twitter",
            "linkedin",
            "zynga",
            "dailymotion",
            "dedibox",
            "meta",
            "ntt",
            "cdnetworks",
        ] {
            assert!(db.org_by_name(org).is_some(), "missing {org}");
        }
    }

    #[test]
    fn sample_attributions() {
        let db = builtin_registry();
        assert_eq!(db.org_name(ip("23.3.4.5")), "akamai");
        assert_eq!(db.org_name(ip("54.230.0.9")), "amazon");
        assert_eq!(db.org_name(ip("10.22.33.44")), "isp-clients");
        assert_eq!(db.org_name(ip("93.184.216.34")), "edgecast");
        assert_eq!(db.org_name(ip("171.5.5.5")), "p2p-space");
    }

    #[test]
    fn plan_prefixes_do_not_overlap() {
        // Pairwise disjointness keeps attribution unambiguous.
        let plan = org_plan();
        let mut all: Vec<(String, Prefix)> = Vec::new();
        for (name, _, prefixes) in &plan {
            for p in prefixes {
                all.push((name.to_string(), p.parse().unwrap()));
            }
        }
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                let (na, a) = &all[i];
                let (nb, b) = &all[j];
                let nested = a.contains(b.network()) || b.contains(a.network());
                assert!(!nested, "prefixes overlap: {na} {a} vs {nb} {b}");
            }
        }
    }

    #[test]
    fn kinds_are_attached() {
        let db = builtin_registry();
        assert_eq!(db.org_by_name("akamai").unwrap().kind, OrgKind::Cdn);
        assert_eq!(db.org_by_name("amazon").unwrap().kind, OrgKind::Cloud);
        assert_eq!(
            db.org_by_name("facebook").unwrap().kind,
            OrgKind::SelfHosted
        );
    }
}
