//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Shuffling and random element selection on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }
}
