//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! Deterministic, seedable generators only — there is no OS entropy source
//! here, which suits the repo's reproducible trace-generation needs. Stream
//! values differ from the real `rand` crate; in-tree code only relies on
//! "same seed → same stream".

#![forbid(unsafe_code)]

pub mod seq;

pub use seq::SliceRandom;

/// Core generator: a source of uniform 64-bit values.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with generator output.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor the workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from raw generator output (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges `rng.gen_range(..)` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A small fast generator (`rand::rngs::SmallRng` stand-in) —
/// splitmix64-seeded xorshift64*.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — adequate statistical quality for simulation.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 to spread low-entropy seeds; never zero.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(2..=9);
            assert!((2..=9).contains(&v));
            let w: u16 = rng.gen_range(200..1500);
            assert!((200..1500).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
