//! Offline `rand_chacha` shim: a real (reduced-round) ChaCha8 keystream
//! generator implementing the rand shim's traits. The keystream matches the
//! ChaCha specification for the derived key, though seed expansion differs
//! from the real `rand_chacha` crate — in-tree code only requires
//! "same seed → same stream".

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
    counter: u64,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key via splitmix64.
        let mut z = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = splitmix(&mut z);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12..14) and nonce (14..16) start at zero.
        let mut rng = ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
            counter: 0,
        };
        rng.refill();
        rng
    }
}

impl ChaCha8Rng {
    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        self.state[12] = self.counter as u32;
        self.state[13] = (self.counter >> 32) as u32;
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniformish_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
