//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Regex-literal strategies: `"[a-z]{1,3}"` is a strategy for matching
/// strings, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
