//! Offline property-testing shim exposing the `proptest` API subset this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! integer/float range strategies, tuple composition, `any::<T>()`,
//! `collection::vec`, regex-literal string strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test RNG (no OS entropy), there is no shrinking (the failing inputs
//! are printed verbatim), and regex strategies support the subset of syntax
//! found in-tree (classes, groups, alternation, `{m,n}` / `?` / `*` / `+`).
//!
//! Set `PROPTEST_CASES` to change the number of cases per property
//! (default 128).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Each function body runs once per generated case;
/// use `prop_assert*` for case-level assertions.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let mut __repr = ::std::string::String::new();
                    $(
                        __repr.push_str(stringify!($arg));
                        __repr.push_str(" = ");
                        __repr.push_str(&::std::format!("{:?}", &$arg));
                        __repr.push_str("; ");
                    )+
                    let __outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    (__repr, __outcome)
                });
            }
        )*
    };
}

/// Assert within a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
