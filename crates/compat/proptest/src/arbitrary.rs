//! `any::<T>()` — type-driven default strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// The default strategy for `T`: uniform over its value space.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    /// An arbitrary ASCII-printable character (sufficient for the
    /// workspace's tests and always valid UTF-8).
    fn arbitrary(rng: &mut TestRng) -> Self {
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let magnitude = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 10f64.powf(magnitude / 10.0)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
