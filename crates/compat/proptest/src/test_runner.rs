//! Deterministic case runner and the RNG strategies draw from.

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; resample.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// The generator handed to strategies — xorshift64*, seeded per test name
/// and case index so runs are reproducible without any OS entropy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator from an explicit seed (used by the runner and by
    /// code that needs a strategy outside a `proptest!` body).
    pub fn deterministic(seed: u64) -> Self {
        Self::new(seed)
    }

    fn new(seed: u64) -> Self {
        // splitmix64 so consecutive seeds produce unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a over the test name gives each property its own stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn cases_from_env() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(128)
}

/// Run `case` once per generated input set, panicking on the first failure
/// with the inputs that produced it.
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>)) {
    let cases = cases_from_env();
    let seed_base = hash_name(name);
    let mut rejects: u64 = 0;
    let max_rejects = cases.saturating_mul(16);
    let mut executed = 0;
    let mut attempt = 0u64;
    while executed < cases {
        let mut rng = TestRng::new(seed_base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let (repr, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejects} after {executed} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{name}` failed at case {executed} (attempt {attempt}):\n\
                     {message}\ninputs: {repr}"
                );
            }
        }
    }
}
