//! Generate strings matching a small regex subset (classes, groups,
//! alternation, `{m,n}` / `?` / `*` / `+` quantifiers) — backs the
//! `"pattern"`-as-strategy feature.

use crate::test_runner::TestRng;

/// Upper bound used for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// A flattened character class.
    Class(Vec<char>),
    /// Concatenation of parts.
    Concat(Vec<Node>),
    /// One of several alternatives.
    Alternate(Vec<Node>),
    /// `inner` repeated between `min` and `max` times (inclusive).
    Repeat {
        inner: Box<Node>,
        min: u32,
        max: u32,
    },
}

/// Generate a string matching `pattern`. Panics on syntax outside the
/// supported subset — a test-authoring error, not a runtime condition.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alternation(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "regex shim: trailing syntax in {pattern:?} at {pos}"
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(options) => {
            let pick = rng.below(options.len() as u64) as usize;
            // options is non-empty by construction in parse_class.
            if let Some(c) = options.get(pick) {
                out.push(*c);
            }
        }
        Node::Concat(parts) => {
            for part in parts {
                emit(part, rng, out);
            }
        }
        Node::Alternate(options) => {
            let pick = rng.below(options.len() as u64) as usize;
            if let Some(node) = options.get(pick) {
                emit(node, rng, out);
            }
        }
        Node::Repeat { inner, min, max } => {
            let n = min + rng.below(u64::from(max - min) + 1) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Node {
    let mut options = vec![parse_concat(chars, pos)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        options.push(parse_concat(chars, pos));
    }
    if options.len() == 1 {
        options.remove(0)
    } else {
        Node::Alternate(options)
    }
}

fn parse_concat(chars: &[char], pos: &mut usize) -> Node {
    let mut parts = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(chars, pos);
        parts.push(parse_quantifier(chars, pos, atom));
    }
    if parts.len() == 1 {
        parts.remove(0)
    } else {
        Node::Concat(parts)
    }
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars.get(*pos) {
        Some('[') => parse_class(chars, pos),
        Some('(') => {
            *pos += 1;
            let inner = parse_alternation(chars, pos);
            assert!(chars.get(*pos) == Some(&')'), "regex shim: unclosed group");
            *pos += 1;
            inner
        }
        Some('\\') => {
            *pos += 1;
            let c = *chars.get(*pos).expect("regex shim: trailing backslash");
            *pos += 1;
            let resolved = match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                'd' => return Node::Class(('0'..='9').collect()),
                'w' => {
                    let mut options: Vec<char> = ('a'..='z').collect();
                    options.extend('A'..='Z');
                    options.extend('0'..='9');
                    options.push('_');
                    return Node::Class(options);
                }
                other => other,
            };
            Node::Literal(resolved)
        }
        Some('.') => {
            *pos += 1;
            // Any printable ASCII character.
            Node::Class((0x20u8..0x7f).map(char::from).collect())
        }
        Some(&c) => {
            *pos += 1;
            Node::Literal(c)
        }
        None => Node::Concat(Vec::new()),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Node {
    *pos += 1; // consume '['
    let mut options = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == ']' {
            *pos += 1;
            assert!(!options.is_empty(), "regex shim: empty character class");
            return Node::Class(options);
        }
        let lo = if c == '\\' {
            *pos += 1;
            let escaped = *chars.get(*pos).expect("regex shim: trailing backslash");
            escaped
        } else {
            c
        };
        *pos += 1;
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let hi = *chars.get(*pos).expect("regex shim: open range");
            *pos += 1;
            assert!(lo <= hi, "regex shim: inverted class range");
            options.extend(lo..=hi);
        } else {
            options.push(lo);
        }
    }
    panic!("regex shim: unclosed character class");
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Node::Repeat {
                inner: Box::new(atom),
                min: 0,
                max: 1,
            }
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat {
                inner: Box::new(atom),
                min: 0,
                max: UNBOUNDED_CAP,
            }
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat {
                inner: Box::new(atom),
                min: 1,
                max: UNBOUNDED_CAP,
            }
        }
        Some('{') => {
            *pos += 1;
            let mut min_text = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min_text.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min_text.parse().expect("regex shim: bad repeat count");
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut max_text = String::new();
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    max_text.push(chars[*pos]);
                    *pos += 1;
                }
                max_text.parse().expect("regex shim: bad repeat bound")
            } else {
                min
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "regex shim: unclosed repetition"
            );
            *pos += 1;
            assert!(min <= max, "regex shim: inverted repetition bounds");
            Node::Repeat {
                inner: Box::new(atom),
                min,
                max,
            }
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic(0xDA7A_5EED)
    }

    #[test]
    fn generated_strings_match_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z0-9]{1,12}(-[a-z0-9]{1,8})?", &mut r);
            assert!(!s.is_empty() && s.len() <= 21, "bad label {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let host = generate_matching("[a-z]{1,10}\\.[a-z]{2,8}\\.(com|net|org)", &mut r);
            let parts: Vec<&str> = host.split('.').collect();
            assert_eq!(parts.len(), 3, "bad host {host:?}");
            assert!(["com", "net", "org"].contains(&parts[2]));
            let hex = generate_matching("[0-9a-f]{8,40}", &mut r);
            assert!(hex.len() >= 8 && hex.len() <= 40);
            assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
