//! Offline shim for `parking_lot`: non-poisoning `Mutex` / `RwLock` built on
//! `std::sync`. A panicked holder's poison is deliberately cleared, matching
//! parking_lot's semantics (locks are never poisoned).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
