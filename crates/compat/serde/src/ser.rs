//! Serialization half of the shim: the `Serialize` / `Serializer` traits and
//! impls for the primitive and container types used across the workspace.

use std::fmt::Display;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// Errors a serializer may raise.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can serialize itself through any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The driver the data format implements (`serde_json` in this workspace).
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// Sequence builder returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct builder returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map builder returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(u64::from(*self))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(i64::from(*self))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for IpAddr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for Ipv4Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for Ipv6Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
