//! Offline shim providing the subset of the `serde` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real `serde`
//! cannot be vendored. This crate re-implements the traits and impls the
//! DN-Hunter crates rely on — `Serialize` / `Deserialize`, a struct/enum
//! derive (see `serde_derive`), and a self-describing `Content` tree that
//! `serde_json` serializes from and deserializes into. The API is
//! call-compatible for the patterns used in-tree; it is not a general serde
//! replacement.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the intermediate representation both the
/// derive macros and `serde_json` speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Internal helpers the derive macros expand to. Not a public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::de::from_content;
    pub use crate::Content;

    /// Extract a field from a map by name, returning `Content::Null` when
    /// absent (the derive decides whether that is an error or a default).
    pub fn take_field(map: &mut Vec<(String, Content)>, name: &str) -> Option<Content> {
        map.iter()
            .position(|(k, _)| k == name)
            .map(|i| map.swap_remove(i).1)
    }
}
