//! Deserialization half of the shim. Formats lower their input to a
//! [`Content`] tree; `Deserialize` impls pattern-match on it.

use std::fmt::Display;
use std::marker::PhantomData;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::Content;

/// Errors a deserializer may raise.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent from the input map.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// The driver the data format implements. Unlike real serde's visitor
/// architecture, this shim is self-describing only: the format hands over a
/// [`Content`] tree and the type takes what it needs.
pub trait Deserializer<'de>: Sized {
    type Error: Error;
    fn into_content(self) -> Result<Content, Self::Error>;
}

/// A value that can rebuild itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserialize a [`Content`] subtree into `T`, preserving the caller's
/// error type (used by the derive for nested fields and sequence elements).
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// A [`Deserializer`] over an already-lowered [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ContentDeserializer<E> {
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn into_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

fn type_error<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format_args!("expected {expected}, got {got:?}"))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range")),
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range")),
                    other => Err(type_error("an unsigned integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.into_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range")),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range")),
                    other => Err(type_error("an integer", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(type_error("a number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(type_error("a boolean", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Str(v) => Ok(v),
            other => Err(type_error("a string", &other)),
        }
    }
}

macro_rules! impl_deserialize_fromstr {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let s = String::deserialize(d)?;
                s.parse().map_err(D::Error::custom)
            }
        }
    )*};
}
impl_deserialize_fromstr!(IpAddr, Ipv4Addr, Ipv6Addr);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Null => Ok(None),
            other => from_content::<T, D::Error>(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.into_content()? {
            Content::Seq(items) => items.into_iter().map(from_content::<T, D::Error>).collect(),
            other => Err(type_error("a sequence", &other)),
        }
    }
}
