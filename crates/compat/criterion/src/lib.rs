//! Offline `criterion` shim: enough of the API to compile and run the
//! workspace's benches. Measurement is a simple calibrated timing loop
//! (median of a few batches) rather than criterion's full statistical
//! machinery; results print as `ns/iter` plus derived throughput.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, storing the median ns/iter across batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that runs ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Measure a few batches and take the median.
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// The top-level harness handle.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        report(name, bencher.ns_per_iter, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim chooses its own sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim chooses its own timing.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into()),
            bencher.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.into()),
            bencher.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / ns_per_iter / 1.073_741_824;
            println!("{name:<50} {ns_per_iter:>12.1} ns/iter  {gib_s:>8.3} GiB/s");
        }
        Some(Throughput::Elements(elements)) => {
            let melem_s = elements as f64 / ns_per_iter * 1000.0;
            println!("{name:<50} {ns_per_iter:>12.1} ns/iter  {melem_s:>8.3} Melem/s");
        }
        None => println!("{name:<50} {ns_per_iter:>12.1} ns/iter"),
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
