//! The indexable JSON [`Value`] tree.

use std::fmt;
use std::ops::Index;

use serde::de::{Deserialize, Deserializer};
use serde::ser::{self, Serialize, Serializer};
use serde::Content;

/// A JSON number — integer-preserving, unlike a bare `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; match serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::U64(v)),
            Content::I64(v) => Value::Number(Number::I64(v)),
            Content::F64(v) => Value::Number(Number::F64(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    pub(crate) fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number::U64(v)) => Content::U64(v),
            Value::Number(Number::I64(v)) => Content::I64(v),
            Value::Number(Number::F64(v)) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, v.into_content()))
                    .collect(),
            ),
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    /// Member access; missing keys and non-objects index to `Null`, as in
    /// real serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::write::write_content(&mut out, &self.clone().into_content());
        f.write_str(&out)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::U64(v)) => i128::from(*v) == i128::from(*other),
                    Value::Number(Number::I64(v)) => i128::from(*v) == i128::from(*other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_none(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::U64(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::I64(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::F64(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    ser::SerializeSeq::serialize_element(&mut seq, item)?;
                }
                ser::SerializeSeq::end(seq)
            }
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    ser::SerializeMap::serialize_entry(&mut map, k, v)?;
                }
                ser::SerializeMap::end(map)
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.into_content()?))
    }
}
