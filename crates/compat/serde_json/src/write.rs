//! Compact JSON writer over the shim's `Content` tree.

use serde::Content;

/// Append the JSON encoding of `content` to `out`.
pub(crate) fn write_content(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                // JSON cannot represent Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

/// Write a JSON string literal with the required escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
