//! Offline JSON serialization/deserialization over the serde shim.
//!
//! Provides the `serde_json` API surface the workspace uses: `to_string`,
//! `from_str`, and an indexable [`Value`] tree. Values round-trip through
//! the shim's self-describing `Content` representation.

#![forbid(unsafe_code)]

use std::fmt;

use serde::de::{self, Deserialize, Deserializer};
use serde::ser::{self, Serialize};
use serde::Content;

mod parse;
mod value;
mod write;

pub use value::{Number, Value};

/// Error raised by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value.serialize(ContentSerializer)?;
    let mut out = String::new();
    write::write_content(&mut out, &content);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let content = parse::parse(input)?;
    T::deserialize(ContentDeserializer { content })
}

/// A [`serde::Serializer`] that lowers any `Serialize` type to `Content`.
struct ContentSerializer;

struct SeqBuilder {
    items: Vec<Content>,
}

struct MapBuilder {
    entries: Vec<(String, Content)>,
}

impl ser::Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeMap = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Content, Error> {
        Ok(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Content, Error> {
        Ok(Content::I64(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Content, Error> {
        Ok(Content::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, Error> {
        Ok(Content::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Content, Error> {
        Ok(Content::Str(v.to_string()))
    }
    fn serialize_none(self) -> Result<Content, Error> {
        Ok(Content::Null)
    }
    fn serialize_unit(self) -> Result<Content, Error> {
        Ok(Content::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, Error> {
        Ok(Content::Str(variant.to_string()))
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, Error> {
        // serde_json's externally-tagged representation: {"Variant": value}.
        Ok(Content::Map(vec![(
            variant.to_string(),
            value.serialize(ContentSerializer)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapBuilder, Error> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
}

impl ser::SerializeSeq for SeqBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ContentSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Seq(self.items))
    }
}

impl ser::SerializeStruct for MapBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_string(), value.serialize(ContentSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Map(self.entries))
    }
}

impl ser::SerializeMap for MapBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match key.serialize(ContentSerializer)? {
            Content::Str(s) => s,
            other => return Err(Error::new(format!("non-string map key: {other:?}"))),
        };
        self.entries
            .push((key, value.serialize(ContentSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Map(self.entries))
    }
}

/// A [`serde::Deserializer`] over parsed JSON.
struct ContentDeserializer {
    content: Content,
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = Error;
    fn into_content(self) -> Result<Content, Error> {
        Ok(self.content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string("hi\"there").unwrap(), "\"hi\\\"there\"");
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"a": {"b": [1, 2, 443]}, "s": "x"}"#).unwrap();
        assert_eq!(v["a"]["b"][2], 443);
        assert_eq!(v["s"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str("\"dn-hunter\"").unwrap();
        assert_eq!(s, "dn-hunter");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{oops").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }
}
