//! Recursive-descent JSON parser producing the shim's `Content` tree.

use serde::Content;

use crate::Error;

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue; // hex4 advanced past the digits
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string".to_string()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(Error::new("truncated \\u escape".to_string()));
        };
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape".to_string()))?;
        let cp = u32::from_str_radix(digits, 16)
            .map_err(|_| Error::new("bad \\u escape".to_string()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}` at offset {start}")))
    }
}
