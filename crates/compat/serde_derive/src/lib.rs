//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! The build environment has no crates.io access, so `syn` / `quote` are
//! unavailable; the item is parsed directly from the compiler's
//! `proc_macro::TokenStream`. Supported shapes are exactly what the
//! workspace uses: structs with named fields (with optional
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]` field
//! attributes) and enums with unit or single-field newtype variants.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `#[derive]` input item.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// True for `Variant(T)` newtype variants, false for units.
    newtype: bool,
}

struct Field {
    name: String,
    /// `#[serde(default)]`: use `Default::default()` when the field is
    /// absent from the input.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit the field when
    /// `path(&value)` is true.
    skip_serializing_if: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            body.push_str(&format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            ));
            for f in fields {
                let fname = &f.name;
                let stmt = format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &self.{fname})?;"
                );
                match &f.skip_serializing_if {
                    Some(path) => {
                        body.push_str(&format!("if !{path}(&self.{fname}) {{ {stmt} }}\n"))
                    }
                    None => {
                        body.push_str(&stmt);
                        body.push('\n');
                    }
                }
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)\n");
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (i, v) in variants.iter().enumerate() {
                let vname = &v.name;
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{vname}(__payload) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {i}u32, \"{vname}\", __payload),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {i}u32, \"{vname}\"),\n"
                    ));
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                // Fields that may legitimately be absent (declared `default`
                // or elided by `skip_serializing_if`) fall back to
                // `Default::default()`; all others are required.
                let missing = if f.default || f.skip_serializing_if.is_some() {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::missing_field(\"{fname}\"))"
                    )
                };
                inits.push_str(&format!(
                    "{fname}: match ::serde::__private::take_field(&mut __map, \"{fname}\") {{\n\
                     ::std::option::Option::Some(__c) => ::serde::__private::from_content::<_, __D::Error>(__c)?,\n\
                     ::std::option::Option::None => {missing},\n}},\n"
                ));
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__d: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 match ::serde::de::Deserializer::into_content(__d)? {{\n\
                 ::serde::__private::Content::Map(mut __map) => {{\n\
                 let _ = &mut __map;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"expected a map for struct {name}, got {{:?}}\", __other))),\n\
                 }}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            // Units arrive as bare strings; newtypes use serde_json's
            // externally-tagged map form {"Variant": payload}.
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                let vname = &v.name;
                if v.newtype {
                    newtype_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::__private::from_content::<_, __D::Error>(__payload)?)),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::de::Deserializer<'de>>(__d: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 match ::serde::de::Deserializer::into_content(__d)? {{\n\
                 ::serde::__private::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n}},\n\
                 ::serde::__private::Content::Map(__map) if __map.len() == 1 => {{\n\
                 let (__tag, __payload) = __map.into_iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n{newtype_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n}}\n}}\n\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"expected a variant of enum {name}, got {{:?}}\", __other))),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parse the derive input item into the supported [`Item`] shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types ({name})");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive shim supports only brace-bodied items; {name} has {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parse named struct fields, honoring `#[serde(...)]` field attributes.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let mut default = false;
        let mut skip_serializing_if = None;
        // Field attributes (doc comments arrive as #[doc = "..."] too).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            let Some(TokenTree::Group(g)) = tokens.next() else {
                panic!("serde_derive: malformed attribute");
            };
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(i)) = inner.next() {
                if i.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        parse_serde_attr(args.stream(), &mut default, &mut skip_serializing_if);
                    }
                }
            }
        }
        if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field_name) = tt else {
            panic!("serde_derive: expected field name, got {tt:?}");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
        fields.push(Field {
            name: field_name.to_string(),
            default,
            skip_serializing_if,
        });
    }
    fields
}

/// Parse the inside of one `#[serde(...)]` attribute.
fn parse_serde_attr(
    args: TokenStream,
    default: &mut bool,
    skip_serializing_if: &mut Option<String>,
) {
    let mut tokens = args.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(key) = tt else { continue };
        match key.to_string().as_str() {
            "default" => *default = true,
            "skip_serializing_if" => {
                // Expect `= "path"`.
                match (tokens.next(), tokens.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        *skip_serializing_if = Some(raw.trim_matches('"').to_string());
                    }
                    other => panic!("serde_derive: malformed skip_serializing_if: {other:?}"),
                }
            }
            other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
        }
    }
}

/// Parse enum variants; unit and single-field newtype variants are supported.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive: expected variant name, got {tt:?}");
        };
        let newtype = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let has_comma = g
                    .stream()
                    .into_iter()
                    .any(|tt| matches!(&tt, TokenTree::Punct(p) if p.as_char() == ','));
                if has_comma {
                    panic!("serde_derive shim supports only single-field tuple variants ({name})");
                }
                tokens.next();
                true
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive shim supports only unit or newtype enum variants ({name})")
            }
            _ => false,
        };
        variants.push(Variant {
            name: name.to_string(),
            newtype,
        });
        // Skip to the next comma (covers explicit discriminants).
        while let Some(tt) = tokens.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
    }
    variants
}
