//! Offline shim for `loom`-style concurrency testing.
//!
//! Real loom exhaustively enumerates thread interleavings under the C11
//! memory model. Without crates.io access that engine is unavailable, so
//! this shim approximates it with **randomized schedule exploration**: the
//! test body runs many times (`LOOM_MAX_ITER`, default 128), and every
//! synchronization point (`Mutex::lock`, `thread::yield_now`, spawn) injects
//! a seeded random delay — nothing, a spin, an OS yield, or a short sleep —
//! so each iteration executes a materially different interleaving. This is
//! the same stress-scheduling idea behind tools like rr chaos mode: far
//! weaker than exhaustive model checking, but it reliably surfaces lost
//! updates and ordering bugs with windows wider than a few instructions
//! (see `crates/resolver/tests/loom_shard.rs` for a demonstration against a
//! deliberately broken lock discipline).
//!
//! The API mirrors the subset of loom the workspace uses: `loom::model`,
//! `loom::thread::{spawn, yield_now}`, `loom::sync::{Arc, Mutex, atomic}`.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global per-iteration schedule seed, set by [`model`].
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_STREAM: Cell<u64> = const { Cell::new(0) };
}

fn splitmix(z: u64) -> u64 {
    let mut x = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Inject a scheduling perturbation. Called by every shim sync primitive;
/// test code may call it directly to widen a race window under scrutiny.
pub fn explore_preempt() {
    let global = SCHEDULE_SEED.load(Ordering::Relaxed);
    let local = THREAD_STREAM.with(|stream| {
        let next = splitmix(stream.get() ^ global);
        stream.set(next);
        next
    });
    match local % 16 {
        0..=7 => {}
        8..=10 => std::hint::spin_loop(),
        11..=13 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(local % 97)),
    }
}

fn max_iterations() -> u64 {
    std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(128)
}

/// Run `f` once per explored schedule. Panics propagate out of the failing
/// iteration, as with real loom.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for iteration in 0..max_iterations() {
        SCHEDULE_SEED.store(splitmix(iteration), Ordering::Relaxed);
        f();
    }
}

pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn a thread, seeding its perturbation stream.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::explore_preempt();
            f()
        })
    }

    /// A loom-visible scheduling point.
    pub fn yield_now() {
        super::explore_preempt();
        std::thread::yield_now();
    }
}

pub mod sync {
    pub use std::sync::atomic;
    pub use std::sync::Arc;
    use std::sync::MutexGuard;

    /// A mutex whose `lock` is a schedule-exploration point.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquire the lock; never poisons (parking_lot-compatible so the
        /// resolver's `cfg(loom)` shim can swap it in transparently).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            super::explore_preempt();
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(value) => value,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Mutex};
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn model_runs_many_schedules() {
        let ran = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ran2 = Arc::clone(&ran);
        super::model(move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ran.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn locked_counter_is_exact() {
        super::model(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        for _ in 0..50 {
                            *counter.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("no panics under correct locking");
            }
            assert_eq!(*counter.lock(), 100);
        });
    }

    #[test]
    fn racy_read_modify_write_loses_updates() {
        // The shim's reason to exist: a read-modify-write split across two
        // lock acquisitions must be caught as a lost update.
        let violated = Arc::new(AtomicBool::new(false));
        let violated2 = Arc::clone(&violated);
        super::model(move || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        for _ in 0..25 {
                            let snapshot = *counter.lock(); // guard dropped!
                            super::explore_preempt();
                            *counter.lock() = snapshot + 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("threads complete");
            }
            if *counter.lock() != 50 {
                violated2.store(true, Ordering::Relaxed);
            }
        });
        assert!(
            violated.load(Ordering::Relaxed),
            "schedule exploration failed to surface the lost update"
        );
    }
}
