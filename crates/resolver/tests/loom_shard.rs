//! Loom model-checking of [`ShardedResolver`]'s lock discipline.
//!
//! Build and run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p dnhunter-resolver --test loom_shard --release
//! ```
//!
//! Under `--cfg loom`, `crate::sync::Mutex` resolves to the loom mutex, so
//! every shard-lock acquisition becomes a schedule-exploration point and
//! `loom::model` drives the closure through many distinct interleavings.
//!
//! Two properties are checked:
//!
//! 1. The shipped locking discipline (one guard per operation, never held
//!    across shards) keeps the resolver's counters and occupancy exact under
//!    concurrent use — no interleaving loses an insert.
//! 2. The deliberately broken `insert_if_absent_racy` (check and act under
//!    *separate* guards) IS caught: the explorer finds the interleaving
//!    where two threads both observe "absent" and both insert. This is the
//!    regression test for the checker itself — if the exploration engine
//!    stopped finding that interleaving, property 1 would no longer mean
//!    anything.

#![cfg(loom)]

use std::net::IpAddr;

use dnhunter_dns::DomainName;
use dnhunter_resolver::{ResolverConfig, ShardedResolver};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

fn name(s: &str) -> DomainName {
    s.parse().unwrap()
}

#[test]
fn concurrent_inserts_lose_nothing() {
    loom::model(|| {
        let r: Arc<ShardedResolver> = Arc::new(ShardedResolver::new(2, ResolverConfig::default()));
        let handles: Vec<_> = (0..2u8)
            .map(|t| {
                let r = Arc::clone(&r);
                loom::thread::spawn(move || {
                    for i in 0..4u8 {
                        let client = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, t, i));
                        r.insert(client, &name("w.example.com"), &[ip("9.9.9.9")]);
                        assert!(
                            r.lookup(client, ip("9.9.9.9")).is_some(),
                            "own insert must be visible to the inserting thread"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics under correct locking");
        }
        let stats = r.stats();
        assert_eq!(stats.responses, 8, "every insert must be counted");
        assert_eq!(stats.hits, 8, "every own-lookup must hit");
    });
}

#[test]
fn same_pair_inserts_serialize() {
    loom::model(|| {
        let r: Arc<ShardedResolver> = Arc::new(ShardedResolver::new(2, ResolverConfig::default()));
        let client = ip("10.0.0.7");
        let handles: Vec<_> = ["a.example.com", "b.example.com"]
            .into_iter()
            .map(|fqdn| {
                let r = Arc::clone(&r);
                loom::thread::spawn(move || {
                    r.insert(client, &name(fqdn), &[ip("9.9.9.9")]);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics under correct locking");
        }
        // Whatever the interleaving, exactly two responses were recorded and
        // the surviving binding is one of the two inserted names.
        assert_eq!(r.stats().responses, 2);
        let got = r
            .lookup(client, ip("9.9.9.9"))
            .expect("a binding survives")
            .to_string();
        assert!(
            got == "a.example.com" || got == "b.example.com",
            "unexpected binding {got}"
        );
    });
}

#[test]
fn racy_check_then_act_is_caught() {
    // The deliberately broken locking mutation: check-then-act across two
    // guard acquisitions. The explorer must find the interleaving where
    // both threads observe "absent" and both report having inserted first.
    let violated = Arc::new(AtomicBool::new(false));
    let violated_in_model = Arc::clone(&violated);
    loom::model(move || {
        let r: Arc<ShardedResolver> = Arc::new(ShardedResolver::new(2, ResolverConfig::default()));
        let client = ip("10.0.0.9");
        let handles: Vec<_> = ["a.example.com", "b.example.com"]
            .into_iter()
            .map(|fqdn| {
                let r = Arc::clone(&r);
                loom::thread::spawn(move || {
                    r.insert_if_absent_racy(client, &name(fqdn), &[ip("9.9.9.9")])
                })
            })
            .collect();
        let first_inserts = handles
            .into_iter()
            .map(|h| h.join().expect("threads complete"))
            .filter(|&b| b)
            .count();
        // Correct locking would make exactly one call the first insert.
        if first_inserts != 1 {
            violated_in_model.store(true, Ordering::Relaxed);
        }
    });
    assert!(
        violated.load(Ordering::Relaxed),
        "schedule exploration failed to catch the check-then-act race; \
         the lock-discipline checks in this suite prove nothing if this fires"
    );
}
