//! Property-based tests for the DNS Resolver (Algorithm 1 invariants).

use dnhunter_dns::DomainName;
use dnhunter_resolver::clist::{CircularList, SlotRef};
use dnhunter_resolver::{CheckedResolver, DnsResolver, HashedTables, ResolverConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

#[derive(Debug, Clone)]
struct Op {
    client: u8,
    server: u8,
    fqdn: u8,
}

fn client_ip(c: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, c))
}
fn server_ip(s: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(23, 0, 0, s))
}
fn fqdn(f: u8) -> DomainName {
    format!("name{f}.example.com").parse().expect("valid")
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..10, 0u8..20).prop_map(|(client, server, fqdn)| Op {
            client,
            server,
            fqdn,
        }),
        0..200,
    )
}

proptest! {
    /// With a Clist big enough to never evict, a lookup always returns the
    /// most recent insert for the (client, server) pair — exactly the
    /// paper's last-writer-wins semantics.
    #[test]
    fn lookup_returns_latest_binding(ops in arb_ops()) {
        let mut resolver: DnsResolver = DnsResolver::new(1024);
        let mut model: HashMap<(u8, u8), u8> = HashMap::new();
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
            model.insert((op.client, op.server), op.fqdn);
        }
        for ((c, s), f) in model {
            let got = resolver.peek(client_ip(c), server_ip(s));
            prop_assert_eq!(got.map(|a| (*a).clone()), Some(fqdn(f)));
        }
    }

    /// The Clist occupancy never exceeds L, whatever the workload, and
    /// evictions are exactly inserts − occupancy.
    #[test]
    fn occupancy_bounded_by_l(ops in arb_ops(), l in 1usize..64) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: l,
            labels_per_server: 1,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        prop_assert!(resolver.len() <= l);
        let stats = resolver.stats();
        prop_assert_eq!(stats.evictions, ops.len() as u64 - resolver.len() as u64);
    }

    /// After eviction, only the most recent L bindings can be found; any
    /// hit must correspond to one of the last L inserts.
    #[test]
    fn hits_come_from_recent_window(ops in arb_ops(), l in 1usize..32) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: l,
            labels_per_server: 1,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        let window: Vec<&Op> = ops.iter().rev().take(l).collect();
        for c in 0..6u8 {
            for s in 0..10u8 {
                if let Some(hit) = resolver.peek(client_ip(c), server_ip(s)) {
                    let in_window = window.iter().any(|op| {
                        op.client == c && op.server == s && fqdn(op.fqdn) == *hit
                    });
                    prop_assert!(in_window, "hit {hit} for ({c},{s}) not among last {l} inserts");
                }
            }
        }
    }

    /// A `SlotRef` captured at insert time is detected stale the moment its
    /// slot is evicted (wraparound overwrite) or removed — the generation
    /// counter prevents every ABA confusion — and live refs always resolve
    /// to exactly the value that was stored through them. Throughout any
    /// workload, occupancy never exceeds capacity.
    #[test]
    fn stale_slot_refs_never_resolve(
        ops in proptest::collection::vec((0u16..600, any::<bool>()), 1..300),
        l in 1usize..24,
    ) {
        let mut clist: CircularList<u16> = CircularList::new(l);
        // Every ref ever captured, the value stored through it, and
        // whether the model says it should still be live.
        let mut refs: Vec<(SlotRef, u16, bool)> = Vec::new();
        for &(value, do_remove) in &ops {
            if do_remove && !refs.is_empty() {
                // Remove a pseudo-arbitrary previously captured ref (live
                // or already stale — remove must be generation-checked).
                let pick = usize::from(value) % refs.len();
                let (slot, _, ref mut live) = refs[pick];
                let removed = clist.remove(slot);
                prop_assert_eq!(removed.is_some(), *live,
                    "remove must succeed exactly for live refs");
                *live = false;
            } else {
                let (slot, _evicted) = clist.push(value);
                // The overwritten slot's older refs are now stale.
                for (old, _, live) in refs.iter_mut() {
                    if old.index == slot.index {
                        *live = false;
                    }
                }
                refs.push((slot, value, true));
            }
            prop_assert!(clist.len() <= clist.capacity(),
                "occupancy {} exceeds capacity {}", clist.len(), clist.capacity());
            for &(slot, stored, live) in &refs {
                match clist.get(slot) {
                    Some(&v) => {
                        prop_assert!(live, "stale ref {slot:?} resolved to {v}");
                        prop_assert_eq!(v, stored);
                    }
                    None => prop_assert!(!live, "live ref {slot:?} failed to resolve"),
                }
            }
        }
    }

    /// Every mutation and query agrees with the naive shadow model
    /// (`resolver::check`) — a `VecDeque` ring plus per-pair id lists — under
    /// workloads small enough to force constant eviction, for both the
    /// ordered-map tables (the paper's choice) and the hashed tables.
    /// `CheckedResolver` asserts agreement internally after every op.
    #[test]
    fn resolver_agrees_with_shadow_model(ops in arb_ops(), l in 1usize..16, k in 1usize..4) {
        let config = ResolverConfig { clist_size: l, labels_per_server: k };
        let mut ordered: CheckedResolver = CheckedResolver::with_config(config);
        let mut hashed: CheckedResolver<HashedTables> = CheckedResolver::with_config(config);
        for op in &ops {
            // Alternate single- and dual-server answers so eviction has to
            // clean back-references in more than one per-pair list.
            let servers: Vec<IpAddr> = if op.fqdn % 3 == 0 {
                vec![server_ip(op.server), server_ip(op.server.wrapping_add(1) % 10)]
            } else {
                vec![server_ip(op.server)]
            };
            ordered.insert(client_ip(op.client), &fqdn(op.fqdn), &servers);
            hashed.insert(client_ip(op.client), &fqdn(op.fqdn), &servers);
            ordered.lookup(client_ip(op.client), server_ip(op.server));
            let _ = hashed.lookup_all(client_ip(op.client), server_ip(op.server));
        }
        for c in 0..6u8 {
            for s in 0..10u8 {
                let _ = ordered.peek(client_ip(c), server_ip(s));
                let _ = ordered.lookup_all(client_ip(c), server_ip(s));
                let _ = hashed.peek(client_ip(c), server_ip(s));
            }
        }
        ordered.verify();
        hashed.verify();
        prop_assert_eq!(ordered.real().len(), hashed.real().len());
    }

    /// Multi-label mode returns newest-first, at most `labels_per_server`
    /// distinct entries, and its head agrees with single lookup.
    #[test]
    fn multilabel_head_matches_lookup(ops in arb_ops(), k in 1usize..4) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: 1024,
            labels_per_server: k,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        for c in 0..6u8 {
            for s in 0..10u8 {
                let all = resolver.lookup_all(client_ip(c), server_ip(s));
                prop_assert!(all.len() <= k);
                let head = resolver.peek(client_ip(c), server_ip(s));
                prop_assert_eq!(all.first().cloned(), head);
            }
        }
    }
}
