//! Property-based tests for the DNS Resolver (Algorithm 1 invariants).

use dnhunter_dns::DomainName;
use dnhunter_resolver::{DnsResolver, ResolverConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

#[derive(Debug, Clone)]
struct Op {
    client: u8,
    server: u8,
    fqdn: u8,
}

fn client_ip(c: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, c))
}
fn server_ip(s: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(23, 0, 0, s))
}
fn fqdn(f: u8) -> DomainName {
    format!("name{f}.example.com").parse().expect("valid")
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..10, 0u8..20).prop_map(|(client, server, fqdn)| Op {
            client,
            server,
            fqdn,
        }),
        0..200,
    )
}

proptest! {
    /// With a Clist big enough to never evict, a lookup always returns the
    /// most recent insert for the (client, server) pair — exactly the
    /// paper's last-writer-wins semantics.
    #[test]
    fn lookup_returns_latest_binding(ops in arb_ops()) {
        let mut resolver: DnsResolver = DnsResolver::new(1024);
        let mut model: HashMap<(u8, u8), u8> = HashMap::new();
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
            model.insert((op.client, op.server), op.fqdn);
        }
        for ((c, s), f) in model {
            let got = resolver.peek(client_ip(c), server_ip(s));
            prop_assert_eq!(got.map(|a| (*a).clone()), Some(fqdn(f)));
        }
    }

    /// The Clist occupancy never exceeds L, whatever the workload, and
    /// evictions are exactly inserts − occupancy.
    #[test]
    fn occupancy_bounded_by_l(ops in arb_ops(), l in 1usize..64) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: l,
            labels_per_server: 1,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        prop_assert!(resolver.len() <= l);
        let stats = resolver.stats();
        prop_assert_eq!(stats.evictions, ops.len() as u64 - resolver.len() as u64);
    }

    /// After eviction, only the most recent L bindings can be found; any
    /// hit must correspond to one of the last L inserts.
    #[test]
    fn hits_come_from_recent_window(ops in arb_ops(), l in 1usize..32) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: l,
            labels_per_server: 1,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        let window: Vec<&Op> = ops.iter().rev().take(l).collect();
        for c in 0..6u8 {
            for s in 0..10u8 {
                if let Some(hit) = resolver.peek(client_ip(c), server_ip(s)) {
                    let in_window = window.iter().any(|op| {
                        op.client == c && op.server == s && fqdn(op.fqdn) == *hit
                    });
                    prop_assert!(in_window, "hit {hit} for ({c},{s}) not among last {l} inserts");
                }
            }
        }
    }

    /// Multi-label mode returns newest-first, at most `labels_per_server`
    /// distinct entries, and its head agrees with single lookup.
    #[test]
    fn multilabel_head_matches_lookup(ops in arb_ops(), k in 1usize..4) {
        let mut resolver: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: 1024,
            labels_per_server: k,
        });
        for op in &ops {
            resolver.insert(client_ip(op.client), &fqdn(op.fqdn), &[server_ip(op.server)]);
        }
        for c in 0..6u8 {
            for s in 0..10u8 {
                let all = resolver.lookup_all(client_ip(c), server_ip(s));
                prop_assert!(all.len() <= k);
                let head = resolver.peek(client_ip(c), server_ip(s));
                prop_assert_eq!(all.first().cloned(), head);
            }
        }
    }
}
