//! Synchronization primitives, swappable for loom model checking.
//!
//! The sharded resolver (paper §3.1.1's load-balancing extension) guards
//! each shard with a mutex. Under normal builds that is `parking_lot::Mutex`;
//! when the workspace is compiled with `RUSTFLAGS="--cfg loom"` the same
//! code runs against `loom::sync::Mutex`, whose lock operations are
//! schedule-exploration points, so `tests/loom_shard.rs` can drive the
//! resolver through many thread interleavings looking for races.
//!
//! Only the API subset the resolver uses is re-exported: `Mutex::new` and
//! `Mutex::lock` (non-poisoning, parking_lot-style).

#[cfg(not(loom))]
pub use parking_lot::Mutex;

#[cfg(loom)]
pub use loom::sync::Mutex;

/// A loom scheduling point. No-op in normal builds; under `--cfg loom` it
/// perturbs the schedule, widening race windows between two lock
/// acquisitions (used by the deliberately-racy demo paths guarding the
/// paper's §3.1 shared state).
#[cfg(not(loom))]
pub fn explore_preempt() {}

#[cfg(loom)]
pub use loom::explore_preempt;
