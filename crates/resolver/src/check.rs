//! Shadow-model checking for [`DnsResolver`].
//!
//! The resolver earns its performance with an easy-to-get-wrong design:
//! slot generations, back-reference culling, per-pair label caps (paper
//! Algorithm 1 lines 10–25 plus the §6 multi-label extension). This module
//! re-implements the *semantics* with the dumbest structures that can
//! express them — a `VecDeque` standing in for the Clist ring and an
//! ordered map of per-pair id lists — and replays every mutation against
//! both, asserting agreement.
//!
//! [`CheckedResolver`] wraps a real resolver plus the shadow model. Its
//! mutation and query methods forward to both and compare results; the
//! whole-state [`CheckedResolver::verify`] cross-checks occupancy, client
//! tracking, and counter conservation. The comparisons are compiled only
//! under `debug_assertions`, so release binaries pay nothing; the proptest
//! suites (`tests/properties.rs`) drive randomized workloads through it.

use std::collections::{BTreeMap, VecDeque};
use std::net::IpAddr;
use std::sync::Arc;

use dnhunter_dns::DomainName;

use crate::maps::{OrderedTables, TableFamily};
use crate::resolver::{DnsResolver, InsertOutcome, ResolverConfig};

/// One live binding in the shadow ring.
#[derive(Debug, Clone)]
struct ShadowEntry {
    id: u64,
    client: IpAddr,
    fqdn: Arc<DomainName>,
}

/// The naive replica of the paper's §3.1 circular-list resolver: a FIFO
/// `VecDeque` for the Clist and per-pair insert-id lists for the lookup
/// maps. Entry ids are the insert sequence number;
/// because eviction is strictly FIFO, the live ids always form a contiguous
/// range, making liveness a single comparison.
#[derive(Debug, Clone)]
pub struct ShadowModel {
    capacity: usize,
    labels_per_server: usize,
    entries: VecDeque<ShadowEntry>,
    next_id: u64,
    /// `(client, server)` → ids of inserts bound to the pair, oldest first,
    /// replaying the resolver's cull-push-cap maintenance.
    pairs: BTreeMap<(IpAddr, IpAddr), VecDeque<u64>>,
    pub responses: u64,
    pub evictions: u64,
}

impl ShadowModel {
    /// An empty model mirroring `config` (capacity = the paper's §4.2 `L`).
    pub fn new(config: &ResolverConfig) -> Self {
        ShadowModel {
            capacity: config.clist_size.max(1),
            labels_per_server: config.labels_per_server,
            entries: VecDeque::new(),
            next_id: 0,
            pairs: BTreeMap::new(),
            responses: 0,
            evictions: 0,
        }
    }

    fn is_live(&self, id: u64) -> bool {
        self.entries.front().is_some_and(|f| id >= f.id)
    }

    fn entry(&self, id: u64) -> Option<&ShadowEntry> {
        let front = self.entries.front()?.id;
        self.entries
            .get(usize::try_from(id.checked_sub(front)?).ok()?)
    }

    /// Mirror of [`DnsResolver::insert`] — the paper's §3.1 update step.
    pub fn insert(&mut self, client: IpAddr, fqdn: &DomainName, servers: &[IpAddr]) {
        self.responses += 1;
        if servers.is_empty() {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back(ShadowEntry {
            id,
            client,
            fqdn: Arc::new(fqdn.clone()),
        });
        for &server in servers {
            let refs = self.pairs.entry((client, server)).or_default();
            let live_front = self.entries.front().map(|f| f.id).unwrap_or(0);
            refs.retain(|&r| r >= live_front);
            refs.push_back(id);
            while refs.len() > self.labels_per_server {
                refs.pop_front();
            }
        }
    }

    /// Mirror of [`DnsResolver::peek`] — the paper's §3.1 most-recent-binding
    /// rule, without touching hit counters.
    pub fn peek(&self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        let refs = self.pairs.get(&(client, server))?;
        refs.iter()
            .rev()
            .find(|&&r| self.is_live(r))
            .and_then(|&r| self.entry(r))
            .map(|e| Arc::clone(&e.fqdn))
    }

    /// Mirror of [`DnsResolver::lookup_all`] — the paper's §4.1 multi-label
    /// view, newest first.
    pub fn lookup_all(&self, client: IpAddr, server: IpAddr) -> Vec<Arc<DomainName>> {
        let Some(refs) = self.pairs.get(&(client, server)) else {
            return Vec::new();
        };
        refs.iter()
            .rev()
            .filter(|&&r| self.is_live(r))
            .filter_map(|&r| self.entry(r))
            .map(|e| Arc::clone(&e.fqdn))
            .collect()
    }

    /// Live occupancy (the resolver's `len`; bounded by the paper's §4.2 `L`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before any effective insert (answerless responses don't count,
    /// §3.1).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct clients among live entries (the resolver's
    /// `clients_tracked`, by the eager-backref-cleanup argument in
    /// `resolver::remove_backrefs`) — the per-client map population of the
    /// paper's §3.1 data structure.
    pub fn clients_tracked(&self) -> usize {
        let mut clients: Vec<IpAddr> = self.entries.iter().map(|e| e.client).collect();
        clients.sort_unstable();
        clients.dedup();
        clients.len()
    }
}

/// A [`DnsResolver`] that checks itself against a [`ShadowModel`] on every
/// operation (debug builds only — under `--release` it degrades to plain
/// forwarding). This is the machine-checked form of the paper's §3.1
/// resolver semantics.
pub struct CheckedResolver<F: TableFamily = OrderedTables> {
    real: DnsResolver<F>,
    shadow: ShadowModel,
}

impl<F: TableFamily> CheckedResolver<F> {
    /// Build both the real resolver and its shadow from one config
    /// (capacity = the paper's §4.2 `L`).
    pub fn with_config(config: ResolverConfig) -> Self {
        CheckedResolver {
            shadow: ShadowModel::new(&config),
            real: DnsResolver::with_config(config),
        }
    }

    /// The wrapped resolver (the paper's §3.1 engine), for read-only
    /// inspection.
    pub fn real(&self) -> &DnsResolver<F> {
        &self.real
    }

    /// The shadow model (naive replica of §3.1), for read-only inspection.
    pub fn shadow(&self) -> &ShadowModel {
        &self.shadow
    }

    /// Insert through both (§3.1 update step), then (debug builds)
    /// cross-check global state.
    pub fn insert(
        &mut self,
        client: IpAddr,
        fqdn: &DomainName,
        servers: &[IpAddr],
    ) -> InsertOutcome {
        let outcome = self.real.insert(client, fqdn, servers);
        self.shadow.insert(client, fqdn, servers);
        #[cfg(debug_assertions)]
        self.verify();
        outcome
    }

    /// Lookup through both (§3.1, counting hits); panics (debug builds) on
    /// disagreement.
    pub fn lookup(&mut self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        let got = self.real.lookup(client, server);
        #[cfg(debug_assertions)]
        {
            let want = self.shadow.peek(client, server);
            assert_eq!(
                got, want,
                "lookup({client}, {server}) diverged from the shadow model"
            );
        }
        got
    }

    /// Peek through both (§3.1 most-recent-binding rule); panics (debug
    /// builds) on disagreement.
    pub fn peek(&self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        let got = self.real.peek(client, server);
        #[cfg(debug_assertions)]
        {
            let want = self.shadow.peek(client, server);
            assert_eq!(
                got, want,
                "peek({client}, {server}) diverged from the shadow model"
            );
        }
        got
    }

    /// Multi-label lookup through both (§4.1 view); panics (debug builds) on
    /// disagreement.
    pub fn lookup_all(&self, client: IpAddr, server: IpAddr) -> Vec<Arc<DomainName>> {
        let got = self.real.lookup_all(client, server);
        #[cfg(debug_assertions)]
        {
            let want = self.shadow.lookup_all(client, server);
            assert_eq!(
                got, want,
                "lookup_all({client}, {server}) diverged from the shadow model"
            );
        }
        got
    }

    /// Cross-check the whole-state invariants:
    ///
    /// * occupancy agrees and never exceeds the configured `L` (§4.2);
    /// * the set of tracked clients agrees (the maps hold no ghosts);
    /// * counter conservation — `responses` and `evictions` agree, and
    ///   occupancy equals effective inserts minus evictions.
    pub fn verify(&self) {
        let stats = self.real.stats();
        assert_eq!(
            self.real.len(),
            self.shadow.len(),
            "occupancy diverged from the shadow model"
        );
        assert!(
            self.real.len() <= self.real.capacity(),
            "occupancy {} exceeds capacity {}",
            self.real.len(),
            self.real.capacity()
        );
        assert_eq!(
            self.real.clients_tracked(),
            self.shadow.clients_tracked(),
            "tracked-client count diverged from the shadow model"
        );
        assert_eq!(stats.responses, self.shadow.responses, "responses diverged");
        assert_eq!(stats.evictions, self.shadow.evictions, "evictions diverged");
        assert_eq!(
            self.shadow.next_id,
            self.shadow.evictions + self.shadow.len() as u64,
            "shadow id accounting broken: inserts != evictions + live"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::HashedTables;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn tiny_config() -> ResolverConfig {
        ResolverConfig {
            clist_size: 4,
            labels_per_server: 2,
        }
    }

    #[test]
    fn checked_resolver_accepts_a_wraparound_workload() {
        let mut r: CheckedResolver = CheckedResolver::with_config(tiny_config());
        for i in 0..20u8 {
            let client = ip(&format!("10.0.0.{}", 1 + i % 3));
            r.insert(
                client,
                &name(&format!("n{i}.example.com")),
                &[ip("23.0.0.9")],
            );
            r.lookup(client, ip("23.0.0.9"));
            let _ = r.lookup_all(client, ip("23.0.0.9"));
        }
        r.verify();
        assert_eq!(r.real().stats().responses, 20);
    }

    #[test]
    fn checked_resolver_covers_hashed_tables_too() {
        let mut r: CheckedResolver<HashedTables> = CheckedResolver::with_config(tiny_config());
        for i in 0..12u8 {
            r.insert(
                ip("10.0.0.1"),
                &name(&format!("h{i}.example.com")),
                &[ip("23.0.0.1"), ip("23.0.0.2")],
            );
        }
        assert_eq!(
            r.peek(ip("10.0.0.1"), ip("23.0.0.2")).unwrap().to_string(),
            "h11.example.com"
        );
        r.verify();
    }

    #[test]
    fn answerless_inserts_count_but_do_not_occupy() {
        let mut r: CheckedResolver = CheckedResolver::with_config(tiny_config());
        r.insert(ip("10.0.0.1"), &name("empty.example.com"), &[]);
        r.verify();
        assert_eq!(r.real().stats().responses, 1);
        assert_eq!(r.real().len(), 0);
        assert!(r.shadow().is_empty());
    }
}
