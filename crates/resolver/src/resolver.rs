//! The DNS Resolver structure — paper Algorithm 1.

use std::net::IpAddr;
use std::sync::Arc;

use dnhunter_dns::{DnsMessage, DomainName};
use dnhunter_telemetry::{tm_count, tm_gauge, Metric as Tm};

use crate::clist::{CircularList, SlotRef};
use crate::intern::{InternStats, NameInterner};
use crate::maps::{MapOps, OrderedTables, TableFamily};
use crate::stats::ResolverStats;

/// Configuration of a [`DnsResolver`] (the paper's §3.1 engine).
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// Clist capacity `L` — bounds entry lifetime (paper §6: a well-chosen
    /// `L` emulates ~1 h of client-side caching).
    pub clist_size: usize,
    /// How many recent distinct FQDN labels to retain per
    /// `(clientIP, serverIP)` pair. `1` reproduces Algorithm 1 exactly
    /// (last-writer-wins); larger values implement the §6 extension
    /// "DN-Hunter could easily be extended to return all possible labels".
    pub labels_per_server: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            clist_size: 1 << 20,
            labels_per_server: 1,
        }
    }
}

/// What one [`DnsResolver::insert`] (Algorithm 1) actually did — the
/// provenance the flight recorder's resolver events are built from
/// (which insert bound entries, whether it recycled a Clist slot,
/// whether it overwrote a different name). Counts, not booleans: one response can bind several
/// server addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `(client, server) → FQDN` bindings created (Algorithm 1 lines 10–21).
    pub bindings: u64,
    /// Clist slots recycled by this insert (lines 22–25); 0 or 1.
    pub evicted: u64,
    /// Bindings that replaced a still-live entry carrying a *different*
    /// FQDN — the paper's label-confusion signal.
    pub replaced_different: u64,
}

/// One Clist entry: the FQDN of a sniffed response, plus the keys needed to
/// remove its back-references when the FIFO recycles the slot
/// (Algorithm 1 lines 23–25).
#[derive(Debug, Clone)]
struct DnEntry {
    fqdn: Arc<DomainName>,
    client: IpAddr,
    servers: Vec<IpAddr>,
}

/// The resolver: a bounded replica of every monitored client's DNS cache.
///
/// Generic over the map backend (ordered maps as in the paper, or hash maps
/// as in its footnote 2); see [`crate::maps`].
pub struct DnsResolver<F: TableFamily = OrderedTables> {
    config: ResolverConfig,
    clist: CircularList<DnEntry>,
    clients: F::Client<F::Server<Vec<SlotRef>>>,
    stats: ResolverStats,
    /// FQDN dedup table (§3.2 allocation diet): repeat resolutions of the
    /// same name share one `Arc` instead of cloning per response.
    interner: NameInterner,
}

impl<F: TableFamily> DnsResolver<F> {
    /// Build with the given configuration (Clist size per the paper's §6
    /// dimensioning).
    pub fn with_config(config: ResolverConfig) -> Self {
        assert!(
            config.labels_per_server >= 1,
            "labels_per_server must be >= 1"
        );
        DnsResolver {
            clist: CircularList::new(config.clist_size),
            clients: Default::default(),
            config,
            stats: ResolverStats::default(),
            interner: NameInterner::new(),
        }
    }

    /// Build with a Clist of `l` entries and paper-exact single labels.
    pub fn new(l: usize) -> Self {
        Self::with_config(ResolverConfig {
            clist_size: l,
            ..ResolverConfig::default()
        })
    }

    /// Counters feeding the paper's §6 efficiency numbers.
    pub fn stats(&self) -> &ResolverStats {
        &self.stats
    }

    /// FQDN-interning counters (allocations avoided on the §3.1 insert
    /// path). Kept out of [`ResolverStats`] on purpose: per-shard distinct
    /// name counts differ from a global resolver's, and the merged parallel
    /// report must stay byte-identical to the sequential one.
    pub fn intern_stats(&self) -> InternStats {
        self.interner.stats()
    }

    /// Occupied Clist entries (bounded by the §4.2/§6 `L`).
    pub fn len(&self) -> usize {
        self.clist.len()
    }

    /// Clist capacity `L` (paper §3.1.1: the Clist bounds entry lifetime,
    /// so `L` is the resolver's total binding budget).
    pub fn capacity(&self) -> usize {
        self.clist.capacity()
    }

    /// True before any insert (fresh §3.1 replica).
    pub fn is_empty(&self) -> bool {
        self.clist.is_empty()
    }

    /// Number of distinct clients currently tracked (outer map of the §3.1
    /// two-level lookup).
    pub fn clients_tracked(&self) -> usize {
        self.clients.len()
    }

    /// The configuration in use (`L` and the §6 multi-label width).
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Rough heap footprint of the live structure, in bytes — the paper's
    /// §6 asks how big `L` can be under real-time constraints; this answers
    /// "what does that cost in memory".
    pub fn memory_estimate(&self) -> usize {
        use std::mem::size_of;
        // Clist slots: option + generation + entry struct.
        let mut bytes = self.clist.capacity() * (size_of::<u64>() + size_of::<DnEntry>());
        for e in self.clist.iter() {
            bytes += e.fqdn.encoded_len() + size_of::<DomainName>();
            bytes += e.servers.len() * size_of::<IpAddr>();
        }
        // Two map levels: assume ~48 bytes of node overhead per entry, a
        // reasonable midpoint for BTreeMap/HashMap nodes.
        const NODE: usize = 48;
        bytes += self.clients.len() * (size_of::<IpAddr>() + NODE);
        bytes += self.stats.bindings.min(self.clist.len() as u64 * 4) as usize
            * (size_of::<IpAddr>() + size_of::<crate::clist::SlotRef>() + NODE);
        bytes
    }

    /// INSERT (Algorithm 1, lines 1–25): record that `client` resolved
    /// `fqdn` to the addresses in `servers`. Returns what the insert did
    /// so callers can trace provenance without re-deriving it from stats
    /// deltas.
    pub fn insert(
        &mut self,
        client: IpAddr,
        fqdn: &DomainName,
        servers: &[IpAddr],
    ) -> InsertOutcome {
        let mut outcome = InsertOutcome::default();
        self.stats.responses += 1;
        if servers.is_empty() {
            return outcome;
        }
        let entry = DnEntry {
            fqdn: self.interner.intern(fqdn),
            client,
            servers: servers.to_vec(),
        };
        let fqdn_arc = Arc::clone(&entry.fqdn);
        // Insert into the circular array, possibly recycling a slot
        // (lines 22–25: delete the evicted entry's back-references).
        let (slot, evicted) = self.clist.push(entry);
        if let Some(old) = evicted {
            self.stats.evictions += 1;
            outcome.evicted += 1;
            tm_count!(Tm::ResolverEvictions);
            self.remove_backrefs(&old);
        } else {
            // The push claimed a fresh slot instead of recycling one.
            tm_gauge!(Tm::ClistOccupancy, 1);
        }
        // Link (client, serverIP) → new entry for every answer address
        // (lines 10–21).
        let max_labels = self.config.labels_per_server;
        let clist = &self.clist;
        let stats = &mut self.stats;
        let server_map = self.clients.get_or_default(client);
        for &server in servers {
            stats.bindings += 1;
            outcome.bindings += 1;
            tm_count!(Tm::ResolverBindings);
            let refs = server_map.get_or_default(server);
            // Account replacements against the newest still-valid label.
            if let Some(prev) = refs.iter().rev().find_map(|r| clist.get(*r)) {
                if prev.fqdn == fqdn_arc {
                    stats.replaced_same_fqdn += 1;
                } else {
                    stats.replaced_different_fqdn += 1;
                    outcome.replaced_different += 1;
                    tm_count!(Tm::ResolverConfusion);
                }
            }
            refs.retain(|r| clist.get(*r).is_some());
            refs.push(slot);
            if refs.len() > max_labels {
                let drop_n = refs.len() - max_labels;
                refs.drain(..drop_n);
            }
        }
        outcome
    }

    /// Convenience: insert straight from a decoded DNS response addressed to
    /// `client` — the paper's §3.1 sniffing path. Non-responses and
    /// answerless responses are counted but add no bindings.
    pub fn insert_response(&mut self, client: IpAddr, response: &DnsMessage) -> InsertOutcome {
        if !response.header.is_response {
            return InsertOutcome::default();
        }
        let Some(name) = response.queried_fqdn().cloned() else {
            self.stats.responses += 1;
            return InsertOutcome::default();
        };
        let servers = response.answer_addresses();
        self.insert(client, &name, &servers)
    }

    /// LOOKUP (Algorithm 1, lines 27–34): the FQDN `client` most recently
    /// resolved for `server`.
    pub fn lookup(&mut self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        self.stats.lookups += 1;
        tm_count!(Tm::ResolverLookups);
        let found = self.peek(client, server);
        if found.is_some() {
            self.stats.hits += 1;
            tm_count!(Tm::ResolverHits);
        }
        found
    }

    /// [`DnsResolver::lookup`] (Algorithm 1 lines 27–34) without touching
    /// the statistics.
    pub fn peek(&self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        let server_map = self.clients.get(&client)?;
        let refs = server_map.get(&server)?;
        refs.iter()
            .rev()
            .find_map(|r| self.clist.get(*r))
            .map(|e| Arc::clone(&e.fqdn))
    }

    /// All still-live labels for the pair, newest first (§6 multi-label
    /// extension). Always at most `labels_per_server` entries.
    pub fn lookup_all(&self, client: IpAddr, server: IpAddr) -> Vec<Arc<DomainName>> {
        let Some(server_map) = self.clients.get(&client) else {
            return Vec::new();
        };
        let Some(refs) = server_map.get(&server) else {
            return Vec::new();
        };
        refs.iter()
            .rev()
            .filter_map(|r| self.clist.get(*r))
            .map(|e| Arc::clone(&e.fqdn))
            .collect()
    }

    /// Remove an evicted entry's back-references from the lookup maps.
    fn remove_backrefs(&mut self, old: &DnEntry) {
        let clist = &self.clist;
        let Some(server_map) = self.clients.get_mut(&old.client) else {
            return;
        };
        for server in &old.servers {
            let now_empty = if let Some(refs) = server_map.get_mut(server) {
                refs.retain(|r| clist.get(*r).is_some());
                refs.is_empty()
            } else {
                false
            };
            if now_empty {
                server_map.remove(server);
            }
        }
        if server_map.is_empty() {
            self.clients.remove(&old.client);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::HashedTables;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn fqdn(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn resolver(l: usize) -> DnsResolver {
        DnsResolver::new(l)
    }

    #[test]
    fn basic_insert_lookup() {
        let mut r = resolver(16);
        r.insert(
            ip("10.0.0.1"),
            &fqdn("itunes.apple.com"),
            &[ip("213.254.17.14"), ip("213.254.17.17")],
        );
        assert_eq!(
            r.lookup(ip("10.0.0.1"), ip("213.254.17.14"))
                .unwrap()
                .to_string(),
            "itunes.apple.com"
        );
        assert_eq!(
            r.lookup(ip("10.0.0.1"), ip("213.254.17.17"))
                .unwrap()
                .to_string(),
            "itunes.apple.com"
        );
        // Another client never resolved this name.
        assert!(r.lookup(ip("10.0.0.2"), ip("213.254.17.14")).is_none());
        assert_eq!(r.stats().lookups, 3);
        assert_eq!(r.stats().hits, 2);
        assert_eq!(r.stats().bindings, 2);
    }

    #[test]
    fn last_writer_wins_per_pair() {
        let mut r = resolver(16);
        let c = ip("10.0.0.1");
        let s = ip("23.9.9.9");
        r.insert(c, &fqdn("a.example.com"), &[s]);
        r.insert(c, &fqdn("b.example.com"), &[s]);
        assert_eq!(r.lookup(c, s).unwrap().to_string(), "b.example.com");
        assert_eq!(r.stats().replaced_different_fqdn, 1);
        assert_eq!(r.stats().replaced_same_fqdn, 0);
    }

    #[test]
    fn repeated_resolution_counts_as_same_fqdn() {
        let mut r = resolver(16);
        let c = ip("10.0.0.1");
        let s = ip("23.9.9.9");
        r.insert(c, &fqdn("x.example.com"), &[s]);
        r.insert(c, &fqdn("x.example.com"), &[s]);
        assert_eq!(r.stats().replaced_same_fqdn, 1);
        assert_eq!(r.stats().confusion_ratio(), 0.0);
    }

    #[test]
    fn fifo_eviction_limits_lifetime() {
        let mut r = resolver(2);
        let c = ip("10.0.0.1");
        r.insert(c, &fqdn("one.example.com"), &[ip("1.1.1.1")]);
        r.insert(c, &fqdn("two.example.com"), &[ip("2.2.2.2")]);
        r.insert(c, &fqdn("three.example.com"), &[ip("3.3.3.3")]);
        // "one" was evicted by the FIFO.
        assert!(r.lookup(c, ip("1.1.1.1")).is_none());
        assert!(r.lookup(c, ip("2.2.2.2")).is_some());
        assert!(r.lookup(c, ip("3.3.3.3")).is_some());
        assert_eq!(r.stats().evictions, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn eviction_cleans_up_empty_clients() {
        let mut r = resolver(1);
        r.insert(ip("10.0.0.1"), &fqdn("a.com"), &[ip("1.1.1.1")]);
        assert_eq!(r.clients_tracked(), 1);
        r.insert(ip("10.0.0.2"), &fqdn("b.com"), &[ip("2.2.2.2")]);
        // Client 1's only entry was evicted; its tables are gone.
        assert_eq!(r.clients_tracked(), 1);
        assert!(r.peek(ip("10.0.0.1"), ip("1.1.1.1")).is_none());
    }

    #[test]
    fn per_client_isolation() {
        let mut r = resolver(16);
        let s = ip("23.0.0.5");
        r.insert(ip("10.0.0.1"), &fqdn("alpha.example.com"), &[s]);
        r.insert(ip("10.0.0.2"), &fqdn("beta.example.com"), &[s]);
        assert_eq!(
            r.peek(ip("10.0.0.1"), s).unwrap().to_string(),
            "alpha.example.com"
        );
        assert_eq!(
            r.peek(ip("10.0.0.2"), s).unwrap().to_string(),
            "beta.example.com"
        );
    }

    #[test]
    fn multilabel_mode_retains_history() {
        let mut r: DnsResolver = DnsResolver::with_config(ResolverConfig {
            clist_size: 16,
            labels_per_server: 3,
        });
        let c = ip("10.0.0.1");
        let s = ip("23.9.9.9");
        for name in ["a.com", "b.com", "c.com", "d.com"] {
            r.insert(c, &fqdn(name), &[s]);
        }
        let all: Vec<String> = r.lookup_all(c, s).iter().map(|f| f.to_string()).collect();
        assert_eq!(all, vec!["d.com", "c.com", "b.com"]);
        // Single-label lookup still returns the newest.
        assert_eq!(r.peek(c, s).unwrap().to_string(), "d.com");
    }

    #[test]
    fn insert_response_wires_through() {
        use dnhunter_dns::{QClass, QType, RData, ResourceRecord};
        let q = DnsMessage::query(1, fqdn("data.flurry.com"), QType::A);
        let resp = DnsMessage::answer_to(
            &q,
            vec![ResourceRecord {
                name: fqdn("data.flurry.com"),
                class: QClass::In,
                ttl: 60,
                rdata: RData::A("216.74.41.8".parse().unwrap()),
            }],
        );
        let mut r = resolver(16);
        r.insert_response(ip("10.0.0.9"), &resp);
        assert_eq!(
            r.peek(ip("10.0.0.9"), ip("216.74.41.8"))
                .unwrap()
                .to_string(),
            "data.flurry.com"
        );
        // Queries are ignored.
        r.insert_response(ip("10.0.0.9"), &q);
        assert_eq!(r.stats().responses, 1);
    }

    #[test]
    fn hashed_backend_behaves_identically() {
        let mut r: DnsResolver<HashedTables> = DnsResolver::with_config(ResolverConfig {
            clist_size: 4,
            labels_per_server: 1,
        });
        let c = ip("10.0.0.1");
        r.insert(c, &fqdn("x.com"), &[ip("9.9.9.9")]);
        assert_eq!(r.lookup(c, ip("9.9.9.9")).unwrap().to_string(), "x.com");
        assert_eq!(r.stats().hit_ratio(), 1.0);
    }

    #[test]
    fn empty_answer_lists_add_nothing() {
        let mut r = resolver(4);
        r.insert(ip("10.0.0.1"), &fqdn("nxdomain.example.com"), &[]);
        assert_eq!(r.stats().responses, 1);
        assert_eq!(r.stats().bindings, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_servers_in_answer() {
        let mut r = resolver(8);
        let c = ip("10.0.0.1");
        let s = ip("5.5.5.5");
        r.insert(c, &fqdn("dup.example.com"), &[s, s]);
        assert_eq!(r.peek(c, s).unwrap().to_string(), "dup.example.com");
        // Second binding for the same pair in the same insert counts as a
        // same-FQDN replacement.
        assert_eq!(r.stats().replaced_same_fqdn, 1);
    }
}
