//! Resolver counters used by the hit-ratio and dimensioning experiments
//! of the paper's §6.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::DnsResolver`] — the raw numbers
/// behind the paper's §6 efficiency and confusion results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverStats {
    /// DNS responses fed to `insert` (one per response message).
    pub responses: u64,
    /// (serverIP → FQDN) bindings created (one per answer address).
    pub bindings: u64,
    /// Bindings that replaced an existing binding with the *same* FQDN.
    pub replaced_same_fqdn: u64,
    /// Bindings that replaced an existing binding with a *different* FQDN —
    /// the raw material of §6's label-confusion analysis.
    pub replaced_different_fqdn: u64,
    /// Clist slots recycled (old entry evicted by the FIFO).
    pub evictions: u64,
    /// `lookup` calls.
    pub lookups: u64,
    /// `lookup` calls that returned an FQDN.
    pub hits: u64,
}

impl ResolverStats {
    /// Hit ratio over all lookups (the paper's §6 resolver efficiency);
    /// 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Misses (lookups − hits) — the paper's §6 unresolved-flow count.
    /// Saturating: a deserialized or hand-built value with `hits >
    /// lookups` is inconsistent but must not panic/wrap.
    pub fn misses(&self) -> u64 {
        self.lookups.saturating_sub(self.hits)
    }

    /// Fraction of bindings that silently changed the label of a
    /// (client, server) pair — the paper's §6 label-confusion measure.
    pub fn confusion_ratio(&self) -> f64 {
        if self.bindings == 0 {
            0.0
        } else {
            self.replaced_different_fqdn as f64 / self.bindings as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = ResolverStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.confusion_ratio(), 0.0);
        s.lookups = 10;
        s.hits = 9;
        s.bindings = 100;
        s.replaced_different_fqdn = 4;
        assert!((s.hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(s.misses(), 1);
        assert!((s.confusion_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn misses_saturates_on_inconsistent_counts() {
        // A hand-built (or corrupted/deserialized) stats value can carry
        // hits > lookups; misses() must clamp to 0, not panic in debug
        // or wrap in release.
        let s = ResolverStats {
            lookups: 3,
            hits: 10,
            ..ResolverStats::default()
        };
        assert_eq!(s.misses(), 0);
        let ok = ResolverStats {
            lookups: 10,
            hits: 3,
            ..ResolverStats::default()
        };
        assert_eq!(ok.misses(), 7);
    }
}
