//! Sharded resolver for larger client populations.
//!
//! Paper §3.1.1: "when the number of monitored clients increase, several
//! load balancing strategies can be used. For example, two resolvers can be
//! maintained for odd and even fourth octet value in the client IP-address."
//! This generalises that idea to `N` shards keyed on the client address, each
//! behind its own lock so shards can be driven from different threads.

use std::net::IpAddr;
use std::sync::Arc;

use dnhunter_dns::DomainName;
use parking_lot::Mutex;

use crate::maps::{OrderedTables, TableFamily};
use crate::resolver::{DnsResolver, ResolverConfig};
use crate::stats::ResolverStats;

/// `N` independent resolvers, selected by client IP.
pub struct ShardedResolver<F: TableFamily = OrderedTables> {
    shards: Vec<Mutex<DnsResolver<F>>>,
}

impl<F: TableFamily> ShardedResolver<F> {
    /// Build `shards` resolvers, each with a Clist of `config.clist_size /
    /// shards` entries (so total memory matches a single resolver of the
    /// same configured size).
    pub fn new(shards: usize, config: ResolverConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        let per_shard = (config.clist_size / shards).max(1);
        let shard_config = ResolverConfig {
            clist_size: per_shard,
            ..config
        };
        ShardedResolver {
            shards: (0..shards)
                .map(|_| Mutex::new(DnsResolver::with_config(shard_config)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index for a client — the paper's odd/even fourth-octet scheme
    /// generalised to modulo-N on the last address byte.
    pub fn shard_of(&self, client: IpAddr) -> usize {
        let last = match client {
            IpAddr::V4(a) => a.octets()[3],
            IpAddr::V6(a) => a.octets()[15],
        };
        usize::from(last) % self.shards.len()
    }

    /// Insert a resolution (see [`DnsResolver::insert`]).
    pub fn insert(&self, client: IpAddr, fqdn: &DomainName, servers: &[IpAddr]) {
        self.shards[self.shard_of(client)]
            .lock()
            .insert(client, fqdn, servers);
    }

    /// Lookup (see [`DnsResolver::lookup`]).
    pub fn lookup(&self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        self.shards[self.shard_of(client)].lock().lookup(client, server)
    }

    /// Aggregate statistics across shards.
    pub fn stats(&self) -> ResolverStats {
        let mut total = ResolverStats::default();
        for s in &self.shards {
            let st = *s.lock().stats();
            total.responses += st.responses;
            total.bindings += st.bindings;
            total.replaced_same_fqdn += st.replaced_same_fqdn;
            total.replaced_different_fqdn += st.replaced_different_fqdn;
            total.evictions += st.evictions;
            total.lookups += st.lookups;
            total.hits += st.hits;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn odd_even_scheme_with_two_shards() {
        let r: ShardedResolver = ShardedResolver::new(2, ResolverConfig::default());
        assert_eq!(r.shard_of(ip("10.0.0.2")), 0);
        assert_eq!(r.shard_of(ip("10.0.0.3")), 1);
        assert_eq!(r.shard_count(), 2);
    }

    #[test]
    fn insert_lookup_roundtrip_across_shards() {
        let r: ShardedResolver = ShardedResolver::new(4, ResolverConfig::default());
        for i in 1..=20u8 {
            let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, i));
            r.insert(c, &name(&format!("host{i}.example.com")), &[ip("23.0.0.1")]);
        }
        for i in 1..=20u8 {
            let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, i));
            assert_eq!(
                r.lookup(c, ip("23.0.0.1")).unwrap().to_string(),
                format!("host{i}.example.com")
            );
        }
        let stats = r.stats();
        assert_eq!(stats.lookups, 20);
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.responses, 20);
    }

    #[test]
    fn shards_split_capacity() {
        let r: ShardedResolver = ShardedResolver::new(
            4,
            ResolverConfig {
                clist_size: 100,
                labels_per_server: 1,
            },
        );
        // Each shard has L=25; this is visible through eviction behaviour.
        let c = ip("10.0.0.4"); // shard 0
        for i in 0..30 {
            r.insert(c, &name(&format!("n{i}.x.com")), &[IpAddr::V4(
                std::net::Ipv4Addr::new(1, 1, (i / 256) as u8, (i % 256) as u8),
            )]);
        }
        assert_eq!(r.stats().evictions, 5);
    }

    #[test]
    fn concurrent_use_from_threads() {
        use std::sync::Arc as StdArc;
        let r: StdArc<ShardedResolver> =
            StdArc::new(ShardedResolver::new(4, ResolverConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let r = StdArc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u8 {
                    let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, t, i));
                    r.insert(c, &"w.example.com".parse().unwrap(), &[ip("9.9.9.9")]);
                    assert!(r.lookup(c, ip("9.9.9.9")).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.stats().hits, 400);
    }
}
