//! Sharded resolver for larger client populations.
//!
//! Paper §3.1.1: "when the number of monitored clients increase, several
//! load balancing strategies can be used. For example, two resolvers can be
//! maintained for odd and even fourth octet value in the client IP-address."
//! This generalises that idea to `N` shards keyed on the client address, each
//! behind its own lock so shards can be driven from different threads.

use std::net::IpAddr;
use std::sync::Arc;

use dnhunter_dns::DomainName;

use crate::maps::{OrderedTables, TableFamily};
use crate::resolver::{DnsResolver, InsertOutcome, ResolverConfig};
use crate::stats::ResolverStats;
use crate::sync::Mutex;

/// Shard index for a client address, over `shards` shards.
///
/// The paper (§3.1.1) suggests splitting "for odd and even fourth octet
/// value in the client IP-address". That scheme balances poorly beyond
/// two shards: monitored populations are assigned addresses from DHCP
/// pools, so low-order octets carry allocation patterns (e.g. /28
/// customer blocks put 14 of 16 hosts on the same few residues). We
/// depart from the paper and mix *all* address bytes through FNV-1a
/// before reducing modulo `N`, which keeps per-shard load within a few
/// percent of uniform for any address-assignment policy while remaining
/// deterministic across runs.
///
/// This is a free function (not just a [`ShardedResolver`] method) because
/// the parallel ingest pipeline must route *frames* with the same key the
/// resolver shards use — the shard-affinity invariant: a client's DNS
/// bindings and the flows they tag always meet on the same shard,
/// preserving Algorithm 1's per-client ordering.
pub fn shard_of(client: IpAddr, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of needs at least one shard");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    match client {
        IpAddr::V4(a) => mix(&a.octets()),
        IpAddr::V6(a) => mix(&a.octets()),
    }
    (hash % shards.max(1) as u64) as usize
}

/// `N` independent §3.1 resolvers, selected by client IP — the paper's
/// §6 path to larger client populations (its odd/even fourth-octet split,
/// generalised to hashing; see [`shard_of`]).
pub struct ShardedResolver<F: TableFamily = OrderedTables> {
    shards: Vec<Mutex<DnsResolver<F>>>,
}

impl<F: TableFamily> ShardedResolver<F> {
    /// Build `shards` resolvers whose Clist capacities sum to
    /// `config.clist_size` (so total memory matches a single resolver of
    /// the same configured size — sharding only partitions the paper's
    /// §4.2 budget `L`). When the size does not divide evenly the
    /// remainder is spread one entry at a time over the first shards; a
    /// configured size below the shard count is rounded up to one entry
    /// per shard, since an empty Clist cannot hold any binding.
    pub fn new(shards: usize, config: ResolverConfig) -> Self {
        assert!(shards > 0, "need at least one shard");
        let base = config.clist_size / shards;
        let remainder = config.clist_size % shards;
        ShardedResolver {
            shards: (0..shards)
                .map(|i| {
                    let per_shard = (base + usize::from(i < remainder)).max(1);
                    Mutex::new(DnsResolver::with_config(ResolverConfig {
                        clist_size: per_shard,
                        ..config
                    }))
                })
                .collect(),
        }
    }

    /// Number of shards (the paper's §6 example uses 2).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total Clist capacity across all shards — `config.clist_size`, or the
    /// shard count if the configured size was smaller (paper §3.1.1 sizes
    /// the Clist as `L`; sharding only partitions that budget).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Shard index for a client (see the free function [`shard_of`] for the
    /// §3.1.1 load-balancing rationale).
    pub fn shard_of(&self, client: IpAddr) -> usize {
        shard_of(client, self.shards.len())
    }

    /// Insert a resolution (see [`DnsResolver::insert`], the paper's §3.1
    /// update step).
    // allow_lint(L1): shard_of returns hash % shards.len(), always in bounds
    pub fn insert(&self, client: IpAddr, fqdn: &DomainName, servers: &[IpAddr]) -> InsertOutcome {
        self.shards[self.shard_of(client)]
            .lock()
            .insert(client, fqdn, servers)
    }

    /// Insert only if the `(client, server)` pair is not yet bound,
    /// returning whether this call inserted. **Deliberately broken**: the
    /// check and the insert take the shard lock twice, so two threads can
    /// both observe "absent" and both insert — a classic check-then-act
    /// race. Compiled only under `--cfg loom`, where `tests/loom_shard.rs`
    /// uses it to prove the model checker catches exactly this locking
    /// mutation (a correct version would hold one guard across both steps).
    #[cfg(loom)]
    pub fn insert_if_absent_racy(
        &self,
        client: IpAddr,
        fqdn: &DomainName,
        servers: &[IpAddr],
    ) -> bool {
        let shard = self.shard_of(client);
        let absent = servers
            .iter()
            .all(|s| self.shards[shard].lock().peek(client, *s).is_none());
        // Guard dropped: another thread may insert here.
        crate::sync::explore_preempt();
        if absent {
            self.shards[shard].lock().insert(client, fqdn, servers);
        }
        absent
    }

    /// Lookup (see [`DnsResolver::lookup`], Algorithm 1 lines 27–34).
    // allow_lint(L1): shard_of returns hash % shards.len(), always in bounds
    pub fn lookup(&self, client: IpAddr, server: IpAddr) -> Option<Arc<DomainName>> {
        self.shards[self.shard_of(client)]
            .lock()
            .lookup(client, server)
    }

    /// Aggregate statistics across shards (sums to the same §6 counters a
    /// single resolver would report).
    pub fn stats(&self) -> ResolverStats {
        let mut total = ResolverStats::default();
        for s in &self.shards {
            let st = *s.lock().stats();
            total.responses += st.responses;
            total.bindings += st.bindings;
            total.replaced_same_fqdn += st.replaced_same_fqdn;
            total.replaced_different_fqdn += st.replaced_different_fqdn;
            total.evictions += st.evictions;
            total.lookups += st.lookups;
            total.hits += st.hits;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn shard_assignment_is_deterministic_and_balanced() {
        let r: ShardedResolver = ShardedResolver::new(4, ResolverConfig::default());
        assert_eq!(r.shard_count(), 4);
        // FNV mixes all bytes: clients differing only in an upper octet
        // still spread, unlike the paper's last-octet scheme.
        let mut counts = [0usize; 4];
        for a in 0..16u8 {
            for d in 0..64u8 {
                let c = IpAddr::V4(std::net::Ipv4Addr::new(10, a, 0, d));
                let s = r.shard_of(c);
                assert_eq!(s, r.shard_of(c), "assignment must be stable");
                counts[s] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 1024);
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                (total / 8..total / 2).contains(&n),
                "shard {i} got {n} of {total} clients"
            );
        }
    }

    #[test]
    fn dhcp_style_blocks_spread_over_all_shards() {
        // A /28 customer block shares the top 28 bits; the paper's odd/even
        // fourth-octet split would alternate them over exactly two residues,
        // and modulo-N over the last octet would use at most 16. FNV must
        // reach every shard.
        let r: ShardedResolver = ShardedResolver::new(8, ResolverConfig::default());
        let mut seen = [false; 8];
        for d in 0..16u8 {
            let c = IpAddr::V4(std::net::Ipv4Addr::new(192, 168, 7, 0x40 + d));
            seen[r.shard_of(c)] = true;
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 5,
            "a /28 should land on most of 8 shards, got {seen:?}"
        );
    }

    #[test]
    fn capacity_remainder_is_distributed() {
        // 103 entries over 4 shards: 26 + 26 + 26 + 25, never 25×4 = 100.
        let cfg = |n| ResolverConfig {
            clist_size: n,
            labels_per_server: 1,
        };
        let r: ShardedResolver = ShardedResolver::new(4, cfg(103));
        assert_eq!(r.capacity(), 103);
        // Even splits are unchanged.
        let r: ShardedResolver = ShardedResolver::new(4, cfg(100));
        assert_eq!(r.capacity(), 100);
        // Degenerate configs round up to one entry per shard.
        let r: ShardedResolver = ShardedResolver::new(4, cfg(2));
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn insert_lookup_roundtrip_across_shards() {
        let r: ShardedResolver = ShardedResolver::new(4, ResolverConfig::default());
        for i in 1..=20u8 {
            let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, i));
            r.insert(c, &name(&format!("host{i}.example.com")), &[ip("23.0.0.1")]);
        }
        for i in 1..=20u8 {
            let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, i));
            assert_eq!(
                r.lookup(c, ip("23.0.0.1")).unwrap().to_string(),
                format!("host{i}.example.com")
            );
        }
        let stats = r.stats();
        assert_eq!(stats.lookups, 20);
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.responses, 20);
    }

    #[test]
    fn shards_split_capacity() {
        let r: ShardedResolver = ShardedResolver::new(
            4,
            ResolverConfig {
                clist_size: 100,
                labels_per_server: 1,
            },
        );
        // Each shard has L=25; this is visible through eviction behaviour
        // (one client always maps to one shard, whichever it is).
        let c = ip("10.0.0.4");
        for i in 0..30 {
            r.insert(
                c,
                &name(&format!("n{i}.x.com")),
                &[IpAddr::V4(std::net::Ipv4Addr::new(
                    1,
                    1,
                    (i / 256) as u8,
                    (i % 256) as u8,
                ))],
            );
        }
        assert_eq!(r.stats().evictions, 5);
    }

    #[test]
    fn concurrent_use_from_threads() {
        use std::sync::Arc as StdArc;
        let r: StdArc<ShardedResolver> =
            StdArc::new(ShardedResolver::new(4, ResolverConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let r = StdArc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u8 {
                    let c = IpAddr::V4(std::net::Ipv4Addr::new(10, 0, t, i));
                    r.insert(c, &"w.example.com".parse().unwrap(), &[ip("9.9.9.9")]);
                    assert!(r.lookup(c, ip("9.9.9.9")).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.stats().hits, 400);
    }
}
