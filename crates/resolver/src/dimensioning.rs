//! Clist dimensioning (paper §6): replay one event stream against several
//! Clist sizes `L` and measure the resolver efficiency each achieves.
//!
//! The paper concludes that, at EU1-ADSL1's peak rate of ~350k responses per
//! 10 minutes, `L ≈ 2.1M` emulates one hour of client caching and resolves
//! ~98% of flows. The same sweep, on synthetic traces, is reproduced by
//! `bench/clist_sizing` using this harness.

use std::net::IpAddr;

use dnhunter_dns::DomainName;

use crate::maps::TableFamily;
use crate::resolver::{DnsResolver, ResolverConfig};

/// One event in a resolver workload (the paper's §6 replay input): a
/// sniffed DNS response or the first packet of a flow (which triggers a
/// lookup).
#[derive(Debug, Clone)]
pub enum ResolverEvent {
    /// DNS response: `client` resolved `fqdn` to `servers`.
    Response {
        client: IpAddr,
        fqdn: DomainName,
        servers: Vec<IpAddr>,
    },
    /// New flow from `client` to `server`.
    FlowStart { client: IpAddr, server: IpAddr },
}

/// Result of replaying a workload at one Clist size — one point of the
/// paper's §6 sizing curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingPoint {
    /// Clist capacity that was tested.
    pub clist_size: usize,
    /// Fraction of flow-start lookups that found a label.
    pub efficiency: f64,
    /// FIFO evictions observed (0 means L was never exceeded).
    pub evictions: u64,
    /// Estimated heap footprint at end of replay, bytes.
    pub memory_bytes: usize,
}

/// Replay `events` against a fresh resolver with Clist size `l` (the
/// paper's §6 methodology).
pub fn replay<F: TableFamily>(events: &[ResolverEvent], l: usize) -> SizingPoint {
    let mut r: DnsResolver<F> = DnsResolver::with_config(ResolverConfig {
        clist_size: l,
        labels_per_server: 1,
    });
    for ev in events {
        match ev {
            ResolverEvent::Response {
                client,
                fqdn,
                servers,
            } => {
                let _ = r.insert(*client, fqdn, servers);
            }
            ResolverEvent::FlowStart { client, server } => {
                let _ = r.lookup(*client, *server);
            }
        }
    }
    SizingPoint {
        clist_size: l,
        efficiency: r.stats().hit_ratio(),
        evictions: r.stats().evictions,
        memory_bytes: r.memory_estimate(),
    }
}

/// Sweep several Clist sizes over the same workload, tracing the paper's
/// §6 efficiency-vs-`L` curve.
pub fn sweep<F: TableFamily>(events: &[ResolverEvent], sizes: &[usize]) -> Vec<SizingPoint> {
    sizes.iter().map(|&l| replay::<F>(events, l)).collect()
}

/// The smallest tested size reaching `target` efficiency, if any — how
/// the paper picks `L ≈ 2.1M` for 98% in §6.
pub fn smallest_sufficient(points: &[SizingPoint], target: f64) -> Option<SizingPoint> {
    points
        .iter()
        .filter(|p| p.efficiency >= target)
        .min_by_key(|p| p.clist_size)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::OrderedTables;

    fn ip(a: u8, b: u8) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::new(10, 0, a, b))
    }

    fn server(i: u16) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::new(23, 0, (i >> 8) as u8, i as u8))
    }

    /// Workload where each response is looked up after `gap` intervening
    /// responses — so efficiency is a step function of L around `gap`.
    fn gapped_workload(n: u16, gap: usize) -> Vec<ResolverEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(ResolverEvent::Response {
                client: ip(0, 1),
                fqdn: format!("host{i}.example.com").parse().unwrap(),
                servers: vec![server(i)],
            });
            if usize::from(i) >= gap {
                let j = i - gap as u16;
                events.push(ResolverEvent::FlowStart {
                    client: ip(0, 1),
                    server: server(j),
                });
            }
        }
        events
    }

    #[test]
    fn efficiency_grows_with_l() {
        let events = gapped_workload(200, 50);
        let points = sweep::<OrderedTables>(&events, &[10, 40, 60, 100]);
        assert!(points[0].efficiency < 0.1);
        assert!(points[1].efficiency < 0.5); // L=40 < gap+1
        assert!(points[2].efficiency > 0.9); // L=60 > gap
        assert!((points[3].efficiency - 1.0).abs() < 1e-9);
        // Monotone non-decreasing.
        for w in points.windows(2) {
            assert!(w[1].efficiency >= w[0].efficiency - 1e-12);
        }
    }

    #[test]
    fn evictions_reported() {
        let events = gapped_workload(100, 10);
        let p = replay::<OrderedTables>(&events, 20);
        assert_eq!(p.evictions, 80);
        let p_big = replay::<OrderedTables>(&events, 1000);
        assert_eq!(p_big.evictions, 0);
        // A bigger Clist costs more memory.
        assert!(p_big.memory_bytes > p.memory_bytes);
    }

    #[test]
    fn smallest_sufficient_selection() {
        let points = vec![
            SizingPoint {
                clist_size: 10,
                efficiency: 0.2,
                evictions: 5,
                memory_bytes: 1_000,
            },
            SizingPoint {
                clist_size: 100,
                efficiency: 0.97,
                evictions: 1,
                memory_bytes: 10_000,
            },
            SizingPoint {
                clist_size: 1000,
                efficiency: 0.99,
                evictions: 0,
                memory_bytes: 100_000,
            },
        ];
        assert_eq!(smallest_sufficient(&points, 0.95).unwrap().clist_size, 100);
        assert!(smallest_sufficient(&points, 0.999).is_none());
    }
}
