//! # dnhunter-resolver
//!
//! The **DNS Resolver** of DN-Hunter (paper §3.1.1, Fig. 2, Algorithm 1):
//! a replica of the monitored clients' DNS caches built by sniffing DNS
//! responses.
//!
//! * FQDN entries live in a FIFO circular list (*Clist*) of size `L`
//!   ([`clist`]), which bounds entry lifetime without garbage collection.
//! * Lookup goes `clientIP → serverIP → FQDN` through two levels of maps
//!   ([`maps`]); the paper uses ordered C++ `map`s and notes hash tables as
//!   an alternative — both are provided and benchmarked.
//! * When a Clist slot is overwritten, its back-references are removed from
//!   the maps (Algorithm 1 lines 23–25).
//! * [`DnsResolver::lookup`] implements lines 27–34: given the
//!   `(clientIP, serverIP)` of a new flow, return the FQDN the client
//!   resolved most recently for that server.
//!
//! Extensions evaluated in the paper's §6 are included: a multi-label mode
//! (return *all* recent FQDNs for a pair, quantifying label confusion) and a
//! [`shard`]ed variant for scaling to larger client populations.

#![forbid(unsafe_code)]

/// Shadow-model self-checking of the §3.1 resolver semantics.
pub mod check;
/// The paper's §3.1 FIFO circular list (*Clist*).
pub mod clist;
/// The paper's §6 Clist-sizing replay harness.
pub mod dimensioning;
/// FQDN interning: the §3.2 real-time allocation diet for Algorithm 1.
pub mod intern;
/// Map implementations backing the §3.1 two-level lookup.
pub mod maps;
/// The single-threaded DNS resolver of the paper's §3.1 / Algorithm 1.
pub mod resolver;
/// Sharded resolver for scaling beyond one core (paper §6 populations).
pub mod shard;
/// Hit/miss/confusion counters for the paper's §6 efficiency numbers.
pub mod stats;
/// Mutex shim switching to loom under `--cfg loom` (checks §3.1 locking).
pub mod sync;

pub use check::{CheckedResolver, ShadowModel};
pub use intern::{InternStats, NameInterner};
pub use maps::{HashedTables, OrderedTables, TableFamily};
pub use resolver::{DnsResolver, InsertOutcome, ResolverConfig};
pub use shard::{shard_of, ShardedResolver};
pub use stats::ResolverStats;
