//! The FIFO circular list (*Clist*) of the paper's §3.1, holding FQDN
//! entries.
//!
//! A fixed-size ring with an insertion pointer: inserting at a full slot
//! evicts the previous occupant (returned to the caller so back-references
//! can be cleaned up). Each slot carries a generation counter so stale
//! references can be detected cheaply in debug builds.

/// A reference to a Clist (§3.1) slot at a particular occupancy
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    pub index: usize,
    pub generation: u64,
}

/// Fixed-capacity FIFO circular list — the paper's §3.1 Clist, sized by
/// the §4.2 dimensioning.
#[derive(Debug, Clone)]
pub struct CircularList<T> {
    slots: Vec<Option<(u64, T)>>,
    next: usize,
    generation: u64,
    occupied: usize,
}

impl<T> CircularList<T> {
    /// A list with capacity `size` (must be non-zero) — the paper's §4.2 `L`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "Clist size must be positive");
        // allow_lint(L8): `size` is the operator-configured cache capacity
        // (the paper's §4.2 `L`), validated above — not a wire-derived length
        let mut slots = Vec::with_capacity(size);
        slots.resize_with(size, || None);
        CircularList {
            slots,
            next: 0,
            generation: 0,
            occupied: 0,
        }
    }

    /// Capacity — the paper's §4.2 `L`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots (never exceeds the §4.2 `L`).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when nothing has been inserted yet (fresh Clist, §3.1).
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Insert at the pointer position, advancing it — the paper's §3.1
    /// FIFO-overwrite policy. Returns the new slot reference and the evicted
    /// value, if the slot was occupied.
    // allow_lint(L1): index < slots.len() — it is the pre-advance pointer, always reduced modulo slots.len()
    pub fn push(&mut self, value: T) -> (SlotRef, Option<T>) {
        let index = self.next;
        self.next = (self.next + 1) % self.slots.len();
        self.generation += 1;
        let evicted = self.slots[index].take().map(|(_, v)| v);
        if evicted.is_none() {
            self.occupied += 1;
        }
        self.slots[index] = Some((self.generation, value));
        (
            SlotRef {
                index,
                generation: self.generation,
            },
            evicted,
        )
    }

    /// Fetch the value at `slot` if it still holds the same generation
    /// (stale references from §3.1 evictions resolve to `None`).
    // allow_lint(L1): SlotRef.index was produced by push() modulo slots.len(), and the list never shrinks
    pub fn get(&self, slot: SlotRef) -> Option<&T> {
        match &self.slots[slot.index] {
            Some((gen, v)) if *gen == slot.generation => Some(v),
            _ => None,
        }
    }

    /// Mutable variant of [`CircularList::get`] (same §3.1 staleness rule).
    // allow_lint(L1): SlotRef.index was produced by push() modulo slots.len(), and the list never shrinks
    pub fn get_mut(&mut self, slot: SlotRef) -> Option<&mut T> {
        match &mut self.slots[slot.index] {
            Some((gen, v)) if *gen == slot.generation => Some(v),
            _ => None,
        }
    }

    /// Remove the value at `slot` if the generation matches (§3.1 eviction
    /// bookkeeping).
    // allow_lint(L1): SlotRef.index was produced by push() modulo slots.len(), and the list never shrinks
    pub fn remove(&mut self, slot: SlotRef) -> Option<T> {
        match &self.slots[slot.index] {
            Some((gen, _)) if *gen == slot.generation => {
                self.occupied -= 1;
                self.slots[slot.index].take().map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Iterate over live values (the paper's §3.1 working set).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_wraparound_evicts_fifo() {
        let mut c = CircularList::new(3);
        let (r1, e1) = c.push("a");
        let (_r2, e2) = c.push("b");
        let (_r3, e3) = c.push("c");
        assert!(e1.is_none() && e2.is_none() && e3.is_none());
        assert_eq!(c.len(), 3);
        // Fourth push evicts the oldest ("a").
        let (r4, e4) = c.push("d");
        assert_eq!(e4, Some("a"));
        assert_eq!(c.len(), 3);
        assert_eq!(r4.index, r1.index);
        // The stale reference no longer resolves.
        assert_eq!(c.get(r1), None);
        assert_eq!(c.get(r4), Some(&"d"));
    }

    #[test]
    fn get_mut_and_remove() {
        let mut c = CircularList::new(2);
        let (r, _) = c.push(10);
        *c.get_mut(r).unwrap() += 5;
        assert_eq!(c.get(r), Some(&15));
        assert_eq!(c.remove(r), Some(15));
        assert_eq!(c.remove(r), None);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn generation_protects_against_aba() {
        let mut c = CircularList::new(1);
        let (r1, _) = c.push("x");
        let (r2, evicted) = c.push("y");
        assert_eq!(evicted, Some("x"));
        assert_eq!(r1.index, r2.index);
        assert_eq!(c.get(r1), None); // old generation
        assert_eq!(c.get(r2), Some(&"y"));
    }

    #[test]
    fn iter_sees_live_values_only() {
        let mut c = CircularList::new(4);
        let (ra, _) = c.push(1);
        c.push(2);
        c.remove(ra);
        let mut vals: Vec<i32> = c.iter().copied().collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = CircularList::<u8>::new(0);
    }
}
