//! FQDN interning — the resolver's hot-path allocation diet.
//!
//! Algorithm 1 (paper §3.1) inserts one Clist entry per sniffed DNS
//! response, and each entry carries the response's FQDN. Popular names
//! (CDN front-ends, trackers, ad servers) recur constantly in real traces,
//! so allocating a fresh `DomainName` (a `Vec` of label `String`s) per
//! response is pure waste under the §3.2 real-time constraint. The
//! interner deduplicates: one shared `Arc<DomainName>` per live name,
//! handed out again for every repeat resolution. Counters record how many
//! allocations were avoided, feeding the ingest benchmark's
//! before/after numbers.

use std::sync::Arc;

use dnhunter_dns::DomainName;

use crate::maps::FnvHashMap;

/// Interning counters: how often the §3.1 insert path reused a live name
/// versus allocating a new one. `reused` is exactly the number of
/// `DomainName` heap allocations the diet avoided.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Names allocated (first sighting, or resighting after pruning).
    pub allocated: u64,
    /// Names served from the intern table (allocation avoided).
    pub reused: u64,
}

/// Deduplication table for the FQDNs stored in Clist entries (paper §3.1).
///
/// Dead names — evicted from every Clist slot, so the table holds the only
/// `Arc` — are pruned lazily when the table doubles past its previous live
/// size, keeping the amortized per-insert cost O(1).
pub struct NameInterner {
    names: FnvHashMap<Arc<DomainName>, ()>,
    /// Prune when `names.len()` reaches this threshold.
    prune_at: usize,
    stats: InternStats,
}

/// Initial (and minimum) prune threshold.
const MIN_PRUNE_AT: usize = 1024;

impl Default for NameInterner {
    /// A fresh, empty intern table (see the type-level §3.1 rationale).
    fn default() -> Self {
        NameInterner {
            names: FnvHashMap::default(),
            prune_at: MIN_PRUNE_AT,
            stats: InternStats::default(),
        }
    }
}

impl NameInterner {
    /// Fresh interner (one per resolver shard, matching the §3.1.1
    /// share-nothing sharding).
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a shared `Arc` for `name`, allocating only on first sighting
    /// — the allocation-diet replacement for the per-response
    /// `Arc::new(fqdn.clone())` in Algorithm 1's insert path.
    pub fn intern(&mut self, name: &DomainName) -> Arc<DomainName> {
        if let Some((existing, ())) = self.names.get_key_value(name) {
            self.stats.reused += 1;
            return Arc::clone(existing);
        }
        self.stats.allocated += 1;
        let arc = Arc::new(name.clone());
        if self.names.len() >= self.prune_at {
            self.prune();
        }
        self.names.insert(Arc::clone(&arc), ());
        arc
    }

    /// Drop names no longer referenced by any Clist entry and re-arm the
    /// threshold (lazy garbage collection mirroring the Clist's own
    /// bounded-lifetime design, paper §3.1.1).
    fn prune(&mut self) {
        self.names.retain(|k, ()| Arc::strong_count(k) > 1);
        self.prune_at = (self.names.len() * 2).max(MIN_PRUNE_AT);
    }

    /// Allocation-avoidance counters (the §3.2 real-time argument,
    /// quantified).
    pub fn stats(&self) -> InternStats {
        self.stats
    }

    /// Distinct names currently in the table (live + not-yet-pruned dead).
    /// Bounded by the §3.1.1 Clist budget plus the lazy-prune slack.
    pub fn resident(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn repeat_interning_reuses_one_arc() {
        let mut i = NameInterner::new();
        let a = i.intern(&name("www.example.com"));
        let b = i.intern(&name("www.example.com"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.stats().allocated, 1);
        assert_eq!(i.stats().reused, 1);
        assert_eq!(i.resident(), 1);
    }

    #[test]
    fn distinct_names_allocate() {
        let mut i = NameInterner::new();
        let a = i.intern(&name("a.example.com"));
        let b = i.intern(&name("b.example.com"));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(i.stats().allocated, 2);
        assert_eq!(i.stats().reused, 0);
    }

    #[test]
    fn pruning_drops_dead_names_and_keeps_live_ones() {
        let mut i = NameInterner::new();
        let live = i.intern(&name("keep.example.com"));
        for k in 0..MIN_PRUNE_AT {
            // Dropped immediately: dead as soon as the loop iterates.
            let _ = i.intern(&name(&format!("n{k}.example.com")));
        }
        // The threshold crossing pruned the dead names; `live` survives.
        assert!(i.resident() < MIN_PRUNE_AT);
        let again = i.intern(&name("keep.example.com"));
        assert!(Arc::ptr_eq(&live, &again));
    }
}
