//! Pluggable map backends for the two-level lookup tables.
//!
//! The paper implements the tables as C++ ordered `map`s, noting
//! ("Unordered maps, i.e., hash tables, can be used as well to further
//! reduce the computational costs") — footnote 2. Both backends are
//! provided; `bench/resolver_maps` quantifies the difference.
//!
//! The hashed backend deliberately avoids the standard library's default
//! SipHash hasher: SipHash buys DoS resistance the per-packet path does not
//! need (keys are IP addresses already constrained by the monitored
//! network), at roughly 2–3× the hashing cost of [`FnvHasher`] on short
//! keys. Lint L2 (`cargo xtask lint`) enforces that per-packet code uses
//! [`FnvHashMap`] / [`TableFamily`] rather than a bare `HashMap`.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash, Hasher};
use std::net::IpAddr;

/// FNV-1a, the classic fast non-cryptographic hash for short keys
/// (paper §3.1.1's per-packet lookup path hashes 4–16 byte IP addresses),
/// finished with one avalanche round so the low bits — the ones `HashMap`
/// turns into bucket indices — are uniformly mixed (see
/// [`Hasher::finish`] below for the measurement that motivated it).
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // FNV-1a's byte loop only propagates entropy upward (each step is
        // xor-into-the-low-byte then multiply), so the *low* bits of the
        // raw state mix poorly across multi-byte keys — and hashbrown
        // derives the bucket index from exactly those low bits. On flow
        // 5-tuples this clusters badly enough to dominate the sniffer's
        // per-packet cost (3.2x end-to-end on the eu1-adsl1 benchmark
        // trace, see BENCH_sniffer.json). One xor-shift-multiply avalanche
        // round (Murmur3's fmix64 first half) restores uniform low bits
        // while keeping the hash deterministic and seed-free.
        let mut x = self.0;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` handing out [`FnvHasher`]s; the third `HashMap` type
/// parameter that satisfies lint L2 (paper footnote 2's hash-table option).
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// A `HashMap` keyed by FNV-1a — the map type per-packet code should reach
/// for instead of the SipHash default (lint L2, paper footnote 2).
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// Minimal map operations the resolver needs (paper Algorithm 1's INSERT
/// and LOOKUP touch the tables only through these).
pub trait MapOps<K, V>: Default {
    fn get(&self, k: &K) -> Option<&V>;
    fn get_mut(&mut self, k: &K) -> Option<&mut V>;
    fn insert(&mut self, k: K, v: V) -> Option<V>;
    fn remove(&mut self, k: &K) -> Option<V>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The entry the key maps to, inserting `V::default()` first if absent.
    /// Lets Algorithm 1's INSERT stay panic-free (lint L1): no
    /// `get_mut(...).expect(...)` after an insert.
    fn get_or_default(&mut self, k: K) -> &mut V
    where
        V: Default;
}

impl<K: Ord, V> MapOps<K, V> for BTreeMap<K, V> {
    fn get(&self, k: &K) -> Option<&V> {
        BTreeMap::get(self, k)
    }
    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        BTreeMap::get_mut(self, k)
    }
    fn insert(&mut self, k: K, v: V) -> Option<V> {
        BTreeMap::insert(self, k, v)
    }
    fn remove(&mut self, k: &K) -> Option<V> {
        BTreeMap::remove(self, k)
    }
    fn len(&self) -> usize {
        BTreeMap::len(self)
    }
    fn get_or_default(&mut self, k: K) -> &mut V
    where
        V: Default,
    {
        self.entry(k).or_default()
    }
}

impl<K: Eq + Hash, V, S: BuildHasher + Default> MapOps<K, V> for HashMap<K, V, S> {
    fn get(&self, k: &K) -> Option<&V> {
        HashMap::get(self, k)
    }
    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        HashMap::get_mut(self, k)
    }
    fn insert(&mut self, k: K, v: V) -> Option<V> {
        HashMap::insert(self, k, v)
    }
    fn remove(&mut self, k: &K) -> Option<V> {
        HashMap::remove(self, k)
    }
    fn len(&self) -> usize {
        HashMap::len(self)
    }
    fn get_or_default(&mut self, k: K) -> &mut V
    where
        V: Default,
    {
        self.entry(k).or_default()
    }
}

/// Chooses the concrete map types for both levels of the paper's
/// clientIP → serverIP → FQDN lookup structure (Fig. 2).
pub trait TableFamily {
    /// clientIP → server table.
    type Client<V>: MapOps<IpAddr, V>;
    /// serverIP → entry references.
    type Server<V>: MapOps<IpAddr, V>;

    /// Human-readable backend name (for benches/reports).
    const NAME: &'static str;
}

/// Ordered maps — the paper's primary implementation
/// (O(log N_C) + O(log N_S(c)) lookups).
#[derive(Debug, Default, Clone, Copy)]
pub struct OrderedTables;

impl TableFamily for OrderedTables {
    type Client<V> = BTreeMap<IpAddr, V>;
    type Server<V> = BTreeMap<IpAddr, V>;
    const NAME: &'static str = "ordered (BTreeMap)";
}

/// Hash maps — the paper's footnote-2 alternative, FNV-keyed (see module
/// doc).
#[derive(Debug, Default, Clone, Copy)]
pub struct HashedTables;

impl TableFamily for HashedTables {
    type Client<V> = FnvHashMap<IpAddr, V>;
    type Server<V> = FnvHashMap<IpAddr, V>;
    const NAME: &'static str = "hashed (FNV HashMap)";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: MapOps<IpAddr, u32>>() {
        let mut m = M::default();
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        assert!(m.is_empty());
        assert_eq!(m.insert(a, 1), None);
        assert_eq!(m.insert(a, 2), Some(1));
        m.insert(b, 3);
        assert_eq!(m.len(), 2);
        *m.get_mut(&a).unwrap() += 10;
        assert_eq!(m.get(&a), Some(&12));
        assert_eq!(m.remove(&b), Some(3));
        assert_eq!(m.remove(&b), None);
        assert_eq!(m.len(), 1);
        assert_eq!(*m.get_or_default(b), 0);
        *m.get_or_default(b) += 5;
        assert_eq!(m.get(&b), Some(&5));
    }

    #[test]
    fn btreemap_backend() {
        exercise::<BTreeMap<IpAddr, u32>>();
    }

    #[test]
    fn hashmap_backend() {
        exercise::<FnvHashMap<IpAddr, u32>>();
    }

    /// `finish()` = avalanche(raw FNV-1a state): check the raw accumulator
    /// against the classic FNV-1a reference vectors, through the finalizer.
    fn fmix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a reference: empty input → offset basis; "a" → 0xaf63dc4c8601ec8c.
        let mut h = FnvHasher::default();
        assert_eq!(h.finish(), fmix(FNV_OFFSET));
        h.write(b"a");
        assert_eq!(h.finish(), fmix(0xaf63_dc4c_8601_ec8c));
        let mut h2 = FnvHasher::default();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), fmix(0x8594_4171_f739_67e8));
    }

    #[test]
    fn finish_low_bits_avalanche() {
        // The reason for the finalizer: raw FNV-1a low bits barely move
        // between near-identical short keys (hashbrown's bucket index comes
        // from the low bits), while finished values must differ there.
        let mut a = FnvHasher::default();
        a.write(&[1, 0, 0, 0]);
        let mut b = FnvHasher::default();
        b.write(&[2, 0, 0, 0]);
        let low_a = a.finish() & 0xffff;
        let low_b = b.finish() & 0xffff;
        assert_ne!(low_a, low_b);
    }

    #[test]
    fn family_names() {
        assert!(OrderedTables::NAME.contains("ordered"));
        assert!(HashedTables::NAME.contains("FNV"));
    }
}
