//! Pluggable map backends for the two-level lookup tables.
//!
//! The paper implements the tables as C++ ordered `map`s, noting
//! ("Unordered maps, i.e., hash tables, can be used as well to further
//! reduce the computational costs") — footnote 2. Both backends are
//! provided; `bench/resolver_maps` quantifies the difference.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::net::IpAddr;

/// Minimal map operations the resolver needs.
pub trait MapOps<K, V>: Default {
    fn get(&self, k: &K) -> Option<&V>;
    fn get_mut(&mut self, k: &K) -> Option<&mut V>;
    fn insert(&mut self, k: K, v: V) -> Option<V>;
    fn remove(&mut self, k: &K) -> Option<V>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord, V> MapOps<K, V> for BTreeMap<K, V> {
    fn get(&self, k: &K) -> Option<&V> {
        BTreeMap::get(self, k)
    }
    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        BTreeMap::get_mut(self, k)
    }
    fn insert(&mut self, k: K, v: V) -> Option<V> {
        BTreeMap::insert(self, k, v)
    }
    fn remove(&mut self, k: &K) -> Option<V> {
        BTreeMap::remove(self, k)
    }
    fn len(&self) -> usize {
        BTreeMap::len(self)
    }
}

impl<K: Eq + Hash, V> MapOps<K, V> for HashMap<K, V> {
    fn get(&self, k: &K) -> Option<&V> {
        HashMap::get(self, k)
    }
    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        HashMap::get_mut(self, k)
    }
    fn insert(&mut self, k: K, v: V) -> Option<V> {
        HashMap::insert(self, k, v)
    }
    fn remove(&mut self, k: &K) -> Option<V> {
        HashMap::remove(self, k)
    }
    fn len(&self) -> usize {
        HashMap::len(self)
    }
}

/// Chooses the concrete map types for both levels.
pub trait TableFamily {
    /// clientIP → server table.
    type Client<V>: MapOps<IpAddr, V>;
    /// serverIP → entry references.
    type Server<V>: MapOps<IpAddr, V>;

    /// Human-readable backend name (for benches/reports).
    const NAME: &'static str;
}

/// Ordered maps — the paper's primary implementation
/// (O(log N_C) + O(log N_S(c)) lookups).
#[derive(Debug, Default, Clone, Copy)]
pub struct OrderedTables;

impl TableFamily for OrderedTables {
    type Client<V> = BTreeMap<IpAddr, V>;
    type Server<V> = BTreeMap<IpAddr, V>;
    const NAME: &'static str = "ordered (BTreeMap)";
}

/// Hash maps — the footnote-2 alternative.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashedTables;

impl TableFamily for HashedTables {
    type Client<V> = HashMap<IpAddr, V>;
    type Server<V> = HashMap<IpAddr, V>;
    const NAME: &'static str = "hashed (HashMap)";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: MapOps<IpAddr, u32>>() {
        let mut m = M::default();
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        assert!(m.is_empty());
        assert_eq!(m.insert(a, 1), None);
        assert_eq!(m.insert(a, 2), Some(1));
        m.insert(b, 3);
        assert_eq!(m.len(), 2);
        *m.get_mut(&a).unwrap() += 10;
        assert_eq!(m.get(&a), Some(&12));
        assert_eq!(m.remove(&b), Some(3));
        assert_eq!(m.remove(&b), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn btreemap_backend() {
        exercise::<BTreeMap<IpAddr, u32>>();
    }

    #[test]
    fn hashmap_backend() {
        exercise::<HashMap<IpAddr, u32>>();
    }

    #[test]
    fn family_names() {
        assert!(OrderedTables::NAME.contains("ordered"));
        assert!(HashedTables::NAME.contains("hashed"));
    }
}
