//! # dnhunter-simnet
//!
//! A deterministic, seeded simulator of the traffic visible at an ISP
//! Point-of-Presence: DNS queries/responses between clients and the local
//! resolver, plus the TCP/UDP data flows those resolutions precede. It
//! substitutes for the five proprietary packet traces of the paper
//! (Tab. 1: US-3G, EU2-ADSL, EU1-ADSL1, EU1-ADSL2, EU1-FTTH) and for the
//! 18-day live deployment, while exercising the *identical* code paths a
//! real capture would: every event is emitted as a checksummed Ethernet
//! frame that the DN-Hunter sniffer parses byte by byte.
//!
//! The model includes the mechanisms behind every phenomenon the paper
//! measures:
//!
//! * client-side DNS caching with TTLs (first-flow and cache-lifetime
//!   delays, Figs. 12–13),
//! * browser prefetching that resolves names never used ("useless" DNS,
//!   Tab. 9),
//! * CDN server pools with diurnal expansion and answer-list rotation
//!   (Figs. 3–5),
//! * multi-CDN hosting with per-geography weights (Figs. 7–9, Tab. 5),
//! * encrypted services with SNI/certificate behaviour matching Tab. 4,
//! * P2P traffic that bypasses DNS except for tracker announces (Tab. 2),
//! * client mobility and HTTP tunnelling on the 3G profile (its lower hit
//!   ratio), and
//! * an `appspot.com` model with BitTorrent trackers for the live-trace
//!   case study (Tab. 8, Figs. 10–11).

#![forbid(unsafe_code)]

pub mod address;
pub mod appspot;
pub mod catalog;
pub mod client;
pub mod config;
pub mod diurnal;
pub mod dnsmodel;
pub mod fault;
/// NetFlow/IPFIX-style view of a generated trace: the deterministic
/// flow-export emitter behind `gen-trace --flowrec-out`.
pub mod flowexport;
pub mod flowgen;
pub mod generator;
pub mod profiles;

pub use address::{AddressAllocator, PtrZone};
pub use catalog::{Catalog, Domain, Hosting, NamePattern, PayloadStyle, PoolSchedule, Service};
pub use config::{AccessTech, Geography, TraceProfile};
pub use fault::{FaultPlan, FaultStats};
pub use generator::{Trace, TraceGenerator};
pub use profiles::{all_paper_profiles, live_profile, profile_by_name};
