//! `gen-trace` — generate a synthetic ISP trace as a standard pcap file.
//!
//! ```text
//! gen-trace --profile eu1-ftth --scale 0.1 -o trace.pcap
//! gen-trace --list
//! ```
//!
//! The output is a classic libpcap capture (Ethernet, µs timestamps) that
//! any pcap tool — including `dn-hunter` — can read.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use dnhunter_net::FlowRecWriter;
use dnhunter_simnet::{flowexport, profiles, TraceGenerator};

fn usage() -> &'static str {
    "usage: gen-trace --profile NAME [--scale F] [--seed N] [-o FILE] [--flowrec-out FILE] [--list]\n\
     profiles: US-3G, EU2-ADSL, EU1-ADSL1, EU1-ADSL2, EU1-FTTH, live\n\
     --flowrec-out also writes the flow-export (DNFR) view of the same trace"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_name = String::from("EU1-FTTH");
    let mut scale = 0.1f64;
    let mut seed: Option<u64> = None;
    let mut out = String::from("trace.pcap");
    let mut flowrec_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for p in profiles::all_paper_profiles() {
                    println!(
                        "{:<10} {:>4}h {:>4} clients  {:?} {:?}",
                        p.name, p.duration_hours, p.clients, p.tech, p.geography
                    );
                }
                println!(
                    "{:<10} {:>4}h {:>4} clients  (adds appspot.com model)",
                    "live",
                    profiles::live_profile().duration_hours,
                    profiles::live_profile().clients
                );
                return ExitCode::SUCCESS;
            }
            "--profile" => {
                i += 1;
                match args.get(i) {
                    Some(p) => profile_name = p.clone(),
                    None => {
                        eprintln!("{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scale" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(f) if f > 0.0 => scale = f,
                    _ => {
                        eprintln!("--scale needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => seed = Some(s),
                    None => {
                        eprintln!("--seed needs an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-o" | "--out" => {
                i += 1;
                match args.get(i) {
                    Some(o) => out = o.clone(),
                    None => {
                        eprintln!("{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--flowrec-out" => {
                i += 1;
                match args.get(i) {
                    Some(o) => flowrec_out = Some(o.clone()),
                    None => {
                        eprintln!("{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let Some(mut profile) = profiles::profile_by_name(&profile_name) else {
        eprintln!("unknown profile '{profile_name}' (try --list)");
        return ExitCode::FAILURE;
    };
    profile = profile.scaled(scale);
    if let Some(s) = seed {
        profile.seed = s;
    }
    let live = profile_name.eq_ignore_ascii_case("live")
        || profile_name.eq_ignore_ascii_case("eu1-adsl2-live");
    let trace_seed = profile.seed;

    eprintln!(
        "generating {} at scale {scale} ({} clients, {}h)…",
        profile.name, profile.clients, profile.duration_hours
    );
    let trace = TraceGenerator::new(profile, live).generate();
    eprintln!(
        "  {} frames, {} flows, {} DNS queries, {} page views",
        trace.records.len(),
        trace.stats.flows,
        trace.stats.dns_queries,
        trace.stats.page_views
    );

    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let export_seed = trace_seed;
    match trace.write_pcap(BufWriter::new(file)) {
        Ok(_) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("write failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = flowrec_out {
        let stream = flowexport::export_stream(&trace.records, export_seed, 53);
        let file = match File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut writer = match FlowRecWriter::new(BufWriter::new(file)) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("flowrec write failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for rec in &stream {
            if let Err(e) = writer.write_record(rec) {
                eprintln!("flowrec write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = writer.into_inner() {
            eprintln!("flowrec write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} ({} export records)", stream.len());
    }
    ExitCode::SUCCESS
}
