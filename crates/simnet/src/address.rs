//! Server address allocation inside the organization plan, plus the PTR
//! (reverse) zone that the reverse-lookup baseline queries.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use dnhunter_dns::DomainName;
use dnhunter_orgdb::{org_plan, Prefix};

/// How an organization names its servers in the reverse zone — this is what
/// produces the four outcome classes of the paper's Tab. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrStyle {
    /// No PTR record at all ("No-answer", 29% in the paper).
    None,
    /// CDN-internal machine names, unrelated to the content served
    /// ("Totally different"): e.g. `a23-15-9-9.deploy.akamaitechnologies.com`.
    CdnInternal(&'static str),
    /// `hostN.<org-domain>` — matches the content's second-level domain when
    /// the org self-hosts ("Same 2nd-level domain").
    HostName(&'static str),
}

/// Reverse-zone naming policy per organization.
fn ptr_style(org: &str) -> PtrStyle {
    match org {
        "akamai" => PtrStyle::CdnInternal("deploy.akamaitechnologies.com"),
        "google" => PtrStyle::CdnInternal("1e100.net"),
        "edgecast" => PtrStyle::CdnInternal("edgecastcdn.net"),
        "level 3" => PtrStyle::CdnInternal("deploy.l3cdn.net"),
        "leaseweb" => PtrStyle::CdnInternal("leaseweb.net"),
        "cotendo" => PtrStyle::CdnInternal("cotcdn.net"),
        "cdnetworks" => PtrStyle::CdnInternal("cdngc.net"),
        "limelight" => PtrStyle::CdnInternal("llnw.net"),
        "dedibox" => PtrStyle::CdnInternal("poneytelecom.eu"),
        "meta" => PtrStyle::CdnInternal("mtsvc.net"),
        "ntt" => PtrStyle::CdnInternal("ntt.net"),
        "facebook" => PtrStyle::HostName("facebook.com"),
        "linkedin" => PtrStyle::HostName("linkedin.com"),
        "dailymotion" => PtrStyle::HostName("dailymotion.com"),
        "apple" => PtrStyle::HostName("apple.com"),
        "yahoo" => PtrStyle::HostName("yahoo.com"),
        "wikipedia" => PtrStyle::HostName("wikipedia.org"),
        "flurry" => PtrStyle::HostName("flurry.com"),
        "mailprovider" => PtrStyle::HostName("mailprovider.it"),
        "lindenlab" => PtrStyle::HostName("agni.lindenlab.com"),
        "aol" => PtrStyle::HostName("aol.com"),
        "opera" => PtrStyle::HostName("opera-mini.net"),
        // amazon, microsoft, twitter, zynga, smallhosts (org level — pinned
        // sites add their own records), p2p space, ISP: no reverse zone.
        _ => PtrStyle::None,
    }
}

/// The synthetic reverse zone: IP → PTR name.
#[derive(Debug, Default, Clone)]
pub struct PtrZone {
    records: HashMap<IpAddr, DomainName>,
}

impl PtrZone {
    /// Reverse lookup.
    pub fn lookup(&self, ip: IpAddr) -> Option<&DomainName> {
        self.records.get(&ip)
    }

    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn register(&mut self, ip: Ipv4Addr, name: DomainName) {
        self.records.entry(IpAddr::V4(ip)).or_insert(name);
    }
}

/// Deterministic allocator of server addresses within each organization's
/// announced prefixes.
///
/// Every (org, pool-key) pair gets a contiguous block of host numbers;
/// *shared* pools reuse pool-key 0 so that different FQDNs land on the same
/// servers — that is what makes one `serverIP` serve many FQDNs (Fig. 3
/// bottom).
#[derive(Debug)]
pub struct AddressAllocator {
    prefixes: HashMap<String, Vec<Prefix>>,
    blocks: HashMap<(String, u64), u32>,
    next_host: HashMap<String, u32>,
    ptr: PtrZone,
}

/// Pool-key reserved for an org's shared server estate.
pub const SHARED_POOL: u64 = 0;

impl AddressAllocator {
    /// Allocator over the builtin organization plan.
    pub fn new() -> Self {
        let mut prefixes: HashMap<String, Vec<Prefix>> = HashMap::new();
        for (name, _, plist) in org_plan() {
            let parsed = plist
                .iter()
                .map(|p| p.parse().expect("builtin prefix"))
                .collect();
            prefixes.insert(name.to_string(), parsed);
        }
        AddressAllocator {
            prefixes,
            blocks: HashMap::new(),
            next_host: HashMap::new(),
            ptr: PtrZone::default(),
        }
    }

    /// The `index`-th server of `org`'s pool `pool_key`. Allocates the
    /// block (of `block_size` hosts) on first use and registers PTR records
    /// according to the org's reverse-zone policy.
    pub fn server_ip(&mut self, org: &str, pool_key: u64, block_size: u32, index: u32) -> Ipv4Addr {
        let key = (org.to_string(), pool_key);
        let base = if let Some(&b) = self.blocks.get(&key) {
            b
        } else {
            let next = self.next_host.entry(org.to_string()).or_insert(1);
            let base = *next;
            *next += block_size.max(1);
            self.blocks.insert(key, base);
            base
        };
        let host = base + (index % block_size.max(1));
        let ip = self.host_ip(org, host);
        self.register_ptr(org, ip, host);
        ip
    }

    /// Map an org-local host number to a concrete address, spreading across
    /// the org's prefixes.
    fn host_ip(&self, org: &str, host: u32) -> Ipv4Addr {
        let prefixes = self
            .prefixes
            .get(org)
            .unwrap_or_else(|| panic!("unknown organization '{org}'"));
        let which = (host as usize) % prefixes.len();
        prefixes[which]
            .v4_host(host / prefixes.len() as u32 + 1)
            .expect("org prefixes are IPv4")
    }

    fn register_ptr(&mut self, org: &str, ip: Ipv4Addr, host: u32) {
        match ptr_style(org) {
            PtrStyle::None => {}
            PtrStyle::CdnInternal(zone) => {
                let o = ip.octets();
                let name: DomainName = format!("a{}-{}-{}-{}.{zone}", o[0], o[1], o[2], o[3])
                    .parse()
                    .expect("generated PTR name is valid");
                self.ptr.register(ip, name);
            }
            PtrStyle::HostName(domain) => {
                let name: DomainName = format!("host{host}.{domain}")
                    .parse()
                    .expect("generated PTR name is valid");
                self.ptr.register(ip, name);
            }
        }
    }

    /// Register an exact-FQDN PTR (used for the front servers of
    /// self-hosting orgs, producing Tab. 3's "Same FQDN" class).
    pub fn register_exact_ptr(&mut self, ip: Ipv4Addr, fqdn: &DomainName) {
        self.ptr.records.insert(IpAddr::V4(ip), fqdn.clone());
    }

    /// The reverse zone accumulated so far.
    pub fn ptr_zone(&self) -> &PtrZone {
        &self.ptr
    }

    /// Consume the allocator, returning the reverse zone.
    pub fn into_ptr_zone(self) -> PtrZone {
        self.ptr
    }
}

impl Default for AddressAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_orgdb::builtin_registry;

    #[test]
    fn allocation_is_deterministic_and_in_prefix() {
        let mut a = AddressAllocator::new();
        let db = builtin_registry();
        let ip1 = a.server_ip("akamai", 7, 10, 0);
        let ip2 = a.server_ip("akamai", 7, 10, 0);
        assert_eq!(ip1, ip2);
        assert_eq!(db.org_name(IpAddr::V4(ip1)), "akamai");
    }

    #[test]
    fn distinct_pools_get_distinct_blocks() {
        let mut a = AddressAllocator::new();
        let p1 = a.server_ip("amazon", 1, 100, 0);
        let p2 = a.server_ip("amazon", 2, 100, 0);
        assert_ne!(p1, p2);
    }

    #[test]
    fn shared_pool_reuses_addresses_across_callers() {
        let mut a = AddressAllocator::new();
        let x = a.server_ip("akamai", SHARED_POOL, 50, 3);
        let y = a.server_ip("akamai", SHARED_POOL, 50, 3);
        assert_eq!(x, y);
    }

    #[test]
    fn index_wraps_within_block() {
        let mut a = AddressAllocator::new();
        let x = a.server_ip("google", 9, 4, 1);
        let y = a.server_ip("google", 9, 4, 5);
        assert_eq!(x, y);
    }

    #[test]
    fn ptr_styles_produce_expected_names() {
        let mut a = AddressAllocator::new();
        let ak = a.server_ip("akamai", 1, 5, 0);
        let li = a.server_ip("linkedin", 1, 5, 0);
        let zy = a.server_ip("zynga", 1, 5, 0);
        let zone = a.ptr_zone();
        assert!(zone
            .lookup(IpAddr::V4(ak))
            .unwrap()
            .to_string()
            .ends_with("deploy.akamaitechnologies.com"));
        assert!(zone
            .lookup(IpAddr::V4(li))
            .unwrap()
            .to_string()
            .ends_with("linkedin.com"));
        assert!(zone.lookup(IpAddr::V4(zy)).is_none()); // zynga: no reverse zone
    }

    #[test]
    fn exact_ptr_registration_overrides() {
        let mut a = AddressAllocator::new();
        let ip = a.server_ip("linkedin", 2, 3, 0);
        let fqdn: DomainName = "www.linkedin.com".parse().unwrap();
        a.register_exact_ptr(ip, &fqdn);
        assert_eq!(a.ptr_zone().lookup(IpAddr::V4(ip)), Some(&fqdn));
    }

    #[test]
    #[should_panic(expected = "unknown organization")]
    fn unknown_org_panics() {
        let mut a = AddressAllocator::new();
        let _ = a.server_ip("nonexistent", 0, 1, 0);
    }
}
