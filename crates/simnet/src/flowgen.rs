//! Packet-level synthesis of one flow.
//!
//! Every flow becomes a realistic TCP exchange: handshake, payload by
//! protocol personality, bulk transfer, orderly close — all as checksummed
//! Ethernet frames the sniffer has to parse like real traffic.

use std::net::{Ipv4Addr, Ipv6Addr};

use dnhunter_flow::{bittorrent, http, tls};
use dnhunter_net::{build_tcp_v4, build_tcp_v6, MacAddr, TcpFlags};

use crate::catalog::{CertPolicy, PayloadStyle};

/// Maximum transport payload per synthetic bulk packet. Larger than an MTU
/// — the capture sees what a segmentation-offload NIC would deliver, which
/// keeps packet counts manageable without distorting byte accounting.
const BULK_SEGMENT: usize = 15_000;

/// Specification of one flow to synthesize.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    pub client: Ipv4Addr,
    pub server: Ipv4Addr,
    pub client_mac: MacAddr,
    pub server_mac: MacAddr,
    pub sport: u16,
    pub dport: u16,
    /// First-packet timestamp (µs, trace-relative).
    pub start: u64,
    /// Round-trip time (µs).
    pub rtt: u64,
    pub style: PayloadStyle,
    /// The FQDN the client believes it is contacting (Host header / SNI).
    pub fqdn: String,
    /// Its second-level domain (wildcard certificates).
    pub sld: String,
    pub cert: CertPolicy,
    /// TLS session resumption: server sends no certificate.
    pub resume: bool,
    /// Whether the ClientHello carries SNI.
    pub sni: bool,
    /// Certificate CN when `cert == CdnName` (e.g. `a248.e.akamai.net`).
    pub cdn_cert_name: Option<String>,
    /// Application bytes client→server / server→client.
    pub req_bytes: u32,
    pub resp_bytes: u32,
    /// Seed for deterministic filler bytes.
    pub seed: u64,
}

/// One synthesized frame with its timestamp.
pub type TimedFrame = (u64, Vec<u8>);

/// Internal helper carrying sequence state.
struct TcpStream<'a> {
    spec: &'a FlowSpec,
    frames: Vec<TimedFrame>,
    seq_c: u32,
    seq_s: u32,
    t: u64,
}

impl<'a> TcpStream<'a> {
    fn new(spec: &'a FlowSpec) -> Self {
        TcpStream {
            seq_c: (spec.seed as u32) | 1,
            seq_s: (spec.seed >> 32) as u32 | 1,
            t: spec.start,
            spec,
            frames: Vec::with_capacity(12),
        }
    }

    fn push(&mut self, from_client: bool, flags: TcpFlags, payload: &[u8]) {
        let s = self.spec;
        let (src, dst, sm, dm, sp, dp, seq, ack) = if from_client {
            (
                s.client,
                s.server,
                s.client_mac,
                s.server_mac,
                s.sport,
                s.dport,
                self.seq_c,
                self.seq_s,
            )
        } else {
            (
                s.server,
                s.client,
                s.server_mac,
                s.client_mac,
                s.dport,
                s.sport,
                self.seq_s,
                self.seq_c,
            )
        };
        let frame = build_tcp_v4(sm, dm, src, dst, sp, dp, seq, ack, flags, payload)
            .expect("synthesized frame is valid");
        self.frames.push((self.t, frame));
        let advance = payload.len() as u32 + u32::from(flags.syn()) + u32::from(flags.fin());
        if from_client {
            self.seq_c = self.seq_c.wrapping_add(advance);
        } else {
            self.seq_s = self.seq_s.wrapping_add(advance);
        }
    }

    fn wait(&mut self, micros: u64) {
        self.t += micros;
    }
}

/// Deterministic filler bytes.
fn filler(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut s = seed | 1;
    for b in out.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (s >> 33) as u8;
    }
    out
}

/// Synthesize one complete client-initiated TCP flow.
pub fn synthesize(spec: &FlowSpec) -> Vec<TimedFrame> {
    let mut s = TcpStream::new(spec);
    let rtt = spec.rtt.max(2_000);
    let half = rtt / 2;

    // Three-way handshake.
    s.push(true, TcpFlags::SYN, &[]);
    s.wait(rtt);
    s.push(false, TcpFlags::SYN | TcpFlags::ACK, &[]);
    s.wait(half);
    s.push(true, TcpFlags::ACK, &[]);
    s.wait(1_000);

    // Application conversation.
    let (c2s_first, s2c_first) = app_payloads(spec);
    match spec.style {
        PayloadStyle::Smtp | PayloadStyle::Pop3 | PayloadStyle::Imap => {
            // Server banner goes first for mail protocols.
            s.push(false, TcpFlags::PSH | TcpFlags::ACK, &s2c_first);
            s.wait(half);
            s.push(true, TcpFlags::PSH | TcpFlags::ACK, &c2s_first);
            s.wait(rtt);
        }
        _ => {
            s.push(true, TcpFlags::PSH | TcpFlags::ACK, &c2s_first);
            s.wait(rtt);
            if !s2c_first.is_empty() {
                s.push(false, TcpFlags::PSH | TcpFlags::ACK, &s2c_first);
                s.wait(half);
            }
        }
    }

    // Remaining request upload (client→server bulk, e.g. POST bodies or
    // tracker keep-alives).
    let mut remaining_up = spec.req_bytes as usize;
    remaining_up = remaining_up.saturating_sub(c2s_first.len());
    let mut chunk_seed = spec.seed ^ 0x5151;
    while remaining_up > 0 {
        let n = remaining_up.min(BULK_SEGMENT);
        let body = filler(n, chunk_seed);
        chunk_seed = chunk_seed.wrapping_add(1);
        s.push(true, TcpFlags::ACK, &body);
        s.wait(half / 2 + 500);
        remaining_up -= n;
    }

    // Response download (server→client bulk).
    let mut remaining_down = spec.resp_bytes as usize;
    remaining_down = remaining_down.saturating_sub(s2c_first.len());
    while remaining_down > 0 {
        let n = remaining_down.min(BULK_SEGMENT);
        let body = filler(n, chunk_seed);
        chunk_seed = chunk_seed.wrapping_add(1);
        s.push(false, TcpFlags::ACK, &body);
        s.wait(half / 2 + 500);
        remaining_down -= n;
    }

    // Orderly close.
    s.push(true, TcpFlags::FIN | TcpFlags::ACK, &[]);
    s.wait(half);
    s.push(false, TcpFlags::FIN | TcpFlags::ACK, &[]);
    s.wait(half);
    s.push(true, TcpFlags::ACK, &[]);

    s.frames
}

/// First application payloads per protocol personality.
fn app_payloads(spec: &FlowSpec) -> (Vec<u8>, Vec<u8>) {
    match spec.style {
        PayloadStyle::Http => {
            let req = http::build_request(
                "GET",
                &format!("/content/{}", spec.seed % 997),
                &spec.fqdn,
                "Mozilla/5.0 (sim)",
            );
            let resp = http::build_response(200, spec.resp_bytes as usize);
            (req, resp)
        }
        PayloadStyle::Tls => {
            let ch =
                tls::build_client_hello(if spec.sni { Some(&spec.fqdn) } else { None }, spec.seed);
            let cn;
            let flight = if spec.resume {
                tls::build_server_flight(None, spec.seed ^ 0xbeef)
            } else {
                let name: &str = match spec.cert {
                    CertPolicy::Exact => &spec.fqdn,
                    CertPolicy::Wildcard => {
                        cn = format!("*.{}", spec.sld);
                        &cn
                    }
                    CertPolicy::CdnName => spec
                        .cdn_cert_name
                        .as_deref()
                        .unwrap_or("edge.generic-cdn.net"),
                };
                tls::build_server_flight(Some(name), spec.seed ^ 0xbeef)
            };
            (ch, flight)
        }
        PayloadStyle::Smtp => (
            b"EHLO client.local\r\n".to_vec(),
            format!("220 {} ESMTP Postfix\r\n", spec.fqdn).into_bytes(),
        ),
        PayloadStyle::Pop3 => (
            b"USER subscriber\r\n".to_vec(),
            format!("+OK {} POP3 server ready\r\n", spec.fqdn).into_bytes(),
        ),
        PayloadStyle::Imap => (
            b"a001 LOGIN subscriber secret\r\n".to_vec(),
            format!("* OK {} IMAP4rev1 ready\r\n", spec.fqdn).into_bytes(),
        ),
        PayloadStyle::Rtsp => (
            format!(
                "DESCRIBE rtsp://{}/live RTSP/1.0\r\nCSeq: 1\r\n\r\n",
                spec.fqdn
            )
            .into_bytes(),
            b"RTSP/1.0 200 OK\r\nCSeq: 1\r\n\r\n".to_vec(),
        ),
        PayloadStyle::Msn => (
            b"VER 1 MSNP15 MSNP14 CVR0\r\n".to_vec(),
            b"VER 1 MSNP15\r\n".to_vec(),
        ),
        PayloadStyle::Xmpp => (
            format!("<stream:stream to='{}' xmlns='jabber:client'>", spec.sld).into_bytes(),
            b"<?xml version='1.0'?><stream:stream>".to_vec(),
        ),
        PayloadStyle::TrackerHttp => {
            let hash = format!("{:040x}", (spec.seed as u128) * 0x9e3779b97f4a7c15);
            let req = bittorrent::build_tracker_announce(&spec.fqdn, &hash[..40], 6881);
            let resp = http::build_response(200, 128);
            (req, resp)
        }
        PayloadStyle::BinaryTcp => (
            filler(48, spec.seed ^ 0xaaaa),
            filler(64, spec.seed ^ 0xbbbb),
        ),
    }
}

/// Synthesize a compact IPv6 flow (dual-stack clients). Handshake, one
/// request, response bulk, close — same shape as the v4 path, over v6.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_v6(
    client: Ipv6Addr,
    server: Ipv6Addr,
    client_mac: MacAddr,
    server_mac: MacAddr,
    sport: u16,
    dport: u16,
    start: u64,
    rtt: u64,
    style: PayloadStyle,
    fqdn: &str,
    resp_bytes: u32,
    seed: u64,
) -> Vec<TimedFrame> {
    let rtt = rtt.max(2_000);
    let half = rtt / 2;
    let mut frames: Vec<TimedFrame> = Vec::with_capacity(10);
    let mut seq_c: u32 = (seed as u32) | 1;
    let mut seq_s: u32 = (seed >> 32) as u32 | 1;
    let mut t = start;
    let push = |frames: &mut Vec<TimedFrame>,
                t: u64,
                from_client: bool,
                seq_c: &mut u32,
                seq_s: &mut u32,
                flags: TcpFlags,
                payload: &[u8]| {
        let frame = if from_client {
            build_tcp_v6(
                client_mac, server_mac, client, server, sport, dport, *seq_c, *seq_s, flags,
                payload,
            )
        } else {
            build_tcp_v6(
                server_mac, client_mac, server, client, dport, sport, *seq_s, *seq_c, flags,
                payload,
            )
        }
        .expect("v6 frame builds");
        frames.push((t, frame));
        let advance = payload.len() as u32 + u32::from(flags.syn()) + u32::from(flags.fin());
        if from_client {
            *seq_c = seq_c.wrapping_add(advance);
        } else {
            *seq_s = seq_s.wrapping_add(advance);
        }
    };
    push(
        &mut frames,
        t,
        true,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::SYN,
        &[],
    );
    t += rtt;
    push(
        &mut frames,
        t,
        false,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::SYN | TcpFlags::ACK,
        &[],
    );
    t += half;
    push(
        &mut frames,
        t,
        true,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::ACK,
        &[],
    );
    t += 1_000;
    let (req, resp_head) = match style {
        PayloadStyle::Tls => (
            tls::build_client_hello(Some(fqdn), seed),
            tls::build_server_flight(Some(fqdn), seed ^ 0x66),
        ),
        _ => (
            http::build_request("GET", "/v6", fqdn, "Mozilla/5.0 (sim)"),
            http::build_response(200, resp_bytes as usize),
        ),
    };
    push(
        &mut frames,
        t,
        true,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::PSH | TcpFlags::ACK,
        &req,
    );
    t += rtt;
    push(
        &mut frames,
        t,
        false,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::PSH | TcpFlags::ACK,
        &resp_head,
    );
    t += half;
    let mut remaining = (resp_bytes as usize).saturating_sub(resp_head.len());
    let mut chunk_seed = seed ^ 0x7777;
    while remaining > 0 {
        let n = remaining.min(BULK_SEGMENT);
        let body = filler(n, chunk_seed);
        chunk_seed = chunk_seed.wrapping_add(1);
        push(
            &mut frames,
            t,
            false,
            &mut seq_c,
            &mut seq_s,
            TcpFlags::ACK,
            &body,
        );
        t += half / 2 + 500;
        remaining -= n;
    }
    push(
        &mut frames,
        t,
        true,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::FIN | TcpFlags::ACK,
        &[],
    );
    t += half;
    push(
        &mut frames,
        t,
        false,
        &mut seq_c,
        &mut seq_s,
        TcpFlags::FIN | TcpFlags::ACK,
        &[],
    );
    frames
}

/// Synthesize a BitTorrent peer-wire flow (no DNS ever precedes these).
#[allow(clippy::too_many_arguments)]
pub fn synthesize_peer_flow(
    client: Ipv4Addr,
    peer: Ipv4Addr,
    client_mac: MacAddr,
    peer_mac: MacAddr,
    sport: u16,
    start: u64,
    rtt: u64,
    bytes: u32,
    seed: u64,
) -> Vec<TimedFrame> {
    let mut info_hash = [0u8; 20];
    let mut peer_id = [0u8; 20];
    for (i, b) in info_hash.iter_mut().enumerate() {
        *b = ((seed >> (i % 8)) & 0xff) as u8;
    }
    for (i, b) in peer_id.iter_mut().enumerate() {
        *b = ((seed >> ((i + 3) % 8)) & 0x7f) as u8;
    }
    let spec = FlowSpec {
        client,
        server: peer,
        client_mac,
        server_mac: peer_mac,
        sport,
        dport: 6881 + (seed % 4) as u16,
        start,
        rtt,
        style: PayloadStyle::BinaryTcp,
        fqdn: String::new(),
        sld: String::new(),
        cert: CertPolicy::Exact,
        resume: false,
        sni: false,
        cdn_cert_name: None,
        req_bytes: bytes / 3,
        resp_bytes: bytes,
        seed,
    };
    let mut s = TcpStream::new(&spec);
    let half = rtt / 2;
    s.push(true, TcpFlags::SYN, &[]);
    s.wait(rtt);
    s.push(false, TcpFlags::SYN | TcpFlags::ACK, &[]);
    s.wait(half);
    s.push(true, TcpFlags::ACK, &[]);
    s.wait(1_000);
    s.push(
        true,
        TcpFlags::PSH | TcpFlags::ACK,
        &bittorrent::build_peer_handshake(info_hash, peer_id),
    );
    s.wait(rtt);
    s.push(
        false,
        TcpFlags::PSH | TcpFlags::ACK,
        &bittorrent::build_peer_handshake(info_hash, peer_id),
    );
    s.wait(half);
    let mut remaining = bytes as usize;
    let mut chunk_seed = seed;
    while remaining > 0 {
        let n = remaining.min(BULK_SEGMENT);
        s.push(false, TcpFlags::ACK, &filler(n, chunk_seed));
        chunk_seed = chunk_seed.wrapping_add(1);
        s.wait(half / 2 + 500);
        remaining -= n;
    }
    s.push(true, TcpFlags::FIN | TcpFlags::ACK, &[]);
    s.wait(half);
    s.push(false, TcpFlags::FIN | TcpFlags::ACK, &[]);
    s.frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_flow::{AppProtocol, FlowEvent, FlowTable, FlowTableConfig};
    use dnhunter_net::Packet;

    fn base_spec(style: PayloadStyle) -> FlowSpec {
        FlowSpec {
            client: Ipv4Addr::new(10, 0, 0, 1),
            server: Ipv4Addr::new(93, 184, 216, 34),
            client_mac: MacAddr::from_id(1),
            server_mac: MacAddr::from_id(2),
            sport: 51000,
            dport: 443,
            start: 1_000_000,
            rtt: 40_000,
            style,
            fqdn: "www.example.com".into(),
            sld: "example.com".into(),
            cert: CertPolicy::Exact,
            resume: false,
            sni: true,
            cdn_cert_name: None,
            req_bytes: 500,
            resp_bytes: 40_000,
            seed: 42,
        }
    }

    /// Run synthesized frames through the real flow table + DPI.
    fn classify(frames: &[TimedFrame]) -> (AppProtocol, u64, u64) {
        let mut table = FlowTable::new(FlowTableConfig::default());
        for (ts, frame) in frames {
            let pkt = Packet::parse(frame).expect("synthesized frames parse");
            table.process(*ts, &pkt, frame.len());
        }
        let finished = table.flush();
        assert_eq!(finished.len(), 1);
        match &finished[0] {
            FlowEvent::FlowFinished(r) => (r.protocol_now(), r.bytes_c2s, r.bytes_s2c),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frames_are_ordered_and_parse() {
        let frames = synthesize(&base_spec(PayloadStyle::Http));
        assert!(frames.len() >= 8);
        for w in frames.windows(2) {
            assert!(w[0].0 <= w[1].0, "timestamps must be non-decreasing");
        }
    }

    #[test]
    fn http_flow_classifies_as_http() {
        let (proto, c2s, s2c) = classify(&synthesize(&base_spec(PayloadStyle::Http)));
        assert_eq!(proto, AppProtocol::Http);
        assert!(s2c > c2s, "response should dominate: {c2s} vs {s2c}");
        assert!(s2c > 40_000_u64);
    }

    #[test]
    fn tls_flow_classifies_with_sni_and_cert() {
        let spec = base_spec(PayloadStyle::Tls);
        let frames = synthesize(&spec);
        let mut table = FlowTable::new(FlowTableConfig::default());
        for (ts, frame) in &frames {
            let pkt = Packet::parse(frame).unwrap();
            table.process(*ts, &pkt, frame.len());
        }
        let finished = table.flush();
        match &finished[0] {
            FlowEvent::FlowFinished(r) => {
                assert_eq!(r.protocol_now(), AppProtocol::Tls);
                let info = r.tls_info();
                assert_eq!(info.sni.as_deref(), Some("www.example.com"));
                assert_eq!(info.certificate_cn.as_deref(), Some("www.example.com"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resumed_tls_has_no_certificate() {
        let mut spec = base_spec(PayloadStyle::Tls);
        spec.resume = true;
        let frames = synthesize(&spec);
        let mut table = FlowTable::new(FlowTableConfig::default());
        for (ts, frame) in &frames {
            let pkt = Packet::parse(frame).unwrap();
            table.process(*ts, &pkt, frame.len());
        }
        match &table.flush()[0] {
            FlowEvent::FlowFinished(r) => {
                let info = r.tls_info();
                assert!(!info.certificate_seen);
                assert_eq!(info.sni.as_deref(), Some("www.example.com"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_cdn_certs() {
        let mut spec = base_spec(PayloadStyle::Tls);
        spec.cert = CertPolicy::Wildcard;
        let frames = synthesize(&spec);
        let all: Vec<u8> = frames.iter().flat_map(|(_, f)| f.clone()).collect();
        // The wildcard CN appears in the raw bytes of the certificate.
        let needle = b"*.example.com";
        assert!(all.windows(needle.len()).any(|w| w == needle));

        spec.cert = CertPolicy::CdnName;
        spec.cdn_cert_name = Some("a248.e.akamai.net".into());
        let frames = synthesize(&spec);
        let all: Vec<u8> = frames.iter().flat_map(|(_, f)| f.clone()).collect();
        let needle = b"a248.e.akamai.net";
        assert!(all.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn mail_personalities_classify_as_mail() {
        for style in [PayloadStyle::Smtp, PayloadStyle::Pop3, PayloadStyle::Imap] {
            let mut spec = base_spec(style);
            spec.dport = match style {
                PayloadStyle::Smtp => 25,
                PayloadStyle::Pop3 => 110,
                _ => 143,
            };
            spec.resp_bytes = 500;
            let (proto, _, _) = classify(&synthesize(&spec));
            assert_eq!(proto, AppProtocol::Mail, "{style:?}");
        }
    }

    #[test]
    fn tracker_flow_classifies_as_p2p() {
        let mut spec = base_spec(PayloadStyle::TrackerHttp);
        spec.dport = 6969;
        spec.resp_bytes = 200;
        let (proto, _, _) = classify(&synthesize(&spec));
        assert_eq!(proto, AppProtocol::P2p);
    }

    #[test]
    fn peer_flow_classifies_as_p2p() {
        let frames = synthesize_peer_flow(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(171, 44, 5, 6),
            MacAddr::from_id(1),
            MacAddr::from_id(9),
            40123,
            5_000_000,
            120_000,
            30_000,
            77,
        );
        let (proto, _, s2c) = classify(&frames);
        assert_eq!(proto, AppProtocol::P2p);
        assert!(s2c > 30_000);
    }

    #[test]
    fn determinism() {
        let a = synthesize(&base_spec(PayloadStyle::Http));
        let b = synthesize(&base_spec(PayloadStyle::Http));
        assert_eq!(a, b);
    }
}
