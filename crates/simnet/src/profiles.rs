//! The five paper traces (Tab. 1) plus the 18-day live deployment, scaled
//! to laptop-size populations.
//!
//! Paper trace sizes (4M–38M TCP flows) are scaled down ~300×; the *ratios*
//! between traces, the durations, start hours, access technologies and
//! behavioural mixes are preserved. Scale any profile back up with
//! [`TraceProfile::scaled`].

use crate::config::{AccessTech, Geography, TraceProfile};

/// 2011-04-12 00:00:00 UTC, µs — an arbitrary 2011 anchor.
const EPOCH_2011: u64 = 1_302_566_400_000_000;

fn base(name: &str, seed: u64) -> TraceProfile {
    TraceProfile {
        name: name.to_string(),
        seed,
        tech: AccessTech::Adsl,
        geography: Geography::Eu,
        start_epoch_micros: EPOCH_2011,
        start_hour: 8.0,
        duration_hours: 24.0,
        clients: 100,
        views_per_client_hour: 6.0,
        embedded_per_view: 3.0,
        prefetch_per_view: 2.0,
        p2p_client_fraction: 0.05,
        peers_per_announce: 40.0,
        announce_interval_hours: 0.5,
        tunnel_client_fraction: 0.0,
        mobility_client_fraction: 0.0,
        prewarm_prob: 0.32,
        invisible_resolution_prob: 0.06,
        ipv6_client_fraction: 0.0,
        mix_epoch_hours: 0.0,
        warmup_micros: 5 * 60 * 1_000_000,
    }
}

/// US-3G: 3 h mobile trace, 15:30 GMT start. Mobility and HTTP tunnelling
/// depress the hit ratio (Tab. 2: 75%), prefetching is lighter (Tab. 9:
/// 30% useless), delays are the largest (Fig. 12).
pub fn us_3g() -> TraceProfile {
    TraceProfile {
        tech: AccessTech::Mobile3g,
        geography: Geography::Us,
        start_hour: 15.5,
        duration_hours: 3.0,
        clients: 150,
        views_per_client_hour: 9.0,
        embedded_per_view: 2.2,
        prefetch_per_view: 1.2,
        p2p_client_fraction: 0.06,
        peers_per_announce: 10.0,
        tunnel_client_fraction: 0.06,
        mobility_client_fraction: 0.30,
        prewarm_prob: 0.38,
        invisible_resolution_prob: 0.10,
        ..base("US-3G", 0x3001)
    }
}

/// EU2-ADSL: 6 h European ADSL trace, 14:50 GMT (the paper's most
/// DNS-efficient trace: 96–97% hit ratio).
pub fn eu2_adsl() -> TraceProfile {
    TraceProfile {
        start_hour: 14.8,
        duration_hours: 6.0,
        clients: 260,
        views_per_client_hour: 8.0,
        prefetch_per_view: 4.0,
        prewarm_prob: 0.20,
        invisible_resolution_prob: 0.015,
        ..base("EU2-ADSL", 0x2001)
    }
}

/// EU1-ADSL1: the 24 h flagship trace (largest flow count; drives Fig. 14
/// and the Clist dimensioning of §6).
pub fn eu1_adsl1() -> TraceProfile {
    TraceProfile {
        start_hour: 8.0,
        duration_hours: 24.0,
        clients: 240,
        views_per_client_hour: 7.0,
        prefetch_per_view: 3.8,
        prewarm_prob: 0.30,
        invisible_resolution_prob: 0.075,
        ..base("EU1-ADSL1", 0x1101)
    }
}

/// EU1-ADSL2: 5 h trace, 8:40 GMT (Figs. 4–5 time series, Tabs. 3–4).
pub fn eu1_adsl2() -> TraceProfile {
    TraceProfile {
        start_hour: 8.67,
        duration_hours: 5.0,
        clients: 150,
        views_per_client_hour: 7.0,
        prefetch_per_view: 3.8,
        prewarm_prob: 0.33,
        invisible_resolution_prob: 0.10,
        ..base("EU1-ADSL2", 0x1201)
    }
}

/// EU1-FTTH: 3 h fibre trace, 17:00 GMT — smallest trace, fastest access
/// (Fig. 12's leftmost CDF), source of the well-known-port tags (Tab. 6).
pub fn eu1_ftth() -> TraceProfile {
    TraceProfile {
        tech: AccessTech::Ftth,
        start_hour: 17.0,
        duration_hours: 3.0,
        clients: 90,
        views_per_client_hour: 8.0,
        prefetch_per_view: 4.0,
        prewarm_prob: 0.40,
        invisible_resolution_prob: 0.095,
        ipv6_client_fraction: 0.15,
        ..base("EU1-FTTH", 0x1301)
    }
}

/// The 18-day live deployment at EU1-ADSL2 (Figs. 6, 10, 11; Tab. 8).
/// Lower per-hour rates keep the packet count tractable; the long horizon
/// is what matters for the birth processes.
pub fn live_profile() -> TraceProfile {
    TraceProfile {
        start_hour: 0.0,
        duration_hours: 18.0 * 24.0,
        clients: 60,
        views_per_client_hour: 1.6,
        embedded_per_view: 2.0,
        prefetch_per_view: 1.4,
        p2p_client_fraction: 0.25,
        peers_per_announce: 5.0,
        announce_interval_hours: 0.6,
        prewarm_prob: 0.25,
        invisible_resolution_prob: 0.06,
        ..base("EU1-ADSL2-live", 0x1202)
    }
}

/// Long-horizon trace whose content mix rotates every two hours: the
/// windowed-analytics stressor. Per-window top organizations/domains
/// provably differ from the since-start aggregate, which is what the
/// sliding-window equivalence suite needs a positive control for. Not a
/// paper trace, so not in [`all_paper_profiles`].
pub fn shifting_mix() -> TraceProfile {
    TraceProfile {
        start_hour: 9.0,
        duration_hours: 8.0,
        clients: 80,
        views_per_client_hour: 7.0,
        prefetch_per_view: 2.5,
        prewarm_prob: 0.25,
        invisible_resolution_prob: 0.05,
        mix_epoch_hours: 2.0,
        ..base("SHIFTING-MIX", 0x5001)
    }
}

/// The five Tab. 1 traces, in the paper's order.
pub fn all_paper_profiles() -> Vec<TraceProfile> {
    vec![us_3g(), eu2_adsl(), eu1_adsl1(), eu1_adsl2(), eu1_ftth()]
}

/// Look a profile up by its table name (case-insensitive); also accepts
/// `live` / `EU1-ADSL2-live`.
pub fn profile_by_name(name: &str) -> Option<TraceProfile> {
    let n = name.to_ascii_lowercase();
    match n.as_str() {
        "us-3g" => Some(us_3g()),
        "eu2-adsl" => Some(eu2_adsl()),
        "eu1-adsl1" => Some(eu1_adsl1()),
        "eu1-adsl2" => Some(eu1_adsl2()),
        "eu1-ftth" => Some(eu1_ftth()),
        "live" | "eu1-adsl2-live" => Some(live_profile()),
        "shifting-mix" => Some(shifting_mix()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_profiles_match_table_1_structure() {
        let all = all_paper_profiles();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["US-3G", "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH"]
        );
        // Durations from Tab. 1.
        let hours: Vec<f64> = all.iter().map(|p| p.duration_hours).collect();
        assert_eq!(hours, vec![3.0, 6.0, 24.0, 5.0, 3.0]);
        // EU1-ADSL1 is the biggest trace.
        let adsl1 = &all[2];
        for p in &all {
            assert!(
                adsl1.clients as f64 * adsl1.duration_hours
                    >= p.clients as f64 * p.duration_hours * 0.99
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("eu1-ftth").is_some());
        assert!(profile_by_name("EU1-FTTH").is_some());
        assert!(profile_by_name("live").is_some());
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn only_the_mobile_trace_has_mobility_and_tunnels() {
        for p in all_paper_profiles() {
            if p.name == "US-3G" {
                assert!(p.mobility_client_fraction > 0.0);
                assert!(p.tunnel_client_fraction > 0.0);
                assert!(p.prefetch_per_view < 2.0);
            } else {
                assert_eq!(p.mobility_client_fraction, 0.0);
                assert_eq!(p.tunnel_client_fraction, 0.0);
                assert!(p.prefetch_per_view >= 1.5);
            }
        }
    }

    #[test]
    fn live_profile_is_18_days() {
        let p = live_profile();
        assert_eq!(p.duration_hours, 432.0);
    }
}
