//! The `appspot.com` case-study model (paper §5.6): BitTorrent trackers
//! hiding among Google-hosted web apps, with the activity patterns of
//! Fig. 11 — a third permanently active, a synchronized on/off cluster,
//! and stragglers that appear over time (some ending as zombies).

use rand::Rng;

use crate::catalog::{Catalog, PayloadStyle, ServiceId};

/// Activity pattern of one tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackerPattern {
    /// Active for the whole observation window (ids 1–15 in Fig. 11).
    AlwaysOn,
    /// Synchronized on/off cluster (ids 26–31): all members share phase.
    SynchronizedBursts,
    /// Appears at `birth_day`, may die (zombie) at `death_day`.
    Transient,
}

/// One concrete tracker (a service instance under appspot.com).
#[derive(Debug, Clone)]
pub struct TrackerInstance {
    /// Display id, 1-based, ordered by first appearance (Fig. 11 y-axis).
    pub id: u32,
    pub service: ServiceId,
    pub instance: u32,
    pub pattern: TrackerPattern,
    /// First day (fractional) the tracker is active.
    pub birth_day: f64,
    /// Day after which a transient tracker goes silent; `None` = still up.
    pub death_day: Option<f64>,
}

impl TrackerInstance {
    /// Is this tracker accepting announces at trace day `day`?
    pub fn active_at(&self, day: f64) -> bool {
        match self.pattern {
            TrackerPattern::AlwaysOn => true,
            TrackerPattern::SynchronizedBursts => {
                if day < self.birth_day {
                    return false;
                }
                // 16 h on / 20 h off, common phase for the whole cluster.
                let phase = (day * 24.0).rem_euclid(36.0);
                phase < 16.0
            }
            TrackerPattern::Transient => {
                day >= self.birth_day && self.death_day.is_none_or(|d| day < d)
            }
        }
    }
}

/// Enumerate the tracker instances in the catalog's appspot domain and
/// assign them Fig. 11-style lifecycles. Deterministic given `rng`.
pub fn tracker_schedules<R: Rng>(catalog: &Catalog, rng: &mut R) -> Vec<TrackerInstance> {
    let mut raw: Vec<(ServiceId, u32)> = Vec::new();
    for id in catalog.service_ids() {
        let dom = catalog.domain(id);
        let svc = catalog.service(id);
        if dom.sld == "appspot.com" && svc.style == PayloadStyle::TrackerHttp {
            for i in 0..svc.instances {
                raw.push((id, i));
            }
        }
    }
    let n = raw.len();
    let mut out = Vec::with_capacity(n);
    for (k, (service, instance)) in raw.into_iter().enumerate() {
        let frac = k as f64 / n.max(1) as f64;
        let (pattern, birth_day, death_day) = if frac < 0.33 {
            (TrackerPattern::AlwaysOn, 0.0, None)
        } else if frac < 0.47 {
            // The synchronized cluster appears a few days in.
            (TrackerPattern::SynchronizedBursts, 3.0, None)
        } else {
            let birth = rng.gen_range(0.0..14.0);
            let death = if rng.gen::<f64>() < 0.5 {
                Some(birth + rng.gen_range(1.0..6.0))
            } else {
                None
            };
            (TrackerPattern::Transient, birth, death)
        };
        out.push(TrackerInstance {
            id: 0, // assigned after sorting by first appearance
            service,
            instance,
            pattern,
            birth_day,
            death_day,
        });
    }
    out.sort_by(|a, b| a.birth_day.partial_cmp(&b.birth_day).expect("no NaN days"));
    for (i, t) in out.iter_mut().enumerate() {
        t.id = i as u32 + 1;
    }
    out
}

/// Trackers active at `day` (for announce target selection).
pub fn active_trackers(schedules: &[TrackerInstance], day: f64) -> Vec<&TrackerInstance> {
    schedules.iter().filter(|t| t.active_at(day)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::paper_catalog;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn schedules() -> Vec<TrackerInstance> {
        let c = paper_catalog(true);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        tracker_schedules(&c, &mut rng)
    }

    #[test]
    fn roughly_45_trackers_exist() {
        let s = schedules();
        assert!(
            (40..=50).contains(&s.len()),
            "expected ~45 trackers, got {}",
            s.len()
        );
    }

    #[test]
    fn a_third_are_always_on() {
        let s = schedules();
        let always = s
            .iter()
            .filter(|t| t.pattern == TrackerPattern::AlwaysOn)
            .count();
        let frac = always as f64 / s.len() as f64;
        assert!((0.25..=0.40).contains(&frac), "always-on fraction {frac}");
        for t in s.iter().filter(|t| t.pattern == TrackerPattern::AlwaysOn) {
            for d in 0..18 {
                assert!(t.active_at(d as f64 + 0.5));
            }
        }
    }

    #[test]
    fn synchronized_cluster_shares_phase() {
        let s = schedules();
        let cluster: Vec<_> = s
            .iter()
            .filter(|t| t.pattern == TrackerPattern::SynchronizedBursts)
            .collect();
        assert!(cluster.len() >= 4);
        for day10 in 31..170 {
            let day = day10 as f64 / 10.0;
            let states: Vec<bool> = cluster.iter().map(|t| t.active_at(day)).collect();
            assert!(
                states.iter().all(|&x| x == states[0]),
                "cluster out of sync at day {day}"
            );
        }
    }

    #[test]
    fn transients_are_born_and_may_die() {
        let s = schedules();
        let transients: Vec<_> = s
            .iter()
            .filter(|t| t.pattern == TrackerPattern::Transient)
            .collect();
        assert!(!transients.is_empty());
        for t in &transients {
            assert!(!t.active_at(t.birth_day - 0.1));
            assert!(t.active_at(t.birth_day + 0.1));
            if let Some(d) = t.death_day {
                assert!(!t.active_at(d + 0.1));
            }
        }
        // Some die, some survive (zombies exist as FQDNs but that's the
        // analytics' business).
        assert!(transients.iter().any(|t| t.death_day.is_some()));
        assert!(transients.iter().any(|t| t.death_day.is_none()));
    }

    #[test]
    fn ids_are_ordered_by_first_appearance() {
        let s = schedules();
        for w in s.windows(2) {
            assert!(w[0].birth_day <= w[1].birth_day);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn active_set_changes_over_time() {
        let s = schedules();
        let early = active_trackers(&s, 0.5).len();
        let late = active_trackers(&s, 10.5).len();
        assert!(early > 0);
        assert_ne!(early, late);
    }
}
