//! Deterministic flow-export emitter: the NetFlow/IPFIX-style view of a
//! generated trace.
//!
//! A flow probe at the same vantage point as the packet sniffer sees the
//! same traffic but ships a different stream: mirrored DNS payloads the
//! moment they pass, and one pre-aggregated summary per flow when the
//! probe's flush cycle exports it — *after* the flow's last packet, with
//! seeded jitter standing in for the flush period. The transform is a pure
//! function of the generated pcap records plus the seed, so the same
//! profile/seed pair always yields byte-identical export streams (the
//! property the flow-record daemon's tests lean on).
//!
//! Export order is deliberately **not** event order: DNS mirrors lead
//! their flows (as in the real regime), but two flows export in flush
//! order, not start order — the reorder buffer in
//! `dnhunter::run_flowrec_daemon` is what puts events back on the clock.

use std::collections::HashMap;
use std::net::IpAddr;

use dnhunter_flow::CanonFlowKey;
use dnhunter_net::seg::{parse_flat, FlatParse};
use dnhunter_net::{DnsExportRecord, ExportRecord, FlowExportRecord, IpProtocol, PcapRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Export jitter on a mirrored DNS payload (µs): the probe forwards DNS
/// nearly immediately.
const DNS_EXPORT_JITTER_MICROS: u64 = 50_000;
/// Export jitter past a flow's last packet (µs): the probe's flush cycle.
const FLOW_EXPORT_JITTER_MICROS: u64 = 2_000_000;

/// One flow's accumulating summary.
struct FlowAgg {
    first_ts: u64,
    last_ts: u64,
    client: IpAddr,
    client_port: u16,
    server: IpAddr,
    server_port: u16,
    ip_proto: u8,
    packets_c2s: u64,
    packets_s2c: u64,
    bytes_c2s: u64,
    bytes_s2c: u64,
}

/// Transform generated pcap records into the export stream a flow probe
/// would ship: DNS responses (UDP from the DNS port) as mirrored payloads,
/// every other UDP/TCP segment folded into per-flow summaries keyed by the
/// canonical 5-tuple with the first sender as the client — the same
/// orientation rule the flow table applies to an unseen 5-tuple.
pub fn export_stream(records: &[PcapRecord], seed: u64, dns_port: u16) -> Vec<ExportRecord> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0066_6c6f_7772_6563);
    // (export_ts, tie-break, record): sorted at the end into probe order.
    let mut out: Vec<(u64, u64, ExportRecord)> = Vec::new();
    let mut flows: HashMap<CanonFlowKey, usize> = HashMap::new();
    let mut aggs: Vec<FlowAgg> = Vec::new();
    for rec in records {
        let ts = rec.timestamp_micros();
        let Ok(FlatParse::Seg(seg)) = parse_flat(&rec.frame) else {
            continue;
        };
        if seg.src_port == dns_port {
            // Mirror UDP DNS responses only: real probes rarely reassemble
            // the TCP fallback, and the daemon's skew metrics should see
            // the same gap.
            if seg.proto == IpProtocol::Udp && !seg.payload.is_empty() {
                let export_ts = ts + rng.gen_range(0..DNS_EXPORT_JITTER_MICROS);
                out.push((
                    export_ts,
                    ts,
                    ExportRecord::Dns(DnsExportRecord {
                        ts_micros: ts,
                        client: seg.dst,
                        message: seg.payload.to_vec(),
                    }),
                ));
            }
            continue;
        }
        if seg.dst_port == dns_port {
            continue; // queries are not exported
        }
        let key = CanonFlowKey::of(seg.src, seg.src_port, seg.dst, seg.dst_port, seg.proto);
        let idx = *flows.entry(key).or_insert_with(|| {
            aggs.push(FlowAgg {
                first_ts: ts,
                last_ts: ts,
                client: seg.src,
                client_port: seg.src_port,
                server: seg.dst,
                server_port: seg.dst_port,
                ip_proto: seg.proto.number(),
                packets_c2s: 0,
                packets_s2c: 0,
                bytes_c2s: 0,
                bytes_s2c: 0,
            });
            aggs.len() - 1
        });
        let agg = &mut aggs[idx];
        agg.last_ts = agg.last_ts.max(ts);
        let from_client = seg.src == agg.client && seg.src_port == agg.client_port;
        if from_client {
            agg.packets_c2s += 1;
            agg.bytes_c2s += seg.wire_bytes as u64;
        } else {
            agg.packets_s2c += 1;
            agg.bytes_s2c += seg.wire_bytes as u64;
        }
    }
    // Jitter draws happen in first-seen flow order: deterministic for a
    // fixed record stream and seed.
    for agg in aggs {
        let export_ts = agg.last_ts + rng.gen_range(0..FLOW_EXPORT_JITTER_MICROS);
        out.push((
            export_ts,
            agg.first_ts,
            ExportRecord::Flow(FlowExportRecord {
                first_ts: agg.first_ts,
                last_ts: agg.last_ts,
                client: agg.client,
                client_port: agg.client_port,
                server: agg.server,
                server_port: agg.server_port,
                ip_proto: agg.ip_proto,
                packets_c2s: agg.packets_c2s,
                packets_s2c: agg.packets_s2c,
                bytes_c2s: agg.bytes_c2s,
                bytes_s2c: agg.bytes_s2c,
            }),
        ));
    }
    out.sort_by_key(|&(export_ts, tie, _)| (export_ts, tie));
    out.into_iter().map(|(_, _, rec)| rec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, TraceGenerator};
    use dnhunter_net::flowrec::encode_stream;

    fn tiny_trace() -> Vec<PcapRecord> {
        let mut profile = profiles::profile_by_name("EU1-FTTH").unwrap().scaled(0.02);
        profile.seed = 42;
        TraceGenerator::new(profile, false).generate().records
    }

    #[test]
    fn export_stream_is_deterministic_and_nonempty() {
        let records = tiny_trace();
        let a = export_stream(&records, 7, 53);
        let b = export_stream(&records, 7, 53);
        assert!(!a.is_empty());
        assert_eq!(encode_stream(&a), encode_stream(&b));
        let dns = a
            .iter()
            .filter(|r| matches!(r, ExportRecord::Dns(_)))
            .count();
        let flows = a.len() - dns;
        assert!(dns > 0, "no DNS mirrors in export stream");
        assert!(flows > 0, "no flow summaries in export stream");
    }

    #[test]
    fn export_order_is_monotone_in_export_time_not_event_time() {
        let records = tiny_trace();
        let stream = export_stream(&records, 7, 53);
        // Event times must arrive out of order somewhere (flows export at
        // flush time), or the reorder buffer would be untestable here.
        let event_ts: Vec<u64> = stream.iter().map(|r| r.event_ts()).collect();
        assert!(
            event_ts.windows(2).any(|w| w[1] < w[0]),
            "export stream is accidentally event-ordered; jitter model broken"
        );
    }

    #[test]
    fn different_seed_changes_export_order_only_in_jitter() {
        let records = tiny_trace();
        let a = export_stream(&records, 1, 53);
        let b = export_stream(&records, 2, 53);
        assert_eq!(a.len(), b.len(), "seed must not change record count");
    }
}
