//! Trace profiles: the knobs that differentiate the five paper traces.

use serde::{Deserialize, Serialize};

/// Access technology at the vantage point — drives RTT and delay spreads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessTech {
    Ftth,
    Adsl,
    Mobile3g,
}

impl AccessTech {
    /// Median client↔server round-trip time in microseconds.
    pub fn rtt_micros(self) -> u64 {
        match self {
            AccessTech::Ftth => 12_000,
            AccessTech::Adsl => 45_000,
            AccessTech::Mobile3g => 180_000,
        }
    }

    /// Client↔local-DNS-resolver delay in microseconds.
    pub fn dns_delay_micros(self) -> u64 {
        match self {
            AccessTech::Ftth => 4_000,
            AccessTech::Adsl => 18_000,
            AccessTech::Mobile3g => 90_000,
        }
    }
}

/// Vantage-point geography — selects per-service hosting weights
/// (Fig. 9, Tab. 5 differ between US and EU viewpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Geography {
    Us,
    Eu,
}

/// Everything that parameterises one synthetic trace.
///
/// Rates are scaled down from the paper's multi-million-flow traces
/// (see DESIGN.md §2); the `scale` factor multiplies the client population
/// if a larger run is wanted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name as reported in tables (e.g. "EU1-ADSL1").
    pub name: String,
    /// RNG seed — same seed, same trace, bit for bit.
    pub seed: u64,
    pub tech: AccessTech,
    pub geography: Geography,
    /// Absolute epoch (µs) of the first frame; paper traces are from 2011.
    pub start_epoch_micros: u64,
    /// Local start hour (affects the diurnal curve phase), 0–23.
    pub start_hour: f64,
    /// Trace duration in hours.
    pub duration_hours: f64,
    /// Monitored client population.
    pub clients: usize,
    /// Mean page views per client per hour at full diurnal activity.
    pub views_per_client_hour: f64,
    /// Mean embedded resources fetched per page view.
    pub embedded_per_view: f64,
    /// Mean prefetch-only resolutions per page view (drives Tab. 9).
    pub prefetch_per_view: f64,
    /// Fraction of clients running BitTorrent.
    pub p2p_client_fraction: f64,
    /// Peer-wire flows generated per tracker announce.
    pub peers_per_announce: f64,
    /// Mean hours between tracker announces of a P2P client.
    pub announce_interval_hours: f64,
    /// Fraction of clients whose traffic is tunnelled over a single
    /// HTTPS endpoint resolved before the trace (3G: lowers hit ratio).
    pub tunnel_client_fraction: f64,
    /// Fraction of clients that "arrive" mid-trace with a warm OS cache
    /// (mobility: the DNS response happened outside our vantage point).
    pub mobility_client_fraction: f64,
    /// Probability that a popular name is already cached at t=0 (drives the
    /// warm-up misses of Tab. 2).
    pub prewarm_prob: f64,
    /// Steady-state probability that a needed resolution happens out of
    /// sight (home-gateway DNS cache, OS quirks) — the paper's residual
    /// misses beyond the warm-up window.
    pub invisible_resolution_prob: f64,
    /// Fraction of clients that are dual-stack and fetch some content over
    /// IPv6 (AAAA resolutions + v6 flows).
    pub ipv6_client_fraction: f64,
    /// Hours per content-mix epoch. When > 0, the popularity ranking the
    /// browsing samplers draw from rotates every epoch of trace time, so
    /// sliding-window aggregates provably differ from the global ones
    /// (0 = stationary mix, the paper-trace default).
    #[serde(default)]
    pub mix_epoch_hours: f64,
    /// Warm-up window (µs) the evaluation excludes, as in the paper (5 min).
    pub warmup_micros: u64,
}

impl TraceProfile {
    /// Duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        (self.duration_hours * 3600.0 * 1e6) as u64
    }

    /// Local wall-clock hour for a trace-relative timestamp.
    pub fn hour_of_day(&self, ts_micros: u64) -> f64 {
        (self.start_hour + ts_micros as f64 / 3.6e9) % 24.0
    }

    /// Scale the client population (and thus every rate) by `factor`.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.clients = ((self.clients as f64 * factor).round() as usize).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TraceProfile {
        TraceProfile {
            name: "TEST".into(),
            seed: 1,
            tech: AccessTech::Adsl,
            geography: Geography::Eu,
            start_epoch_micros: 1_300_000_000_000_000,
            start_hour: 8.0,
            duration_hours: 24.0,
            clients: 100,
            views_per_client_hour: 6.0,
            embedded_per_view: 3.0,
            prefetch_per_view: 2.0,
            p2p_client_fraction: 0.05,
            peers_per_announce: 30.0,
            announce_interval_hours: 0.5,
            tunnel_client_fraction: 0.0,
            mobility_client_fraction: 0.0,
            prewarm_prob: 0.3,
            invisible_resolution_prob: 0.05,
            ipv6_client_fraction: 0.0,
            mix_epoch_hours: 0.0,
            warmup_micros: 300_000_000,
        }
    }

    #[test]
    fn duration_and_hours() {
        let p = profile();
        assert_eq!(p.duration_micros(), 86_400_000_000);
        assert!((p.hour_of_day(0) - 8.0).abs() < 1e-9);
        assert!((p.hour_of_day(3_600_000_000) - 9.0).abs() < 1e-9);
        // Wraps at midnight.
        assert!((p.hour_of_day(20 * 3_600_000_000) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_population() {
        let p = profile().scaled(0.1);
        assert_eq!(p.clients, 10);
        let q = profile().scaled(0.0001);
        assert_eq!(q.clients, 1); // never zero
    }

    #[test]
    fn tech_latencies_are_ordered() {
        assert!(AccessTech::Ftth.rtt_micros() < AccessTech::Adsl.rtt_micros());
        assert!(AccessTech::Adsl.rtt_micros() < AccessTech::Mobile3g.rtt_micros());
        assert!(AccessTech::Ftth.dns_delay_micros() < AccessTech::Mobile3g.dns_delay_micros());
    }
}
