//! Seeded post-hoc fault injection: perturb a generated trace the way a
//! real capture point would — loss, duplication, reordering, snaplen
//! truncation, on-the-wire corruption, mid-stream capture start, and
//! actively hostile DNS payloads.
//!
//! The paper's traces are imperfect captures: the US-3G trace tags only
//! ~75% of flows because the sniffer misses the DNS responses that
//! precede them (§4.1, Tab. 3), and any PoP capture starts mid-stream
//! for flows already in flight. [`FaultPlan`] reproduces those defects
//! deterministically so the ingest stack's *graceful degradation* is a
//! testable property rather than a hope (see DESIGN.md §10).
//!
//! ## Nested fault sets
//!
//! Every record draws the **same fixed number of uniforms regardless of
//! the configured rates**, and each fault class fires when its dedicated
//! draw falls below its rate. A record dropped at rate `r1` is therefore
//! also dropped at every rate `r2 > r1` under the same seed: fault sets
//! are *nested* across intensities, which makes degradation exactly
//! monotone (the fault-matrix test asserts the tagging hit ratio never
//! rises as the DNS-drop rate rises — with nesting this holds exactly,
//! not just in expectation).

use std::net::Ipv4Addr;

use dnhunter_net::{build_udp_v4, MacAddr, PcapRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::generator::DNS_SERVER;

/// What to inflict on a trace. All rates are probabilities in `[0, 1]`;
/// the default plan is the identity (every rate zero).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed; the same seed and rates always pick the same victims.
    pub seed: u64,
    /// Drop any frame (uniform loss).
    pub drop_rate: f64,
    /// Drop specifically UDP frames sourced from port 53 — the unseen
    /// DNS responses behind the 3G trace's depressed hit ratio.
    pub dns_response_drop_rate: f64,
    /// Emit a frame twice back-to-back (link-layer duplication).
    pub duplicate_rate: f64,
    /// Delay a frame past the next [`FaultPlan::reorder_window`] frames
    /// (bounded reordering, as a multi-queue capture card produces).
    pub reorder_rate: f64,
    /// How many frames a reordered frame is delayed past.
    pub reorder_window: usize,
    /// Cut a frame short of its full length (snaplen truncation). The cut
    /// always lands strictly inside the frame, so the parser must reject
    /// it as truncated.
    pub truncate_rate: f64,
    /// Flip one IPv4 address byte (on-the-wire corruption). The IPv4
    /// header checksum is computed over the addresses, so the parser must
    /// reject the frame as a checksum failure — never mis-route it.
    pub corrupt_rate: f64,
    /// Discard everything before `first_ts + midstream_cut_micros`: the
    /// capture starts while flows are already in flight (TCP without SYN).
    pub midstream_cut_micros: u64,
    /// Drop SYN-carrying frames (handshake packets) at this rate — the
    /// per-flow version of a mid-stream capture start: the flow's data
    /// segments arrive with no SYN ever observed.
    pub syn_strip_rate: f64,
    /// Inject a crafted hostile DNS "response" after a frame: compression
    /// pointer loops, over-long names, bogus rdlength claims, truncated
    /// headers. Every one must fail decoding — counted, never crashed on.
    pub malicious_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xD15_EA5E,
            drop_rate: 0.0,
            dns_response_drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_window: 3,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            midstream_cut_micros: 0,
            syn_strip_rate: 0.0,
            malicious_rate: 0.0,
        }
    }
}

/// How many faults of each class [`FaultPlan::apply`] actually inflicted —
/// ground truth for the fault-matrix assertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    pub frames_in: u64,
    pub frames_out: u64,
    pub dropped: u64,
    pub dns_responses_dropped: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub truncated: u64,
    pub corrupted: u64,
    pub midstream_cut: u64,
    pub syn_stripped: u64,
    pub malicious_injected: u64,
}

impl FaultStats {
    /// Total faults inflicted, all classes.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.dns_responses_dropped
            + self.duplicated
            + self.reordered
            + self.truncated
            + self.corrupted
            + self.midstream_cut
            + self.syn_stripped
            + self.malicious_injected
    }
}

/// Source address for injected hostile frames: a TEST-NET-2 "attacker"
/// client that never collides with generated client space.
const MALICIOUS_CLIENT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 99);

impl FaultPlan {
    /// True when this plan perturbs nothing.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.dns_response_drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.truncate_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.midstream_cut_micros == 0
            && self.syn_strip_rate == 0.0
            && self.malicious_rate == 0.0
    }

    /// Perturb `records`, returning the faulted stream and what was done.
    ///
    /// Deterministic per `(plan, input)`; see the module docs for why the
    /// fault sets are nested across rates under a fixed seed.
    pub fn apply(&self, records: &[PcapRecord]) -> (Vec<PcapRecord>, FaultStats) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut stats = FaultStats {
            frames_in: records.len() as u64,
            ..FaultStats::default()
        };
        let cut_before = records
            .first()
            .map(|r| r.timestamp_micros() + self.midstream_cut_micros)
            .unwrap_or(0);
        let mut out: Vec<PcapRecord> = Vec::with_capacity(records.len());
        // Frames delayed by reordering: (release-after countdown, frame).
        let mut held: Vec<(usize, PcapRecord)> = Vec::new();
        let mut malicious_kind = 0usize;
        for rec in records {
            // Fixed draw schedule — every record consumes exactly nine
            // uniforms whether or not any class fires, so victim sets are
            // identical across different rate settings of the same seed.
            let u_dns_drop: f64 = rng.gen();
            let u_drop: f64 = rng.gen();
            let u_trunc: f64 = rng.gen();
            let u_cut: f64 = rng.gen();
            let u_corrupt: f64 = rng.gen();
            let u_corrupt_byte: f64 = rng.gen();
            let u_dup: f64 = rng.gen();
            let u_reorder: f64 = rng.gen();
            let u_malicious: f64 = rng.gen();
            let u_syn: f64 = rng.gen();

            if rec.timestamp_micros() < cut_before {
                stats.midstream_cut += 1;
                continue;
            }
            if is_dns_response(&rec.frame) && u_dns_drop < self.dns_response_drop_rate {
                stats.dns_responses_dropped += 1;
                continue;
            }
            if u_drop < self.drop_rate {
                stats.dropped += 1;
                continue;
            }
            if u_syn < self.syn_strip_rate && is_tcp_syn(&rec.frame) {
                stats.syn_stripped += 1;
                continue;
            }
            let mut rec = rec.clone();
            if u_trunc < self.truncate_rate && rec.frame.len() >= 2 {
                // Cut strictly inside the frame: some header or length
                // claim is now unsatisfiable and the parser must say so.
                let max_keep = rec.frame.len() - 1;
                let keep = (1 + (u_cut * max_keep as f64) as usize).min(max_keep);
                rec.frame.truncate(keep);
                stats.truncated += 1;
            }
            if u_corrupt < self.corrupt_rate && is_ipv4(&rec.frame) && rec.frame.len() >= 34 {
                // Flip one src/dst address byte (frame offsets 26..34).
                // Those bytes are under the IPv4 header checksum, so the
                // parser rejects the frame instead of mis-routing it.
                let idx = 26 + ((u_corrupt_byte * 8.0) as usize).min(7);
                rec.frame[idx] ^= 0xff;
                stats.corrupted += 1;
            }
            let dup = u_dup < self.duplicate_rate;
            let inject = u_malicious < self.malicious_rate;
            let ts = rec.timestamp_micros();
            if u_reorder < self.reorder_rate && self.reorder_window > 0 {
                held.push((self.reorder_window, rec.clone()));
                if dup {
                    held.push((self.reorder_window, rec));
                    stats.duplicated += 1;
                }
                stats.reordered += 1;
            } else {
                out.push(rec.clone());
                if dup {
                    out.push(rec);
                    stats.duplicated += 1;
                }
            }
            if inject {
                out.push(PcapRecord::from_micros(
                    ts,
                    malicious_dns_frame(malicious_kind),
                ));
                malicious_kind += 1;
                stats.malicious_injected += 1;
            }
            // Every emitted frame ages the held queue by one slot.
            release_due(&mut held, &mut out);
        }
        // Flush whatever is still delayed, oldest first.
        for (_, rec) in held.drain(..) {
            out.push(rec);
        }
        stats.frames_out = out.len() as u64;
        (out, stats)
    }

    /// [`FaultPlan::apply`] in place on a [`crate::Trace`].
    pub fn apply_to_trace(&self, trace: &mut crate::Trace) -> FaultStats {
        let (records, stats) = self.apply(&trace.records);
        trace.records = records;
        stats
    }
}

/// Age the reorder queue by one emitted frame and release every frame
/// whose delay has elapsed, in hold order.
fn release_due(held: &mut Vec<(usize, PcapRecord)>, out: &mut Vec<PcapRecord>) {
    for entry in held.iter_mut() {
        entry.0 = entry.0.saturating_sub(1);
    }
    let mut i = 0;
    while i < held.len() {
        if held[i].0 == 0 {
            let (_, rec) = held.remove(i);
            out.push(rec);
        } else {
            i += 1;
        }
    }
}

/// Ethertype says IPv4. Hand-rolled peek — deliberately *not*
/// [`dnhunter_net::PacketView::parse`], which would count telemetry for
/// frames the plan merely inspects.
fn is_ipv4(frame: &[u8]) -> bool {
    frame.len() >= 34 && frame[12] == 0x08 && frame[13] == 0x00
}

/// True for a UDP frame sourced from port 53 (a DNS response on its way
/// to a client), over IPv4 or IPv6. Same hand-rolled-peek rationale as
/// [`is_ipv4`].
fn is_dns_response(frame: &[u8]) -> bool {
    if frame.len() < 14 {
        return false;
    }
    match (frame[12], frame[13]) {
        (0x08, 0x00) => {
            // IPv4: IHL in the low nibble of the first header byte.
            let ihl = usize::from(frame[14] & 0x0f) * 4;
            ihl >= 20
                && frame.len() >= 14 + ihl + 4
                && frame[23] == 17
                && frame[14 + ihl] == 0
                && frame[14 + ihl + 1] == 53
        }
        (0x86, 0xdd) => {
            // IPv6: fixed 40-byte header, next-header at offset 6.
            frame.len() >= 14 + 40 + 4 && frame[20] == 17 && frame[54] == 0 && frame[55] == 53
        }
        _ => false,
    }
}

/// True for a TCP frame with the SYN flag set, over IPv4 or IPv6. Same
/// hand-rolled-peek rationale as [`is_ipv4`].
fn is_tcp_syn(frame: &[u8]) -> bool {
    if frame.len() < 14 {
        return false;
    }
    match (frame[12], frame[13]) {
        (0x08, 0x00) => {
            let ihl = usize::from(frame[14] & 0x0f) * 4;
            ihl >= 20
                && frame.len() > 14 + ihl + 13
                && frame[23] == 6
                && frame[14 + ihl + 13] & 0x02 != 0
        }
        (0x86, 0xdd) => frame.len() > 14 + 40 + 13 && frame[20] == 6 && frame[67] & 0x02 != 0,
        _ => false,
    }
}

/// Build one hostile DNS "response" frame, cycling through four attack
/// shapes. Every payload must *fail* `dnhunter_dns::codec::decode` — the
/// fault matrix asserts the decode-reject counter moves, and the fuzz
/// harness keeps these shapes in its corpus.
fn malicious_dns_frame(kind: usize) -> Vec<u8> {
    let payload = malicious_dns_payload(kind);
    build_udp_v4(
        MacAddr::from_id(0xbad),
        MacAddr::from_id(1),
        DNS_SERVER,
        MALICIOUS_CLIENT,
        53,
        33433,
        &payload,
    )
    .expect("hostile payloads are well under the UDP size cap")
}

/// The hostile payload shapes, indexable for corpus reuse.
pub fn malicious_dns_payload(kind: usize) -> Vec<u8> {
    match kind % 4 {
        // A name that is a compression pointer to itself: a naive decoder
        // chases it forever.
        0 => {
            let mut p = header(0x6661, 1, 0);
            p.extend_from_slice(&[0xc0, 12]); // pointer to offset 12 = itself
            p.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
            p
        }
        // A name whose labels total far past the 255-octet limit.
        1 => {
            let mut p = header(0x6662, 1, 0);
            for _ in 0..5 {
                p.push(63);
                p.extend_from_slice(&[b'a'; 63]);
            }
            p.push(0);
            p.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
            p
        }
        // An answer whose rdlength claims kilobytes that are not there.
        2 => {
            let mut p = header(0x6663, 1, 1);
            p.extend_from_slice(b"\x03www\x07invalid\x00\x00\x01\x00\x01");
            p.extend_from_slice(&[0xc0, 12]); // answer name: pointer to question
            p.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // TYPE A, IN
            p.extend_from_slice(&[0x00, 0x00, 0x00, 0x3c]); // TTL
            p.extend_from_slice(&[0xff, 0xff]); // rdlength 65535...
            p.extend_from_slice(&[1, 2, 3, 4]); // ...but 4 bytes follow
            p
        }
        // Not even a full 12-byte header.
        _ => vec![0x66, 0x64, 0x81, 0x80, 0x00, 0x01, 0x00],
    }
}

fn header(id: u16, qd: u16, an: u16) -> Vec<u8> {
    let mut p = Vec::with_capacity(12);
    p.extend_from_slice(&id.to_be_bytes());
    p.extend_from_slice(&[0x81, 0x80]); // QR=1, RD, RA
    p.extend_from_slice(&qd.to_be_bytes());
    p.extend_from_slice(&an.to_be_bytes());
    p.extend_from_slice(&[0, 0, 0, 0]); // NS, AR
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_net::{NetError, Packet};

    fn sample_records(n: usize) -> Vec<PcapRecord> {
        (0..n)
            .map(|i| {
                let frame = build_udp_v4(
                    MacAddr::from_id(2),
                    MacAddr::from_id(3),
                    if i % 3 == 0 {
                        DNS_SERVER
                    } else {
                        Ipv4Addr::new(10, 0, 0, 7)
                    },
                    Ipv4Addr::new(10, 0, 0, 9),
                    if i % 3 == 0 { 53 } else { 40_000 },
                    if i % 3 == 0 { 41_000 } else { 80 },
                    format!("payload-{i}").as_bytes(),
                )
                .unwrap();
                PcapRecord::from_micros(1_000_000 + i as u64 * 1_000, frame)
            })
            .collect()
    }

    #[test]
    fn noop_plan_is_identity() {
        let records = sample_records(50);
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        let (out, stats) = plan.apply(&records);
        assert_eq!(out.len(), records.len());
        assert_eq!(stats.total(), 0);
        for (a, b) in records.iter().zip(&out) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.timestamp_micros(), b.timestamp_micros());
        }
    }

    #[test]
    fn drop_sets_are_nested_across_rates() {
        let records = sample_records(200);
        let survivors = |rate: f64| -> Vec<Vec<u8>> {
            let plan = FaultPlan {
                dns_response_drop_rate: rate,
                ..FaultPlan::default()
            };
            plan.apply(&records)
                .0
                .into_iter()
                .map(|r| r.frame)
                .collect()
        };
        let loose = survivors(0.3);
        let tight = survivors(0.8);
        // Everything alive at the higher rate is alive at the lower rate.
        for frame in &tight {
            assert!(loose.contains(frame));
        }
        assert!(tight.len() < loose.len());
        assert!(loose.len() < records.len());
    }

    #[test]
    fn dns_drop_only_hits_responses() {
        let records = sample_records(120);
        let plan = FaultPlan {
            dns_response_drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert!(stats.dns_responses_dropped > 0);
        assert_eq!(
            out.len() + stats.dns_responses_dropped as usize,
            records.len()
        );
        assert!(out.iter().all(|r| !is_dns_response(&r.frame)));
    }

    #[test]
    fn truncation_yields_truncated_parse_errors() {
        let records = sample_records(60);
        let plan = FaultPlan {
            truncate_rate: 1.0,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert_eq!(stats.truncated as usize, out.len());
        for rec in &out {
            match Packet::parse(&rec.frame) {
                Err(NetError::Truncated { .. }) => {}
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_yields_checksum_errors() {
        let records = sample_records(60);
        let plan = FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert_eq!(stats.corrupted as usize, out.len());
        for rec in &out {
            match Packet::parse(&rec.frame) {
                Err(NetError::BadChecksum { .. }) => {}
                other => panic!("expected BadChecksum, got {other:?}"),
            }
        }
    }

    #[test]
    fn reordering_preserves_the_frame_multiset() {
        let records = sample_records(100);
        let plan = FaultPlan {
            reorder_rate: 0.5,
            reorder_window: 4,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert!(stats.reordered > 0);
        assert_eq!(out.len(), records.len());
        let mut a: Vec<_> = records.iter().map(|r| r.frame.clone()).collect();
        let mut b: Vec<_> = out.iter().map(|r| r.frame.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // ...but the stream order did change.
        let orig: Vec<_> = records.iter().map(|r| r.frame.clone()).collect();
        let seen: Vec<_> = out.iter().map(|r| r.frame.clone()).collect();
        assert_ne!(orig, seen);
    }

    #[test]
    fn duplication_adds_adjacent_copies() {
        let records = sample_records(80);
        let plan = FaultPlan {
            duplicate_rate: 0.5,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert!(stats.duplicated > 0);
        assert_eq!(out.len(), records.len() + stats.duplicated as usize);
    }

    #[test]
    fn midstream_cut_drops_the_head_of_the_trace() {
        let records = sample_records(100);
        let plan = FaultPlan {
            midstream_cut_micros: 50_000, // first 50 records (1ms spacing)
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert_eq!(stats.midstream_cut, 50);
        assert_eq!(out.len(), 50);
        assert!(out
            .iter()
            .all(|r| r.timestamp_micros() >= 1_000_000 + 50_000));
    }

    #[test]
    fn syn_strip_removes_only_handshake_frames() {
        use dnhunter_net::{build_tcp_v4, TcpFlags};
        let mut records = sample_records(10); // UDP, untouched
        for i in 0..10u32 {
            let flags = if i % 2 == 0 {
                TcpFlags::SYN
            } else {
                TcpFlags::ACK
            };
            let frame = build_tcp_v4(
                MacAddr::from_id(2),
                MacAddr::from_id(3),
                Ipv4Addr::new(10, 0, 0, 7),
                Ipv4Addr::new(10, 0, 0, 9),
                50_000,
                80,
                i,
                0,
                flags,
                b"x",
            )
            .unwrap();
            records.push(PcapRecord::from_micros(2_000_000 + u64::from(i), frame));
        }
        let plan = FaultPlan {
            syn_strip_rate: 1.0,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert_eq!(stats.syn_stripped, 5);
        assert_eq!(out.len(), records.len() - 5);
        assert!(out.iter().all(|r| !is_tcp_syn(&r.frame)));
    }

    #[test]
    fn malicious_payloads_all_fail_decode() {
        for kind in 0..4 {
            let payload = malicious_dns_payload(kind);
            assert!(
                dnhunter_dns::codec::decode(&payload).is_err(),
                "hostile payload {kind} decoded cleanly"
            );
            // The carrier frame itself parses fine — the *DNS layer* must
            // be the one that rejects it.
            let frame = malicious_dns_frame(kind);
            let pkt = Packet::parse(&frame).expect("carrier frame is valid");
            assert!(is_dns_response(&frame));
            drop(pkt);
        }
    }

    #[test]
    fn malicious_injection_counts_and_survives() {
        let records = sample_records(60);
        let plan = FaultPlan {
            malicious_rate: 0.5,
            ..FaultPlan::default()
        };
        let (out, stats) = plan.apply(&records);
        assert!(stats.malicious_injected > 0);
        assert_eq!(out.len(), records.len() + stats.malicious_injected as usize);
    }
}
