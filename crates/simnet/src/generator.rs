//! The trace generator: drives the client population through the catalog
//! and emits the full frame stream of one vantage point.

use std::collections::HashMap;
use std::io::Write;
use std::net::Ipv4Addr;

use dnhunter_dns::{codec, DnsMessage, DomainName, QClass, QType, RData, ResourceRecord};
use dnhunter_net::{build_udp_v4, MacAddr, PcapRecord, PcapWriter};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::address::PtrZone;
use crate::appspot::{self, TrackerInstance};
use crate::catalog::{
    paper_catalog, Catalog, CertPolicy, NamePattern, PayloadStyle, ServiceId, ServiceSampler,
};
use crate::client::ClientState;
use crate::config::TraceProfile;
use crate::diurnal;
use crate::dnsmodel::AuthoritativeDns;
use crate::flowgen::{self, FlowSpec};

/// The ISP-side DNS resolver every client queries.
pub const DNS_SERVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);
/// Gateway MAC standing in for the PoP router.
const GATEWAY_MAC: MacAddr = MacAddr([0x02, 0xaa, 0, 0, 0, 1]);

/// Small FNV for stable v6 address derivation.
fn fnv6(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Counters of what was generated — ground truth for tests.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct GenStats {
    pub page_views: u64,
    pub accesses: u64,
    pub flows: u64,
    pub dns_queries: u64,
    pub prefetch_only: u64,
    pub nxdomain: u64,
    pub silent_resolutions: u64,
    pub peer_flows: u64,
    pub tracker_announces: u64,
    pub tunnel_flows: u64,
    pub ipv6_flows: u64,
}

/// A generated trace.
pub struct Trace {
    pub profile: TraceProfile,
    /// Frames in timestamp order, absolute epoch µs.
    pub records: Vec<PcapRecord>,
    pub ptr_zone: PtrZone,
    pub stats: GenStats,
}

impl Trace {
    /// Write as a classic pcap file.
    pub fn write_pcap<W: Write>(&self, w: W) -> dnhunter_net::Result<W> {
        let mut out = PcapWriter::new(w)?;
        for r in &self.records {
            out.write_record(r)?;
        }
        out.into_inner()
    }
}

/// Generates one trace from a profile. Deterministic per seed.
pub struct TraceGenerator {
    profile: TraceProfile,
    catalog: Catalog,
    auth: AuthoritativeDns,
    rng: ChaCha8Rng,
    sampler_main: ServiceSampler,
    sampler_embed: ServiceSampler,
    sampler_prefetch: ServiceSampler,
    sampler_tracker: ServiceSampler,
    /// Next fresh instance per unbounded service.
    instance_next: HashMap<ServiceId, u32>,
    frames: Vec<(u64, Vec<u8>)>,
    dns_id: u16,
    trackers_live: Vec<TrackerInstance>,
    stats: GenStats,
}

impl TraceGenerator {
    /// Build for a profile. `live` adds the appspot.com model.
    pub fn new(profile: TraceProfile, live: bool) -> Self {
        let catalog = paper_catalog(live);
        let geo = profile.geography;
        let sampler_main = catalog.sampler(geo, |s| {
            s.style != PayloadStyle::TrackerHttp && !s.embeddable
        });
        let sampler_embed = catalog.sampler(geo, |s| s.embeddable);
        let sampler_prefetch = catalog.sampler(geo, |s| s.style != PayloadStyle::TrackerHttp);
        let sampler_tracker = catalog.sampler(geo, |s| s.style == PayloadStyle::TrackerHttp);
        let mut rng = ChaCha8Rng::seed_from_u64(profile.seed);
        let trackers_live = if live {
            appspot::tracker_schedules(&catalog, &mut rng)
        } else {
            Vec::new()
        };
        TraceGenerator {
            auth: AuthoritativeDns::new(geo),
            rng,
            sampler_main,
            sampler_embed,
            sampler_prefetch,
            sampler_tracker,
            instance_next: HashMap::new(),
            frames: Vec::new(),
            dns_id: 1,
            trackers_live,
            stats: GenStats::default(),
            catalog,
            profile,
        }
    }

    /// Tracker lifecycle schedules (live mode), for analytics ground truth.
    pub fn tracker_schedules(&self) -> &[TrackerInstance] {
        &self.trackers_live
    }

    /// Run the simulation and return the trace.
    pub fn generate(mut self) -> Trace {
        let duration = self.profile.duration_micros();
        let n = self.profile.clients;
        for id in 0..n as u32 {
            let mut client = ClientState::new(id);
            self.assign_roles(&mut client, duration);
            self.simulate_client(&mut client, duration);
        }
        // Sort and clip to the observation window (flows may run over the
        // end a little, as in a real capture stopped at a fixed time).
        let grace = 30_000_000;
        self.frames.retain(|(ts, _)| *ts <= duration + grace);
        self.frames.sort_by_key(|(ts, _)| *ts);
        let epoch = self.profile.start_epoch_micros;
        let records = self
            .frames
            .drain(..)
            .map(|(ts, frame)| PcapRecord::from_micros(epoch + ts, frame))
            .collect();
        Trace {
            profile: self.profile,
            records,
            ptr_zone: self.auth.into_ptr_zone(),
            stats: self.stats,
        }
    }

    fn assign_roles(&mut self, client: &mut ClientState, duration: u64) {
        let p = &self.profile;
        // Client 0 is always the first P2P user when the profile has any,
        // so small-scale runs still exhibit the P2P row of Tab. 2.
        client.is_p2p = self.rng.gen::<f64>() < p.p2p_client_fraction
            || (client.id == 0 && p.p2p_client_fraction > 0.0);
        client.is_tunnel = self.rng.gen::<f64>() < p.tunnel_client_fraction;
        client.is_dual_stack = self.rng.gen::<f64>() < p.ipv6_client_fraction;
        if self.rng.gen::<f64>() < p.mobility_client_fraction {
            client.is_mobile_arrival = true;
            client.join_ts = (self.rng.gen::<f64>() * 0.8 * duration as f64) as u64;
        }
    }

    fn simulate_client(&mut self, client: &mut ClientState, duration: u64) {
        let mean_gap = 3.6e9 / self.profile.views_per_client_hour.max(0.01);
        let mut t = client.join_ts;
        loop {
            t += self.exp(mean_gap);
            if t >= duration {
                break;
            }
            let act = diurnal::activity(self.profile.hour_of_day(t));
            if self.rng.gen::<f64>() < act {
                self.page_view(client, t);
            }
        }
        if client.is_p2p {
            self.simulate_p2p(client, duration);
        }
    }

    // ------------------------------------------------------------ browsing

    fn page_view(&mut self, client: &mut ClientState, t: u64) {
        self.stats.page_views += 1;
        if client.is_tunnel {
            self.tunnel_flow(client, t);
            return;
        }
        let draw: f64 = self.rng.gen();
        let u = self.mix_draw(t, draw);
        let Some(primary) = self.sampler_main.sample(u) else {
            return;
        };
        self.access(client, t, primary);
        // HTTP redirection chains (§6 confusion: apex → www on shared IPs).
        if let Some(target_sub) = self.catalog.service(primary).redirect_to {
            if let Some(target) = self.find_sibling(primary, target_sub) {
                let t2 = t + 80_000 + self.exp(50_000.0);
                self.access(client, t2, target);
            }
        }
        // Embedded resources.
        let embedded = self.poisson(self.profile.embedded_per_view);
        for _ in 0..embedded {
            let draw: f64 = self.rng.gen();
            let u = self.mix_draw(t, draw);
            if let Some(svc) = self.sampler_embed.sample(u) {
                let te = t + 100_000 + (self.rng.gen::<f64>() * 1.4e6) as u64;
                self.access(client, te, svc);
            }
        }
        // Browser prefetching: resolutions never followed by a flow.
        let prefetch = self.poisson(self.profile.prefetch_per_view);
        for _ in 0..prefetch {
            let draw: f64 = self.rng.gen();
            let u = self.mix_draw(t, draw);
            if let Some(svc) = self.sampler_prefetch.sample(u) {
                let tp = t + 50_000 + (self.rng.gen::<f64>() * 450_000.0) as u64;
                self.resolve_only(client, tp, svc);
            }
        }
    }

    /// Warp a uniform sampler draw by the content-mix epoch containing
    /// `t`: with `mix_epoch_hours > 0`, the draw is squared (density
    /// `1/(2√x)`, sharply peaked at 0) and the peak is rotated around the
    /// cumulative popularity distribution by a golden-ratio step per
    /// epoch, so *which* slice of the catalog is hot genuinely changes
    /// every epoch (a plain constant shift of a uniform draw would leave
    /// the sampled mix distributionally unchanged). Pure in `(t, u)`, so
    /// traces stay seed-deterministic.
    fn mix_draw(&self, t: u64, u: f64) -> f64 {
        let epoch_hours = self.profile.mix_epoch_hours;
        if epoch_hours <= 0.0 {
            return u;
        }
        let band = (t as f64 / (epoch_hours * 3.6e9)).floor();
        (u * u + band * 0.618_033_988_749_895).fract()
    }

    /// Find a service in the same domain whose pattern is `Fixed(sub)`.
    fn find_sibling(&self, id: ServiceId, sub: &str) -> Option<ServiceId> {
        let dom = &self.catalog.domains[id.domain];
        dom.services
            .iter()
            .position(|s| matches!(s.pattern, NamePattern::Fixed(f) if f == sub))
            .map(|service| ServiceId {
                domain: id.domain,
                service,
            })
    }

    /// One access: resolve (cached / silent / on the wire) and emit a flow.
    fn access(&mut self, client: &mut ClientState, t: u64, id: ServiceId) {
        self.stats.accesses += 1;
        // Dual-stack hosts fetch some v6-enabled content over IPv6
        // (AAAA resolution over v6 transport + a v6 flow).
        if client.is_dual_stack
            && self
                .catalog
                .service(id)
                .hosting
                .iter()
                .any(|h| h.org == "google")
            && self.rng.gen::<f64>() < 0.5
        {
            self.access_v6(client, t, id);
            return;
        }
        let instance = self.choose_instance(id);
        let (fqdn, sld, style, port, cert, resp_kib) = {
            let svc = self.catalog.service(id);
            let dom = self.catalog.domain(id);
            (
                svc.fqdn(dom.sld, instance),
                dom.sld.to_string(),
                svc.style,
                svc.port,
                svc.cert,
                svc.resp_kib,
            )
        };
        let resolved = self.ensure_resolved(client, t, id, instance, &fqdn);
        let Some((servers, flow_start)) = resolved else {
            return;
        };
        let server = self.pick_server(&servers);
        let resp_bytes = {
            let (lo, hi) = resp_kib;
            let kib = self.rng.gen_range(lo..=hi).min(120);
            kib * 1024
        };
        let spec = FlowSpec {
            client: client.ip,
            server,
            client_mac: client.mac,
            server_mac: GATEWAY_MAC,
            sport: client.sport(),
            dport: port,
            start: flow_start,
            rtt: self.jittered_rtt(),
            style,
            fqdn: fqdn.to_string(),
            sld,
            cert,
            resume: style == PayloadStyle::Tls && self.rng.gen::<f64>() < 0.23,
            sni: self.rng.gen::<f64>() < 0.97,
            cdn_cert_name: if cert == CertPolicy::CdnName {
                Some(format!(
                    "a{}.e.akamai.net",
                    200 + (self.rng.gen::<u32>() % 99)
                ))
            } else {
                None
            },
            req_bytes: self.rng.gen_range(200..1500),
            resp_bytes,
            seed: self.rng.gen(),
        };
        self.frames.extend(flowgen::synthesize(&spec));
        self.stats.flows += 1;
        if style == PayloadStyle::TrackerHttp {
            self.stats.tracker_announces += 1;
        }
    }

    /// A complete IPv6 access: AAAA query/response over v6 UDP, then a v6
    /// flow. Only Google content is v6-enabled in the synthetic Internet
    /// (true to the 2011-era deployment state).
    fn access_v6(&mut self, client: &mut ClientState, t: u64, id: ServiceId) {
        use std::net::Ipv6Addr;
        let instance = self.choose_instance(id);
        let (fqdn, style, port, resp_kib) = {
            let svc = self.catalog.service(id);
            let dom = self.catalog.domain(id);
            (
                svc.fqdn(dom.sld, instance),
                svc.style,
                svc.port,
                svc.resp_kib,
            )
        };
        // v6 server: a stable address in Google's v6 block per instance.
        let h = fnv6(fqdn.to_string().as_bytes());
        let server = Ipv6Addr::new(0x2001, 0x4860, 0x4000, 0, 0, 0, (h >> 16) as u16, h as u16);
        let client6 = client.ip6();
        let dns_server6 = Ipv6Addr::new(0x2001, 0xdb8, 0x00aa, 0xffff, 0, 0, 0, 0x53);
        // AAAA exchange over v6 UDP.
        let qid = self.dns_id;
        self.dns_id = self.dns_id.wrapping_add(1);
        let sport = client.sport();
        let query = DnsMessage::query(qid, fqdn.clone(), dnhunter_dns::QType::Aaaa);
        let response = DnsMessage::answer_to(
            &query,
            vec![ResourceRecord {
                name: fqdn.clone(),
                class: QClass::In,
                ttl: 300,
                rdata: RData::Aaaa(server),
            }],
        );
        let qframe = dnhunter_net::build_udp_v6(
            client.mac,
            GATEWAY_MAC,
            client6,
            dns_server6,
            sport,
            53,
            &codec::encode(&query).expect("query encodes"),
        )
        .expect("v6 query frame builds");
        let delay = (self.profile.tech.dns_delay_micros() as f64
            * (0.6 + self.rng.gen::<f64>() * 1.6)) as u64;
        let resp_ts = t + delay;
        let rframe = dnhunter_net::build_udp_v6(
            GATEWAY_MAC,
            client.mac,
            dns_server6,
            client6,
            53,
            sport,
            &codec::encode(&response).expect("response encodes"),
        )
        .expect("v6 response frame builds");
        self.frames.push((t, qframe));
        self.frames.push((resp_ts, rframe));
        self.stats.dns_queries += 1;
        // The flow, over v6.
        let style6 = if style == PayloadStyle::Tls {
            PayloadStyle::Tls
        } else {
            PayloadStyle::Http
        };
        let port6 = if matches!(port, 80 | 443) { port } else { 443 };
        let start = resp_ts + self.first_flow_delay();
        let resp_bytes = {
            let (lo, hi) = resp_kib;
            self.rng.gen_range(lo..=hi).min(120) * 1024
        };
        let frames = flowgen::synthesize_v6(
            client6,
            server,
            client.mac,
            GATEWAY_MAC,
            client.sport(),
            port6,
            start,
            self.jittered_rtt(),
            style6,
            &fqdn.to_string(),
            resp_bytes,
            self.rng.gen(),
        );
        self.frames.extend(frames);
        self.stats.flows += 1;
        self.stats.ipv6_flows += 1;
    }

    /// Resolve `fqdn` for the client at `t`. Returns the usable server list
    /// and the flow start time, or `None` if resolution failed entirely.
    fn ensure_resolved(
        &mut self,
        client: &mut ClientState,
        t: u64,
        id: ServiceId,
        instance: u32,
        fqdn: &DomainName,
    ) -> Option<(Vec<Ipv4Addr>, u64)> {
        if let Some(entry) = client.cache_get(fqdn, t) {
            let servers = entry.servers.clone();
            let start = t + 5_000 + (self.rng.gen::<f64>() * 75_000.0) as u64;
            return Some((servers, start));
        }
        let svc = self.catalog.service(id);
        // Pre-warm shortcut: the OS resolved this before the trace started
        // (or, for mobile arrivals, before the device entered our coverage)
        // — the response never crossed the vantage point.
        let ttl_micros = u64::from(svc.ttl) * 1_000_000;
        if !client.cache_has(fqdn) && !svc.unbounded {
            // Pre-warm: the name was in the OS cache when the trace (or the
            // client's session) began; a name nobody has seen before can't
            // be in any cache.
            let p = (self.profile.prewarm_prob * svc.prewarm_boost).min(0.95);
            let expiry = client.join_ts + (self.rng.gen::<f64>() * ttl_micros as f64) as u64;
            if self.rng.gen::<f64>() < p && expiry > t {
                let remaining_secs = ((expiry - t) / 1_000_000) as u32;
                let addrs = self.silent_resolve(client, t, id, instance, fqdn, remaining_secs);
                let start = t + 5_000 + (self.rng.gen::<f64>() * 75_000.0) as u64;
                return Some((addrs, start));
            }
        }
        // Steady-state invisible resolutions: home-gateway caches answer
        // some queries without the PoP ever seeing a response, and roaming
        // mobile devices resolve while attached elsewhere. TLS apps reuse
        // sessions longer, so their resolutions go invisible a bit more
        // often (Tab. 2: TLS hit ratios trail HTTP's).
        let mut q = self.profile.invisible_resolution_prob;
        if svc.style == PayloadStyle::Tls {
            q *= 1.3;
        }
        if client.is_mobile_arrival {
            q = q.max(0.72);
        }
        if self.rng.gen::<f64>() < q.min(0.95) {
            let ttl_secs = ((svc.ttl as f64) * (0.5 + self.rng.gen::<f64>() * 0.5)) as u32;
            let addrs = self.silent_resolve(client, t, id, instance, fqdn, ttl_secs);
            let start = t + 5_000 + (self.rng.gen::<f64>() * 75_000.0) as u64;
            return Some((addrs, start));
        }
        // Visible resolution on the wire.
        let (servers, resp_ts) = self.emit_dns(client, t, id, instance, fqdn);
        let start = resp_ts + self.first_flow_delay();
        Some((servers, start))
    }

    /// Resolve without emitting frames (the response is invisible to the
    /// vantage point) and cache the result for `ttl_secs`.
    fn silent_resolve(
        &mut self,
        client: &mut ClientState,
        t: u64,
        id: ServiceId,
        instance: u32,
        fqdn: &DomainName,
        ttl_secs: u32,
    ) -> Vec<Ipv4Addr> {
        let hour = self.profile.hour_of_day(t);
        let res = self
            .auth
            .resolve(&self.catalog, id, instance, hour, &mut self.rng);
        client.cache_put(fqdn.clone(), t, ttl_secs.max(1), res.addrs.clone());
        self.stats.silent_resolutions += 1;
        res.addrs
    }

    /// Emit query + response frames; update client cache; return answers.
    fn emit_dns(
        &mut self,
        client: &mut ClientState,
        t: u64,
        id: ServiceId,
        instance: u32,
        fqdn: &DomainName,
    ) -> (Vec<Ipv4Addr>, u64) {
        let hour = self.profile.hour_of_day(t);
        let res = self
            .auth
            .resolve(&self.catalog, id, instance, hour, &mut self.rng);
        let qid = self.dns_id;
        self.dns_id = self.dns_id.wrapping_add(1);
        let sport = client.sport();
        let query = DnsMessage::query(qid, fqdn.clone(), QType::A);
        // CNAME-fronted names answer with the alias first, then the A
        // records under the alias — exactly what a CDN authority returns.
        let a_owner = res.cname.as_ref().unwrap_or(fqdn);
        let mut answers: Vec<ResourceRecord> = Vec::with_capacity(res.addrs.len() + 1);
        if let Some(cn) = &res.cname {
            answers.push(ResourceRecord {
                name: fqdn.clone(),
                class: QClass::In,
                ttl: res.ttl,
                rdata: RData::Cname(cn.clone()),
            });
        }
        answers.extend(res.addrs.iter().map(|ip| ResourceRecord {
            name: a_owner.clone(),
            class: QClass::In,
            ttl: res.ttl,
            rdata: RData::A(*ip),
        }));
        let response = DnsMessage::answer_to(&query, answers);
        let qframe = build_udp_v4(
            client.mac,
            GATEWAY_MAC,
            client.ip,
            DNS_SERVER,
            sport,
            53,
            &codec::encode(&query).expect("query encodes"),
        )
        .expect("query frame builds");
        let delay = (self.profile.tech.dns_delay_micros() as f64
            * (0.6 + self.rng.gen::<f64>() * 1.6)) as u64;
        let mut resp_ts = t + delay;
        self.frames.push((t, qframe));
        self.stats.dns_queries += 1;
        // Long answer lists don't fit a 512-byte UDP response: the server
        // sets the TC bit and the stub retries over TCP (RFC 1035 §4.2.2).
        if res.addrs.len() > 12 {
            let mut truncated = DnsMessage::error_to(&query, dnhunter_dns::Rcode::NoError);
            truncated.header.truncated = true;
            let tframe = build_udp_v4(
                GATEWAY_MAC,
                client.mac,
                DNS_SERVER,
                client.ip,
                53,
                sport,
                &codec::encode(&truncated).expect("truncated response encodes"),
            )
            .expect("truncated frame builds");
            self.frames.push((resp_ts, tframe));
            resp_ts = self.emit_dns_tcp_retry(client, resp_ts, &query, &response);
        } else {
            let rframe = build_udp_v4(
                GATEWAY_MAC,
                client.mac,
                DNS_SERVER,
                client.ip,
                53,
                sport,
                &codec::encode(&response).expect("response encodes"),
            )
            .expect("response frame builds");
            self.frames.push((resp_ts, rframe));
        }
        client.cache_put(fqdn.clone(), resp_ts, res.ttl, res.addrs.clone());
        (res.addrs, resp_ts)
    }

    /// The TCP retry after a truncated UDP response: handshake, framed
    /// query, framed response, orderly close. Returns the time the client
    /// had the full answer.
    fn emit_dns_tcp_retry(
        &mut self,
        client: &mut ClientState,
        t: u64,
        query: &DnsMessage,
        response: &DnsMessage,
    ) -> u64 {
        use dnhunter_net::{build_tcp_v4, TcpFlags};
        let sport = client.sport();
        let rtt = self.jittered_rtt().max(2_000);
        let half = rtt / 2;
        let qbytes = codec::encode_tcp(query).expect("query frames over TCP");
        let rbytes = codec::encode_tcp(response).expect("response frames over TCP");
        let mk = |src_client: bool, seq: u32, ack: u32, flags: TcpFlags, payload: &[u8]| {
            if src_client {
                build_tcp_v4(
                    client.mac,
                    GATEWAY_MAC,
                    client.ip,
                    DNS_SERVER,
                    sport,
                    53,
                    seq,
                    ack,
                    flags,
                    payload,
                )
            } else {
                build_tcp_v4(
                    GATEWAY_MAC,
                    client.mac,
                    DNS_SERVER,
                    client.ip,
                    53,
                    sport,
                    seq,
                    ack,
                    flags,
                    payload,
                )
            }
            .expect("dns tcp frame builds")
        };
        let mut ts = t + 1_000;
        self.frames.push((ts, mk(true, 1, 0, TcpFlags::SYN, &[])));
        ts += rtt;
        self.frames
            .push((ts, mk(false, 1, 2, TcpFlags::SYN | TcpFlags::ACK, &[])));
        ts += half;
        self.frames.push((ts, mk(true, 2, 2, TcpFlags::ACK, &[])));
        ts += 1_000;
        self.frames
            .push((ts, mk(true, 2, 2, TcpFlags::PSH | TcpFlags::ACK, &qbytes)));
        ts += rtt;
        self.frames.push((
            ts,
            mk(
                false,
                2,
                2 + qbytes.len() as u32,
                TcpFlags::PSH | TcpFlags::ACK,
                &rbytes,
            ),
        ));
        let answered = ts;
        ts += half;
        self.frames.push((
            ts,
            mk(
                true,
                2 + qbytes.len() as u32,
                2 + rbytes.len() as u32,
                TcpFlags::FIN | TcpFlags::ACK,
                &[],
            ),
        ));
        ts += half;
        self.frames.push((
            ts,
            mk(
                false,
                2 + rbytes.len() as u32,
                3 + qbytes.len() as u32,
                TcpFlags::FIN | TcpFlags::ACK,
                &[],
            ),
        ));
        answered
    }

    /// A failed resolution: the user followed a dead link or typo'd a name
    /// (NXDOMAIN). Pure DNS noise the sniffer must absorb.
    fn emit_nxdomain(&mut self, client: &mut ClientState, t: u64) {
        let qid = self.dns_id;
        self.dns_id = self.dns_id.wrapping_add(1);
        let sport = client.sport();
        let n = self.rng.gen::<u32>() % 100_000;
        let fqdn: DomainName = format!("www.no-such-site-{n}.com")
            .parse()
            .expect("generated name is valid");
        let query = DnsMessage::query(qid, fqdn, QType::A);
        let nx = DnsMessage::error_to(&query, dnhunter_dns::Rcode::NxDomain);
        let qframe = build_udp_v4(
            client.mac,
            GATEWAY_MAC,
            client.ip,
            DNS_SERVER,
            sport,
            53,
            &codec::encode(&query).expect("query encodes"),
        )
        .expect("query frame builds");
        let delay = (self.profile.tech.dns_delay_micros() as f64
            * (0.6 + self.rng.gen::<f64>() * 1.6)) as u64;
        let rframe = build_udp_v4(
            GATEWAY_MAC,
            client.mac,
            DNS_SERVER,
            client.ip,
            53,
            sport,
            &codec::encode(&nx).expect("nx encodes"),
        )
        .expect("nx frame builds");
        self.frames.push((t, qframe));
        self.frames.push((t + delay, rframe));
        self.stats.dns_queries += 1;
        self.stats.nxdomain += 1;
    }

    /// Prefetch: resolve on the wire (or silently skip if cached), no flow.
    fn resolve_only(&mut self, client: &mut ClientState, t: u64, id: ServiceId) {
        // A slice of speculative resolutions fail outright.
        if self.rng.gen::<f64>() < 0.06 {
            self.emit_nxdomain(client, t);
            return;
        }
        let instance = self.choose_instance(id);
        let fqdn = {
            let svc = self.catalog.service(id);
            svc.fqdn(self.catalog.domain(id).sld, instance)
        };
        if client.cache_get(&fqdn, t).is_some() {
            return; // already cached, browser doesn't re-resolve
        }
        self.emit_dns(client, t, id, instance, &fqdn);
        self.stats.prefetch_only += 1;
    }

    // ----------------------------------------------------------- tunnels

    /// 3G tunnel clients: everything rides one long-lived endpoint whose
    /// resolution happened out of sight.
    fn tunnel_flow(&mut self, client: &mut ClientState, t: u64) {
        let Some(id) = self.find_by_sld("opera-mini.net") else {
            return;
        };
        let instance = 0;
        let fqdn = {
            let svc = self.catalog.service(id);
            svc.fqdn(self.catalog.domain(id).sld, instance)
        };
        let servers = if let Some(entry) = client.cache_get(&fqdn, t) {
            entry.servers.clone()
        } else {
            // Resolved before the trace (or on another network): silent.
            let hour = self.profile.hour_of_day(t);
            let res = self
                .auth
                .resolve(&self.catalog, id, instance, hour, &mut self.rng);
            client.cache_put(fqdn.clone(), t, 7200, res.addrs.clone());
            self.stats.silent_resolutions += 1;
            res.addrs
        };
        let server = self.pick_server(&servers);
        let spec = FlowSpec {
            client: client.ip,
            server,
            client_mac: client.mac,
            server_mac: GATEWAY_MAC,
            sport: client.sport(),
            dport: 1080,
            start: t + 10_000,
            rtt: self.jittered_rtt(),
            // Opera Mini's transcoding socket is a proprietary binary
            // protocol, not TLS.
            style: PayloadStyle::BinaryTcp,
            fqdn: fqdn.to_string(),
            sld: "opera-mini.net".into(),
            cert: CertPolicy::Wildcard,
            resume: false,
            sni: false,
            cdn_cert_name: None,
            req_bytes: self.rng.gen_range(1_000..8_000),
            resp_bytes: self.rng.gen_range(4_000..60_000),
            seed: self.rng.gen(),
        };
        self.frames.extend(flowgen::synthesize(&spec));
        self.stats.flows += 1;
        self.stats.tunnel_flows += 1;
    }

    fn find_by_sld(&self, sld: &str) -> Option<ServiceId> {
        self.catalog
            .domains
            .iter()
            .position(|d| d.sld == sld)
            .map(|domain| ServiceId { domain, service: 0 })
    }

    // -------------------------------------------------------------- P2P

    fn simulate_p2p(&mut self, client: &mut ClientState, duration: u64) {
        let interval = self.profile.announce_interval_hours.max(0.05) * 3.6e9;
        let mut t = client.join_ts + self.exp(interval / 3.0);
        while t < duration {
            self.announce_and_swarm(client, t, duration);
            t += self.exp(interval);
        }
    }

    fn announce_and_swarm(&mut self, client: &mut ClientState, t: u64, duration: u64) {
        // Choose a tracker: live appspot trackers when available, the
        // public tracker population otherwise.
        let day = t as f64 / 86_400e6;
        let appspot_choice = if !self.trackers_live.is_empty() && self.rng.gen::<f64>() < 0.65 {
            let active = appspot::active_trackers(&self.trackers_live, day);
            if active.is_empty() {
                None
            } else {
                let pick = active[self.rng.gen_range(0..active.len())];
                Some((pick.service, pick.instance))
            }
        } else {
            None
        };
        match appspot_choice {
            Some((service, instance)) => {
                self.tracker_access(client, t, service, instance);
            }
            None => {
                if let Some(id) = self.sampler_tracker.sample(self.rng.gen()) {
                    let instance = self.choose_instance(id);
                    self.tracker_access(client, t, id, instance);
                }
            }
        }
        // The swarm: peer-wire flows to addresses learned from the tracker —
        // no DNS involved, ever.
        let peers = self.poisson(self.profile.peers_per_announce);
        for _ in 0..peers {
            let tp = t + (self.rng.gen::<f64>() * 300e6) as u64;
            if tp >= duration {
                continue;
            }
            let peer = Ipv4Addr::new(
                if self.rng.gen() { 171 } else { 186 },
                self.rng.gen(),
                self.rng.gen(),
                self.rng.gen_range(1..255),
            );
            let frames = flowgen::synthesize_peer_flow(
                client.ip,
                peer,
                client.mac,
                GATEWAY_MAC,
                client.sport(),
                tp,
                self.jittered_rtt() * 2,
                self.rng.gen_range(2_000..40_000),
                self.rng.gen(),
            );
            self.frames.extend(frames);
            self.stats.peer_flows += 1;
            self.stats.flows += 1;
        }
    }

    /// Tracker announce with an explicit instance (appspot schedules pick
    /// their own instance).
    fn tracker_access(&mut self, client: &mut ClientState, t: u64, id: ServiceId, instance: u32) {
        let (fqdn, sld, port) = {
            let svc = self.catalog.service(id);
            let dom = self.catalog.domain(id);
            (svc.fqdn(dom.sld, instance), dom.sld.to_string(), svc.port)
        };
        let Some((servers, start)) = self.ensure_resolved(client, t, id, instance, &fqdn) else {
            return;
        };
        let server = self.pick_server(&servers);
        let spec = FlowSpec {
            client: client.ip,
            server,
            client_mac: client.mac,
            server_mac: GATEWAY_MAC,
            sport: client.sport(),
            dport: port,
            start,
            rtt: self.jittered_rtt(),
            style: PayloadStyle::TrackerHttp,
            fqdn: fqdn.to_string(),
            sld,
            cert: CertPolicy::Exact,
            resume: false,
            sni: false,
            cdn_cert_name: None,
            req_bytes: self.rng.gen_range(600..1_400),
            resp_bytes: self.rng.gen_range(800..2_500),
            seed: self.rng.gen(),
        };
        self.frames.extend(flowgen::synthesize(&spec));
        self.stats.flows += 1;
        self.stats.tracker_announces += 1;
    }

    // ---------------------------------------------------------- sampling

    fn choose_instance(&mut self, id: ServiceId) -> u32 {
        let svc = self.catalog.service(id);
        if svc.instances <= 1 {
            return 0;
        }
        if svc.unbounded {
            // Birth process: new names keep appearing (Fig. 6).
            let next = self.instance_next.entry(id).or_insert(4);
            if self.rng.gen::<f64>() < 0.30 {
                let i = *next;
                *next += 1;
                i
            } else {
                let u: f64 = self.rng.gen();
                ((u * u) * (*next as f64)) as u32
            }
        } else {
            // Skewed towards low indices.
            let u: f64 = self.rng.gen();
            ((u * u * u) * svc.instances as f64) as u32
        }
    }

    fn pick_server(&mut self, servers: &[Ipv4Addr]) -> Ipv4Addr {
        // Clients overwhelmingly connect to the first answer; resolvers
        // already rotate the list for load balancing.
        if servers.len() == 1 || self.rng.gen::<f64>() < 0.97 {
            servers[0]
        } else {
            servers[self.rng.gen_range(0..servers.len())]
        }
    }

    fn jittered_rtt(&mut self) -> u64 {
        let base = self.profile.tech.rtt_micros() as f64;
        (base * (0.6 + self.rng.gen::<f64>() * 1.2)) as u64
    }

    /// First-flow delay distribution (Fig. 12): ~90% sub-second, ~5%
    /// 1–10 s, ~5% beyond 10 s (prefetch-then-use-later), scaled by access
    /// technology.
    fn first_flow_delay(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let ms = if u < 0.90 {
            self.log_uniform(20.0, 900.0)
        } else if u < 0.95 {
            self.log_uniform(1_000.0, 10_000.0)
        } else {
            self.log_uniform(10_000.0, 400_000.0)
        };
        let tech_factor = match self.profile.tech {
            crate::config::AccessTech::Ftth => 0.5,
            crate::config::AccessTech::Adsl => 1.0,
            crate::config::AccessTech::Mobile3g => 2.2,
        };
        (ms * tech_factor * 1_000.0) as u64
    }

    fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u: f64 = self.rng.gen();
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    }

    fn exp(&mut self, mean: f64) -> u64 {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        (-mean * u.ln()) as u64
    }

    fn poisson(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l || k > 1000 {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn tiny_profile() -> TraceProfile {
        let mut p = profiles::profile_by_name("EU1-FTTH").unwrap();
        p.clients = 6;
        p.duration_hours = 0.5;
        p
    }

    #[test]
    fn generates_sorted_parseable_frames() {
        let g = TraceGenerator::new(tiny_profile(), false);
        let trace = g.generate();
        assert!(trace.records.len() > 100, "got {}", trace.records.len());
        let mut last = 0;
        for r in &trace.records {
            assert!(r.timestamp_micros() >= last);
            last = r.timestamp_micros();
            dnhunter_net::Packet::parse(&r.frame).expect("every frame parses");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = TraceGenerator::new(tiny_profile(), false).generate();
        let b = TraceGenerator::new(tiny_profile(), false).generate();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[10], b.records[10]);
        let mut p2 = tiny_profile();
        p2.seed ^= 0xdead;
        let c = TraceGenerator::new(p2, false).generate();
        assert_ne!(a.records.len(), c.records.len());
    }

    #[test]
    fn stats_account_for_activity() {
        let trace = TraceGenerator::new(tiny_profile(), false).generate();
        let s = trace.stats;
        assert!(s.page_views > 0);
        assert!(s.flows > 0);
        assert!(s.dns_queries > 0);
        assert!(s.accesses >= s.page_views);
    }

    #[test]
    fn ptr_zone_is_populated() {
        let trace = TraceGenerator::new(tiny_profile(), false).generate();
        assert!(!trace.ptr_zone.is_empty());
    }

    #[test]
    fn pcap_roundtrip() {
        let trace = TraceGenerator::new(tiny_profile(), false).generate();
        let bytes = trace.write_pcap(Vec::new()).unwrap();
        let reader = dnhunter_net::PcapReader::new(std::io::Cursor::new(bytes)).unwrap();
        let n = reader.inspect(|r| assert!(r.is_ok())).count();
        assert_eq!(n, trace.records.len());
    }

    #[test]
    fn live_mode_includes_appspot_trackers() {
        let mut p = profiles::live_profile();
        p.clients = 16;
        p.p2p_client_fraction = 0.5;
        p.duration_hours = 24.0;
        let g = TraceGenerator::new(p, true);
        assert!(!g.tracker_schedules().is_empty());
        let trace = g.generate();
        assert!(trace.stats.tracker_announces > 0);
    }
}
