//! Per-client state: address, DNS cache, behavioural flags.

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use dnhunter_dns::DomainName;
use dnhunter_net::MacAddr;

/// Cap on how long a client honours a TTL (paper §6: "in practice, clients
/// cache responses for typically less than 1 hour").
pub const CLIENT_CACHE_CAP_MICROS: u64 = 3600 * 1_000_000;

/// Maximum cached names per client before the oldest half is dropped —
/// models OS-resolver memory limits ("Memory limit and timeout deletion
/// policies can affect caching").
pub const CLIENT_CACHE_MAX_ENTRIES: usize = 256;

/// One cached resolution.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Absolute (trace-relative) expiry in µs.
    pub expiry: u64,
    pub servers: Vec<Ipv4Addr>,
    /// Insertion time, for LRU-ish eviction.
    pub inserted: u64,
}

/// A monitored end host.
#[derive(Debug)]
pub struct ClientState {
    pub id: u32,
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    /// Ephemeral source port counter.
    next_sport: u16,
    cache: HashMap<DomainName, CacheEntry>,
    /// Runs BitTorrent.
    pub is_p2p: bool,
    /// All traffic tunnelled over one endpoint (3G profile).
    pub is_tunnel: bool,
    /// Joined mid-trace with a warm cache (mobility).
    pub join_ts: u64,
    pub is_mobile_arrival: bool,
    /// Dual-stack host: fetches some content over IPv6.
    pub is_dual_stack: bool,
}

impl ClientState {
    /// Build client `id` in the 10.0.0.0/16 plan.
    pub fn new(id: u32) -> Self {
        ClientState {
            id,
            ip: Ipv4Addr::new(10, 0, (id >> 8) as u8, (id & 0xff) as u8),
            mac: MacAddr::from_id(u64::from(id) + 10),
            next_sport: 20_000 + (id % 997) as u16,
            cache: HashMap::new(),
            is_p2p: false,
            is_tunnel: false,
            join_ts: 0,
            is_mobile_arrival: false,
            is_dual_stack: false,
        }
    }

    /// The client's IPv6 address (dual-stack hosts).
    pub fn ip6(&self) -> Ipv6Addr {
        let id = self.id;
        Ipv6Addr::new(0x2001, 0xdb8, 0x00aa, 0, 0, 0, (id >> 16) as u16, id as u16)
    }

    /// Next ephemeral port (wraps within 20000–61000).
    pub fn sport(&mut self) -> u16 {
        let p = self.next_sport;
        self.next_sport = if self.next_sport >= 61_000 {
            20_000
        } else {
            self.next_sport + 1
        };
        p
    }

    /// Fresh cached servers for `name` at time `now`, if any.
    pub fn cache_get(&self, name: &DomainName, now: u64) -> Option<&CacheEntry> {
        self.cache.get(name).filter(|e| e.expiry > now)
    }

    /// Insert a resolution; applies the 1 h cap and size limit.
    pub fn cache_put(&mut self, name: DomainName, now: u64, ttl_secs: u32, servers: Vec<Ipv4Addr>) {
        let ttl_micros = (u64::from(ttl_secs) * 1_000_000).min(CLIENT_CACHE_CAP_MICROS);
        if self.cache.len() >= CLIENT_CACHE_MAX_ENTRIES {
            self.evict_oldest_half();
        }
        self.cache.insert(
            name,
            CacheEntry {
                expiry: now + ttl_micros,
                servers,
                inserted: now,
            },
        );
    }

    /// Cached entries count (tests).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// True if the client ever resolved `name` in-trace (even if expired) —
    /// used to restrict pre-warm shortcuts to first contact.
    pub fn cache_has(&self, name: &DomainName) -> bool {
        self.cache.contains_key(name)
    }

    fn evict_oldest_half(&mut self) {
        let mut times: Vec<u64> = self.cache.values().map(|e| e.inserted).collect();
        times.sort_unstable();
        let cutoff = times[times.len() / 2];
        self.cache.retain(|_, e| e.inserted > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn client_addressing_is_stable() {
        let c = ClientState::new(0x0102);
        assert_eq!(c.ip, Ipv4Addr::new(10, 0, 1, 2));
        let c2 = ClientState::new(0x0102);
        assert_eq!(c.mac, c2.mac);
    }

    #[test]
    fn sport_wraps() {
        let mut c = ClientState::new(1);
        let first = c.sport();
        for _ in 0..50_000 {
            let p = c.sport();
            assert!((20_000..=61_000).contains(&p));
        }
        assert!((20_000..=61_000).contains(&first));
    }

    #[test]
    fn cache_respects_ttl_and_cap() {
        let mut c = ClientState::new(1);
        c.cache_put(name("a.com"), 0, 60, vec![Ipv4Addr::new(1, 1, 1, 1)]);
        assert!(c.cache_get(&name("a.com"), 59_000_000).is_some());
        assert!(c.cache_get(&name("a.com"), 61_000_000).is_none());
        // TTL above the cap is clamped to 1 h.
        c.cache_put(name("b.com"), 0, 86_400, vec![Ipv4Addr::new(2, 2, 2, 2)]);
        assert!(c
            .cache_get(&name("b.com"), CLIENT_CACHE_CAP_MICROS - 1)
            .is_some());
        assert!(c
            .cache_get(&name("b.com"), CLIENT_CACHE_CAP_MICROS + 1)
            .is_none());
    }

    #[test]
    fn cache_size_limit_evicts_oldest() {
        let mut c = ClientState::new(1);
        for i in 0..CLIENT_CACHE_MAX_ENTRIES + 10 {
            c.cache_put(
                name(&format!("host{i}.example.com")),
                i as u64,
                3600,
                vec![Ipv4Addr::new(9, 9, 9, 9)],
            );
        }
        assert!(c.cache_len() <= CLIENT_CACHE_MAX_ENTRIES);
        // The newest entry survives.
        let newest = format!("host{}.example.com", CLIENT_CACHE_MAX_ENTRIES + 9);
        assert!(c.cache_get(&name(&newest), 0).is_some());
    }
}
