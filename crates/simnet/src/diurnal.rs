//! The diurnal activity curve shared by client behaviour and CDN pool
//! expansion (Figs. 4, 5, 14 all show the same day/night swing).

/// Relative activity per local hour, 0–23. Shape: a residential-ISP curve —
/// minimum around 04:00, morning ramp, afternoon plateau, evening peak
/// around 21:00. Values are fractions of peak activity.
const HOURLY: [f64; 24] = [
    0.42, 0.30, 0.22, 0.17, 0.15, 0.17, 0.22, 0.32, // 00–07
    0.45, 0.55, 0.62, 0.66, 0.70, 0.68, 0.66, 0.68, // 08–15
    0.73, 0.80, 0.88, 0.95, 1.00, 1.00, 0.85, 0.60, // 16–23
];

/// Activity level in (0, 1] for a local-time hour (fractional hours are
/// interpolated linearly).
pub fn activity(hour: f64) -> f64 {
    let h = hour.rem_euclid(24.0);
    let i = h.floor() as usize % 24;
    let j = (i + 1) % 24;
    let frac = h - h.floor();
    HOURLY[i] * (1.0 - frac) + HOURLY[j] * frac
}

/// Integrate activity over `[start_hour, start_hour + duration_hours)`,
/// used to budget the total event count of a trace.
pub fn mean_activity(start_hour: f64, duration_hours: f64) -> f64 {
    let steps = (duration_hours * 4.0).ceil().max(1.0) as usize;
    let dt = duration_hours / steps as f64;
    let mut sum = 0.0;
    for k in 0..steps {
        sum += activity(start_hour + (k as f64 + 0.5) * dt);
    }
    sum / steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_late_evening_trough_is_early_morning() {
        assert!(activity(21.0) > activity(4.0) * 4.0);
        assert!((activity(20.5) - 1.0).abs() < 0.01);
    }

    #[test]
    fn interpolation_is_continuous() {
        for h in 0..48 {
            let x = h as f64 / 2.0;
            let a = activity(x);
            let b = activity(x + 0.01);
            assert!((a - b).abs() < 0.05, "jump at {x}: {a} vs {b}");
        }
    }

    #[test]
    fn wraps_midnight_and_negative() {
        assert!((activity(24.0) - activity(0.0)).abs() < 1e-12);
        assert!((activity(-1.0) - activity(23.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_activity_bounds() {
        let m = mean_activity(0.0, 24.0);
        assert!(m > 0.3 && m < 0.8, "mean {m}");
        // A peak-hours-only window has higher mean than a full day.
        assert!(mean_activity(18.0, 4.0) > m);
    }
}
