//! The content catalog: who owns which names, what services live under
//! them, and which organizations' servers deliver them.
//!
//! The catalog is the synthetic counterpart of "the web as seen from the
//! vantage point". Every domain/service that appears in the paper's
//! figures and tables is modelled here — LinkedIn's and Zynga's CDN split
//! (Figs. 7–8), the Facebook/Twitter/Dailymotion hosting matrices (Fig. 9),
//! the Amazon EC2 tenant mix (Tab. 5), the mail/chat/tracker services whose
//! tokens drive Tables 6–7, and the diurnally-expanding pools of Fig. 4.
//! Pool sizes are scaled down ~5–10× from the paper's absolute counts; the
//! relative ordering and temporal shape are preserved (see DESIGN.md).

use dnhunter_dns::DomainName;

use crate::config::Geography;
use crate::diurnal;

/// How a service's concrete FQDNs are formed below the domain's SLD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamePattern {
    /// The bare second-level domain (`zynga.com`).
    Apex,
    /// A fixed sub-name, possibly multi-label (`iphone.stats`).
    Fixed(&'static str),
    /// A numbered family; `{}` is replaced by the instance number
    /// (`media{}` → `media1`, `media2`, …).
    Numbered(&'static str),
}

/// What bytes the flow carries — selects the payload synthesizer and thereby
/// the DPI ground-truth class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadStyle {
    Http,
    Tls,
    Smtp,
    Pop3,
    Imap,
    Rtsp,
    Msn,
    Xmpp,
    /// HTTP BitTorrent tracker announce (DPI class: P2P).
    TrackerHttp,
    /// Opaque binary protocol (push services, proprietary messengers…).
    BinaryTcp,
}

/// Certificate behaviour of a TLS service (Tab. 4 classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertPolicy {
    /// CN equals the FQDN.
    Exact,
    /// Generic wildcard CN (`*.google.com`).
    Wildcard,
    /// CN names the hosting CDN's machine, not the service.
    CdnName,
}

/// Server-pool size over the day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoolSchedule {
    /// Constant pool.
    Flat(u32),
    /// Grows with the diurnal activity curve (fbcdn.net in Fig. 4).
    Diurnal { min: u32, max: u32 },
    /// Step change during an evening window (YouTube's 17:00–20:30 jump
    /// in Fig. 4).
    Step {
        base: u32,
        peak: u32,
        start_hour: f64,
        end_hour: f64,
    },
}

impl PoolSchedule {
    /// Active pool size at a local-time hour.
    pub fn size_at(&self, hour: f64) -> u32 {
        match *self {
            PoolSchedule::Flat(n) => n.max(1),
            PoolSchedule::Diurnal { min, max } => {
                let a = diurnal::activity(hour);
                let f = ((a - 0.15) / 0.85).clamp(0.0, 1.0);
                (min as f64 + (max.saturating_sub(min)) as f64 * f).round() as u32
            }
            PoolSchedule::Step {
                base,
                peak,
                start_hour,
                end_hour,
            } => {
                let h = hour.rem_euclid(24.0);
                if h >= start_hour && h < end_hour {
                    peak.max(1)
                } else {
                    base.max(1)
                }
            }
        }
    }

    /// The maximum size the schedule can reach (block allocation size).
    pub fn max_size(&self) -> u32 {
        match *self {
            PoolSchedule::Flat(n) => n.max(1),
            PoolSchedule::Diurnal { max, .. } => max.max(1),
            PoolSchedule::Step { base, peak, .. } => base.max(peak).max(1),
        }
    }
}

/// One hosting arrangement: an organization's pool serving a service, with
/// per-geography selection weight.
#[derive(Debug, Clone)]
pub struct Hosting {
    pub org: &'static str,
    pub pool: PoolSchedule,
    pub weight_us: f64,
    pub weight_eu: f64,
    /// Draw servers from the org's *shared* estate (same addresses serve
    /// many tenants — EC2, Akamai) rather than a dedicated block.
    pub shared: bool,
}

impl Hosting {
    /// Dedicated pool with equal weight in both geographies.
    pub fn new(org: &'static str, pool: PoolSchedule) -> Self {
        Hosting {
            org,
            pool,
            weight_us: 1.0,
            weight_eu: 1.0,
            shared: false,
        }
    }

    /// Set per-geography weights.
    pub fn geo(mut self, us: f64, eu: f64) -> Self {
        self.weight_us = us;
        self.weight_eu = eu;
        self
    }

    /// Mark as shared-estate hosting.
    pub fn shared(mut self) -> Self {
        self.shared = true;
        self
    }

    /// Selection weight for a geography.
    pub fn weight(&self, geo: Geography) -> f64 {
        match geo {
            Geography::Us => self.weight_us,
            Geography::Eu => self.weight_eu,
        }
    }
}

/// One service: a family of FQDNs under a domain, a layer-4 personality,
/// and its hosting arrangements.
#[derive(Debug, Clone)]
pub struct Service {
    pub pattern: NamePattern,
    /// Concrete FQDN instances for `Numbered` patterns.
    pub instances: u32,
    /// Unbounded instance space: fresh names keep appearing over time
    /// (drives the FQDN birth process of Fig. 6).
    pub unbounded: bool,
    pub port: u16,
    pub style: PayloadStyle,
    /// Relative access weight (before geography).
    pub popularity: f64,
    pub weight_us: f64,
    pub weight_eu: f64,
    /// DNS TTL seconds for this service's records.
    pub ttl: u32,
    /// Maximum answers per DNS response (answer-list rotation draws
    /// 1..=this, skewed towards 1).
    pub answers_max: u8,
    /// May be fetched as an embedded resource from any page.
    pub embeddable: bool,
    pub hosting: Vec<Hosting>,
    /// Probability multiplier that a client had this name cached before the
    /// trace started (warm OS caches → early sniffer misses).
    pub prewarm_boost: f64,
    /// Immediately follow an access with an access to this sub-name on the
    /// same servers (HTTP redirection → §6 label confusion).
    pub redirect_to: Option<&'static str>,
    /// Response body size range in KiB.
    pub resp_kib: (u32, u32),
    pub cert: CertPolicy,
    /// Pin each instance to one stable server (small dedicated sites) —
    /// the mass of single-IP FQDNs in Fig. 3's top plot.
    pub pinned: bool,
}

impl Service {
    /// A service with sensible defaults; tune with the builder methods.
    pub fn new(pattern: NamePattern, port: u16, style: PayloadStyle) -> Self {
        Service {
            pattern,
            instances: 1,
            unbounded: false,
            port,
            style,
            popularity: 1.0,
            weight_us: 1.0,
            weight_eu: 1.0,
            ttl: 300,
            answers_max: 3,
            embeddable: false,
            hosting: Vec::new(),
            prewarm_boost: 1.0,
            redirect_to: None,
            resp_kib: (2, 30),
            cert: CertPolicy::Exact,
            pinned: false,
        }
    }

    pub fn pop(mut self, p: f64) -> Self {
        self.popularity = p;
        self
    }
    pub fn geo(mut self, us: f64, eu: f64) -> Self {
        self.weight_us = us;
        self.weight_eu = eu;
        self
    }
    pub fn instances(mut self, n: u32) -> Self {
        self.instances = n.max(1);
        self
    }
    pub fn unbounded(mut self) -> Self {
        self.unbounded = true;
        self
    }
    pub fn ttl(mut self, t: u32) -> Self {
        self.ttl = t;
        self
    }
    pub fn answers(mut self, n: u8) -> Self {
        self.answers_max = n.max(1);
        self
    }
    pub fn embeddable(mut self) -> Self {
        self.embeddable = true;
        self
    }
    pub fn host(mut self, h: Hosting) -> Self {
        self.hosting.push(h);
        self
    }
    pub fn prewarm(mut self, f: f64) -> Self {
        self.prewarm_boost = f;
        self
    }
    pub fn redirect(mut self, sub: &'static str) -> Self {
        self.redirect_to = Some(sub);
        self
    }
    pub fn resp(mut self, lo: u32, hi: u32) -> Self {
        self.resp_kib = (lo, hi.max(lo));
        self
    }
    pub fn cert(mut self, c: CertPolicy) -> Self {
        self.cert = c;
        self
    }
    pub fn pinned(mut self) -> Self {
        self.pinned = true;
        self
    }

    /// Popularity weight in a geography.
    pub fn weight(&self, geo: Geography) -> f64 {
        self.popularity
            * match geo {
                Geography::Us => self.weight_us,
                Geography::Eu => self.weight_eu,
            }
    }

    /// The concrete FQDN of instance `i` under `sld`.
    pub fn fqdn(&self, sld: &str, i: u32) -> DomainName {
        let s = match self.pattern {
            NamePattern::Apex => sld.to_string(),
            NamePattern::Fixed(sub) => format!("{sub}.{sld}"),
            NamePattern::Numbered(pat) => {
                let sub = pat.replace("{}", &(i + 1).to_string());
                format!("{sub}.{sld}")
            }
        };
        s.parse().expect("catalog names are valid")
    }
}

/// A second-level domain and its services.
#[derive(Debug, Clone)]
pub struct Domain {
    pub sld: &'static str,
    pub services: Vec<Service>,
}

impl Domain {
    pub fn new(sld: &'static str, services: Vec<Service>) -> Self {
        Domain { sld, services }
    }
}

/// Identifies one service in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceId {
    pub domain: usize,
    pub service: usize,
}

/// The whole catalog plus samplers.
#[derive(Debug, Clone)]
pub struct Catalog {
    pub domains: Vec<Domain>,
}

impl Catalog {
    /// Service by id.
    pub fn service(&self, id: ServiceId) -> &Service {
        &self.domains[id.domain].services[id.service]
    }

    /// Domain of a service.
    pub fn domain(&self, id: ServiceId) -> &Domain {
        &self.domains[id.domain]
    }

    /// All service ids.
    pub fn service_ids(&self) -> Vec<ServiceId> {
        let mut out = Vec::new();
        for (d, dom) in self.domains.iter().enumerate() {
            for s in 0..dom.services.len() {
                out.push(ServiceId {
                    domain: d,
                    service: s,
                });
            }
        }
        out
    }

    /// Cumulative-weight sampler over all services for a geography.
    /// Returns (cumulative weights, ids); sample with a uniform draw in
    /// [0, total).
    pub fn sampler(&self, geo: Geography, filter: impl Fn(&Service) -> bool) -> ServiceSampler {
        let mut cum = Vec::new();
        let mut ids = Vec::new();
        let mut total = 0.0;
        for id in self.service_ids() {
            let svc = self.service(id);
            let w = svc.weight(geo);
            if w > 0.0 && filter(svc) {
                total += w;
                cum.push(total);
                ids.push(id);
            }
        }
        ServiceSampler { cum, ids, total }
    }
}

/// Weighted sampler over services.
#[derive(Debug, Clone)]
pub struct ServiceSampler {
    cum: Vec<f64>,
    ids: Vec<ServiceId>,
    total: f64,
}

impl ServiceSampler {
    /// Number of sampleable services.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is sampleable.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Map a uniform draw `u ∈ [0,1)` to a service.
    pub fn sample(&self, u: f64) -> Option<ServiceId> {
        if self.ids.is_empty() {
            return None;
        }
        let x = u.clamp(0.0, 0.999_999_9) * self.total;
        let i = self.cum.partition_point(|&c| c <= x);
        Some(self.ids[i.min(self.ids.len() - 1)])
    }
}

/// Build the catalog that backs all paper experiments. `include_appspot`
/// adds the `appspot.com` model used by the live-trace case study.
pub fn paper_catalog(include_appspot: bool) -> Catalog {
    use CertPolicy::*;
    use NamePattern::*;
    use PayloadStyle::*;
    use PoolSchedule::*;

    let mut domains = vec![
        // ------------------------------------------------------ google.com
        Domain::new(
            "google.com",
            vec![
                Service::new(Apex, 80, Http)
                    .pop(1.2)
                    .redirect("www")
                    .answers(16)
                    .ttl(300)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("www"), 80, Http)
                    .pop(7.0)
                    .answers(16)
                    .ttl(300)
                    .prewarm(2.5)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("mail"), 443, Tls)
                    .pop(3.5)
                    .answers(16)
                    .ttl(300)
                    .cert(Wildcard)
                    .prewarm(2.0)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("docs"), 443, Tls)
                    .pop(1.4)
                    .answers(8)
                    .cert(CdnName)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("accounts"), 443, Tls)
                    .pop(1.8)
                    .answers(8)
                    .cert(CdnName)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("maps"), 80, Http)
                    .pop(1.2)
                    .answers(8)
                    .host(Hosting::new("google", Flat(16)).shared()),
                Service::new(Fixed("scholar"), 443, Tls)
                    .pop(0.3)
                    .cert(Wildcard)
                    .host(Hosting::new("google", Flat(16)).shared()),
                // Gmail SMTP endpoints (Tab. 6 port 25: smtpN, mail, gmail,
                // aspmx tokens).
                Service::new(Numbered("smtp{}.mail"), 25, Smtp)
                    .instances(4)
                    .pop(0.5)
                    .geo(0.4, 1.0)
                    .host(Hosting::new("google", Flat(6)).shared()),
                Service::new(Fixed("aspmx.l.gmail"), 25, Smtp)
                    .pop(0.35)
                    .geo(0.4, 1.0)
                    .host(Hosting::new("google", Flat(4)).shared()),
                // Google Talk / Android push (Tab. 7 ports 5222/5228).
                Service::new(Fixed("chat"), 5222, Xmpp)
                    .pop(1.6)
                    .geo(2.2, 0.8)
                    .host(Hosting::new("google", Flat(8)).shared()),
                Service::new(Fixed("mtalk"), 5228, BinaryTcp)
                    .pop(2.8)
                    .geo(3.0, 0.5)
                    .ttl(1800)
                    .host(Hosting::new("google", Flat(8)).shared()),
            ],
        ),
        // ----------------------------------------------------- youtube.com
        Domain::new(
            "youtube.com",
            vec![
                Service::new(Fixed("www"), 80, Http)
                    .pop(5.5)
                    .answers(8)
                    .ttl(300)
                    .prewarm(1.6)
                    .resp(30, 400)
                    .host(Hosting::new(
                        "google",
                        Step {
                            base: 10,
                            peak: 60,
                            start_hour: 17.0,
                            end_hour: 20.5,
                        },
                    )),
                Service::new(Numbered("r{}.sn-cache"), 80, Http)
                    .instances(24)
                    .pop(3.0)
                    .embeddable()
                    .resp(100, 900)
                    .host(Hosting::new(
                        "google",
                        Step {
                            base: 12,
                            peak: 48,
                            start_hour: 17.0,
                            end_hour: 20.5,
                        },
                    )),
            ],
        ),
        // ----------------------------------------------------- ytimg.com
        Domain::new(
            "ytimg.com",
            vec![Service::new(Numbered("i{}"), 80, Http)
                .instances(4)
                .pop(1.8)
                .embeddable()
                .host(Hosting::new("google", Flat(8)).shared())],
        ),
        // --------------------------------------------------- blogspot.com
        Domain::new(
            "blogspot.com",
            vec![Service::new(Numbered("blog-{}"), 80, Http)
                .unbounded()
                .instances(600)
                .pop(3.6)
                .ttl(3600)
                .pinned()
                .host(Hosting::new("google", Flat(12)).shared())],
        ),
        // --------------------------------------------------- facebook.com
        Domain::new(
            "facebook.com",
            vec![
                Service::new(Apex, 80, Http)
                    .pop(1.5)
                    .redirect("www")
                    .host(Hosting::new("facebook", Diurnal { min: 12, max: 40 })),
                Service::new(Fixed("www"), 80, Http)
                    .pop(6.5)
                    .prewarm(2.2)
                    .ttl(900)
                    .host(Hosting::new("facebook", Diurnal { min: 12, max: 40 }).geo(1.0, 1.0))
                    .host(Hosting::new("akamai", Flat(6)).geo(0.10, 0.14).shared()),
                Service::new(Fixed("login"), 443, Tls)
                    .pop(2.2)
                    .cert(CdnName)
                    .host(Hosting::new("facebook", Diurnal { min: 8, max: 24 })),
                Service::new(Fixed("api"), 443, Tls)
                    .pop(1.6)
                    .cert(CdnName)
                    .host(Hosting::new("facebook", Diurnal { min: 8, max: 24 })),
            ],
        ),
        // ------------------------------------------------------ fbcdn.net
        Domain::new(
            "fbcdn.net",
            vec![
                Service::new(Numbered("photos-{}.ak"), 80, Http)
                    .unbounded()
                    .instances(400)
                    .pop(5.5)
                    .embeddable()
                    .answers(6)
                    .ttl(120)
                    .resp(10, 120)
                    .host(Hosting::new("akamai", Diurnal { min: 25, max: 120 }).shared()),
                Service::new(Numbered("static-{}.ak"), 80, Http)
                    .instances(12)
                    .pop(2.5)
                    .embeddable()
                    .answers(33)
                    .ttl(120)
                    .host(Hosting::new("akamai", Diurnal { min: 25, max: 120 }).shared()),
            ],
        ),
        // ---------------------------------------------------- twitter.com
        Domain::new(
            "twitter.com",
            vec![
                Service::new(Fixed("www"), 443, Tls)
                    .pop(3.2)
                    .cert(CdnName)
                    .ttl(600)
                    .prewarm(1.6)
                    .host(Hosting::new("twitter", Diurnal { min: 6, max: 20 }).geo(0.92, 0.55))
                    .host(Hosting::new("akamai", Flat(8)).geo(0.08, 0.45).shared()),
                Service::new(Fixed("api"), 443, Tls)
                    .pop(2.0)
                    .cert(CdnName)
                    .host(Hosting::new("twitter", Diurnal { min: 6, max: 20 }).geo(0.9, 0.6))
                    .host(Hosting::new("akamai", Flat(8)).geo(0.1, 0.4).shared()),
            ],
        ),
        // ------------------------------------------------------ twimg.com
        Domain::new(
            "twimg.com",
            vec![Service::new(Numbered("a{}"), 80, Http)
                .instances(5)
                .pop(2.2)
                .geo(1.0, 1.3)
                .embeddable()
                .ttl(120)
                .answers(4)
                .host(Hosting::new("amazon", Diurnal { min: 8, max: 30 }).shared())],
        ),
        // --------------------------------------------------- linkedin.com
        // Fig. 7: mediaN → Akamai (2 servers, 17% of flows); media →
        // EdgeCast (1 server, 59%); platform/staticN → CDNetworks (15
        // servers, 3%); www + others → LinkedIn itself (3 servers, 22%).
        Domain::new(
            "linkedin.com",
            vec![
                Service::new(Numbered("media{}"), 80, Http)
                    .instances(6)
                    .pop(0.34)
                    .geo(1.8, 0.8)
                    .ttl(600)
                    .host(Hosting::new("akamai", Flat(2))),
                Service::new(Fixed("media"), 80, Http)
                    .pop(1.18)
                    .geo(1.8, 0.8)
                    .ttl(600)
                    .host(Hosting::new("edgecast", Flat(1))),
                Service::new(Fixed("platform"), 80, Http)
                    .pop(0.03)
                    .host(Hosting::new("cdnetworks", Flat(15))),
                Service::new(Numbered("static{}"), 80, Http)
                    .instances(4)
                    .pop(0.03)
                    .host(Hosting::new("cdnetworks", Flat(15))),
                Service::new(Fixed("www"), 443, Tls)
                    .pop(0.36)
                    .geo(1.8, 0.8)
                    .cert(Exact)
                    .prewarm(1.4)
                    .host(Hosting::new("linkedin", Flat(3))),
                Service::new(Numbered("m{}"), 80, Http)
                    .instances(7)
                    .pop(0.08)
                    .geo(1.8, 0.8)
                    .host(Hosting::new("linkedin", Flat(3))),
            ],
        ),
        // ------------------------------------------------------ zynga.com
        // Fig. 8: games on Amazon EC2 (≈500 IPs, 86% of flows), static
        // assets on Akamai (30 IPs, 7%), MafiaWars & co. on Zynga's own
        // servers (28 IPs, 7%).
        Domain::new(
            "zynga.com",
            vec![
                Service::new(Fixed("farmville.facebook"), 80, Http)
                    .pop(1.1)
                    .ttl(60)
                    .answers(4)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("cityville"), 80, Http)
                    .pop(0.8)
                    .ttl(60)
                    .answers(4)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("petville"), 80, Http)
                    .pop(0.35)
                    .ttl(60)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("fishville.facebook"), 80, Http)
                    .pop(0.3)
                    .ttl(60)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("frontierville"), 80, Http)
                    .pop(0.3)
                    .ttl(60)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("treasure"), 80, Http)
                    .pop(0.2)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("cafe"), 80, Http)
                    .pop(0.2)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("poker"), 80, Http)
                    .pop(0.35)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("iphone.stats"), 80, Http)
                    .pop(0.25)
                    .geo(1.6, 0.6)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Numbered("fb_client_{}"), 80, Http)
                    .instances(9)
                    .pop(0.3)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("zbar"), 80, Http)
                    .pop(0.15)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("sslrewards"), 443, Tls)
                    .pop(0.12)
                    .cert(CdnName)
                    .host(Hosting::new("amazon", Diurnal { min: 40, max: 110 }).shared()),
                Service::new(Fixed("assets.static"), 80, Http)
                    .pop(0.28)
                    .embeddable()
                    .host(Hosting::new("akamai", Flat(30)).shared()),
                Service::new(Fixed("avatars.static"), 80, Http)
                    .pop(0.12)
                    .embeddable()
                    .host(Hosting::new("akamai", Flat(30)).shared()),
                Service::new(Fixed("mafiawars"), 80, Http)
                    .pop(0.25)
                    .host(Hosting::new("zynga", Flat(28))),
                Service::new(Fixed("vampires"), 80, Http)
                    .pop(0.08)
                    .host(Hosting::new("zynga", Flat(28))),
                Service::new(Numbered("streetracing.myspace{}"), 80, Http)
                    .instances(4)
                    .pop(0.07)
                    .geo(1.5, 0.4)
                    .host(Hosting::new("zynga", Flat(28))),
                Service::new(Fixed("www"), 80, Http)
                    .pop(0.12)
                    .host(Hosting::new("zynga", Flat(28))),
                Service::new(Numbered("secure{}"), 443, Tls)
                    .instances(3)
                    .pop(0.08)
                    .cert(Exact)
                    .host(Hosting::new("zynga", Flat(28))),
            ],
        ),
        // ---------------------------------------------------- dropbox.com
        Domain::new(
            "dropbox.com",
            vec![
                Service::new(Fixed("client"), 443, Tls)
                    .pop(1.4)
                    .cert(CdnName)
                    .ttl(300)
                    .resp(20, 400)
                    .host(Hosting::new("amazon", Diurnal { min: 15, max: 45 }).shared()),
                Service::new(Fixed("www"), 443, Tls)
                    .pop(0.5)
                    .cert(Exact)
                    .host(Hosting::new("amazon", Diurnal { min: 15, max: 45 }).shared()),
            ],
        ),
        // ------------------------------------------------ dailymotion.com
        // Fig. 9: Dedibox everywhere; self-hosting and Meta/NTT only in the
        // US view; EdgeCast only in the EU view.
        Domain::new(
            "dailymotion.com",
            vec![
                Service::new(Fixed("www"), 80, Http)
                    .pop(1.9)
                    .geo(0.8, 1.6)
                    .resp(50, 600)
                    .host(Hosting::new("dedibox", Diurnal { min: 8, max: 25 }).geo(0.45, 0.72))
                    .host(Hosting::new("dailymotion", Flat(6)).geo(0.40, 0.0))
                    .host(Hosting::new("meta", Flat(4)).geo(0.15, 0.0))
                    .host(Hosting::new("ntt", Flat(4)).geo(0.15, 0.0))
                    .host(Hosting::new("edgecast", Flat(3)).geo(0.0, 0.28)),
                Service::new(Numbered("proxy-{}"), 80, Http)
                    .instances(8)
                    .pop(0.9)
                    .geo(0.8, 1.5)
                    .embeddable()
                    .resp(100, 900)
                    .host(Hosting::new("dedibox", Diurnal { min: 8, max: 25 }).geo(0.6, 0.75))
                    .host(Hosting::new("meta", Flat(4)).geo(0.2, 0.0))
                    .host(Hosting::new("ntt", Flat(4)).geo(0.2, 0.0))
                    .host(Hosting::new("edgecast", Flat(3)).geo(0.0, 0.25)),
            ],
        ),
        // -------------------------------------- Amazon EC2 tenants (Tab. 5)
        Domain::new(
            "cloudfront.net",
            vec![Service::new(Numbered("d{}"), 80, Http)
                .unbounded()
                .instances(300)
                .pop(2.6)
                .geo(1.0, 1.9)
                .embeddable()
                .ttl(60)
                .answers(8)
                .host(Hosting::new("amazon", Diurnal { min: 20, max: 60 }).shared())],
        ),
        Domain::new(
            "invitemedia.com",
            vec![Service::new(Numbered("ad{}"), 80, Http)
                .instances(6)
                .pop(1.6)
                .geo(2.0, 0.5)
                .embeddable()
                .ttl(60)
                .host(Hosting::new("amazon", Flat(10)).shared())],
        ),
        Domain::new(
            "playfish.com",
            vec![Service::new(Fixed("cdn"), 80, Http)
                .pop(1.3)
                .geo(0.1, 2.4)
                .ttl(120)
                .host(Hosting::new("amazon", Flat(12)).shared())],
        ),
        Domain::new(
            "sharethis.com",
            vec![Service::new(Fixed("w"), 80, Http)
                .pop(1.0)
                .geo(1.3, 0.9)
                .embeddable()
                .ttl(300)
                .host(Hosting::new("amazon", Flat(8)).shared())],
        ),
        Domain::new(
            "rubiconproject.com",
            vec![Service::new(Fixed("optimized-by"), 80, Http)
                .pop(0.9)
                .geo(1.7, 0.5)
                .embeddable()
                .ttl(60)
                .host(Hosting::new("amazon", Flat(8)).shared())],
        ),
        Domain::new(
            "andomedia.com",
            vec![Service::new(Fixed("media"), 80, Http)
                .pop(0.7)
                .geo(1.4, 0.02)
                .embeddable()
                .host(Hosting::new("amazon", Flat(6)).shared())],
        ),
        Domain::new(
            "mobclix.com",
            vec![Service::new(Fixed("ads"), 80, Http)
                .pop(0.6)
                .geo(1.2, 0.02)
                .embeddable()
                .host(Hosting::new("amazon", Flat(6)).shared())],
        ),
        Domain::new(
            "admarvel.com",
            vec![Service::new(Fixed("ads"), 80, Http)
                .pop(0.5)
                .geo(1.1, 0.02)
                .embeddable()
                .host(Hosting::new("amazon", Flat(5)).shared())],
        ),
        Domain::new(
            "amazon.com",
            vec![Service::new(Fixed("www"), 80, Http)
                .pop(1.4)
                .geo(1.3, 0.5)
                .resp(20, 150)
                .host(Hosting::new("amazon", Flat(14)).shared())],
        ),
        Domain::new(
            "amazonaws.com",
            vec![Service::new(Numbered("s3-{}"), 80, Http)
                .instances(12)
                .pop(0.8)
                .geo(0.9, 1.0)
                .embeddable()
                .host(Hosting::new("amazon", Flat(16)).shared())],
        ),
        Domain::new(
            "imdb.com",
            vec![Service::new(Fixed("www"), 80, Http)
                .pop(0.5)
                .geo(0.5, 0.9)
                .host(Hosting::new("amazon", Flat(6)).shared())],
        ),
        // ------------------------------------------------------ apple.com
        Domain::new(
            "apple.com",
            vec![
                Service::new(Fixed("itunes"), 443, Tls)
                    .pop(1.5)
                    .cert(CdnName)
                    .host(Hosting::new("apple", Flat(6))),
                Service::new(Fixed("www"), 80, Http)
                    .pop(1.0)
                    .host(Hosting::new("apple", Flat(6))),
                // Apple push (Tab. 7 port 5223: courier/push tokens).
                Service::new(Numbered("courier{}.push"), 5223, BinaryTcp)
                    .instances(8)
                    .pinned()
                    .pop(0.9)
                    .geo(1.8, 0.6)
                    .ttl(1800)
                    .host(Hosting::new("apple", Flat(10))),
                Service::new(Fixed("imap.mail"), 143, Imap)
                    .pop(0.12)
                    .geo(0.6, 1.0)
                    .host(Hosting::new("apple", Flat(3))),
            ],
        ),
        // ----------------------------------------------------- flurry.com
        Domain::new(
            "flurry.com",
            vec![Service::new(Fixed("data"), 80, Http)
                .pop(1.1)
                .geo(1.8, 0.5)
                .embeddable()
                .ttl(600)
                .answers(3)
                .host(Hosting::new("flurry", Flat(3)))],
        ),
        // -------------------------------------------------- wikipedia.org
        Domain::new(
            "wikipedia.org",
            vec![Service::new(Fixed("en"), 80, Http)
                .pop(1.6)
                .ttl(3600)
                .host(Hosting::new("wikipedia", Flat(5)))],
        ),
        // ------------------------------------------------------ yahoo.com
        Domain::new(
            "yahoo.com",
            vec![
                Service::new(Fixed("www"), 80, Http)
                    .pop(1.4)
                    .host(Hosting::new("yahoo", Flat(8))),
                Service::new(Fixed("mail"), 443, Tls)
                    .pop(0.9)
                    .cert(Exact)
                    .host(Hosting::new("yahoo", Flat(8))),
                // Yahoo Messenger voice/chat (Tab. 7 port 5050).
                Service::new(Fixed("msg.webcs"), 5050, BinaryTcp)
                    .pop(0.55)
                    .geo(1.6, 0.3)
                    .host(Hosting::new("yahoo", Flat(4))),
                Service::new(Fixed("sip.voipa"), 5050, BinaryTcp)
                    .pop(0.25)
                    .geo(1.5, 0.3)
                    .host(Hosting::new("yahoo", Flat(4))),
            ],
        ),
        // ------------------------------------------- Italian mail provider
        // (Tab. 6 is from EU1-FTTH: classic ISP mail on 25/110/143/587/995.)
        Domain::new(
            "mailprovider.it",
            vec![
                Service::new(Numbered("smtp{}"), 25, Smtp)
                    .instances(3)
                    .pinned()
                    .pop(1.2)
                    .geo(0.15, 1.6)
                    .host(Hosting::new("mailprovider", Flat(4))),
                Service::new(Numbered("mail{}"), 25, Smtp)
                    .instances(4)
                    .pinned()
                    .pop(0.5)
                    .geo(0.1, 1.2)
                    .host(Hosting::new("mailprovider", Flat(4))),
                Service::new(Numbered("mx{}"), 25, Smtp)
                    .instances(3)
                    .pinned()
                    .pop(0.45)
                    .geo(0.1, 1.1)
                    .host(Hosting::new("mailprovider", Flat(4))),
                Service::new(Fixed("mailin.altn"), 25, Smtp)
                    .pop(0.3)
                    .geo(0.05, 0.9)
                    .host(Hosting::new("mailprovider", Flat(2))),
                Service::new(Fixed("pop.mail"), 110, Pop3)
                    .pop(1.6)
                    .geo(0.15, 1.8)
                    .prewarm(1.3)
                    .host(Hosting::new("mailprovider", Flat(4))),
                Service::new(Numbered("pop{}.mail"), 110, Pop3)
                    .instances(4)
                    .pinned()
                    .pop(0.8)
                    .geo(0.1, 1.4)
                    .host(Hosting::new("mailprovider", Flat(4))),
                Service::new(Fixed("mailbus"), 110, Pop3)
                    .pop(0.3)
                    .geo(0.05, 0.9)
                    .host(Hosting::new("mailprovider", Flat(2))),
                Service::new(Fixed("imap.mail"), 143, Imap)
                    .pop(0.5)
                    .geo(0.1, 1.3)
                    .host(Hosting::new("mailprovider", Flat(3))),
                Service::new(Fixed("pop.imap"), 143, Imap)
                    .pop(0.2)
                    .geo(0.05, 0.8)
                    .host(Hosting::new("mailprovider", Flat(3))),
                Service::new(Fixed("smtp.auth"), 587, Smtp)
                    .pop(0.35)
                    .geo(0.1, 1.0)
                    .host(Hosting::new("mailprovider", Flat(2))),
                Service::new(Fixed("pop.auth"), 587, Smtp)
                    .pop(0.12)
                    .geo(0.05, 0.6)
                    .host(Hosting::new("mailprovider", Flat(2))),
                Service::new(Fixed("imap.auth"), 587, Smtp)
                    .pop(0.06)
                    .geo(0.02, 0.5)
                    .host(Hosting::new("mailprovider", Flat(2))),
                Service::new(Numbered("pop{}.secure"), 995, Tls)
                    .instances(3)
                    .pinned()
                    .pop(0.7)
                    .geo(0.1, 1.4)
                    .cert(Exact)
                    .host(Hosting::new("mailprovider", Flat(3))),
                Service::new(Fixed("pop.mail.pec"), 995, Tls)
                    .pop(0.3)
                    .geo(0.0, 0.9)
                    .cert(Exact)
                    .host(Hosting::new("mailprovider", Flat(2))),
            ],
        ),
        // --------------------------------------------- Microsoft live/msn
        Domain::new(
            "live.com",
            vec![
                Service::new(Numbered("pop{}.hot.glbdns"), 995, Tls)
                    .instances(3)
                    .pop(0.6)
                    .geo(0.3, 1.2)
                    .cert(Wildcard)
                    .host(Hosting::new("microsoft", Flat(6))),
                Service::new(Fixed("mail.hot.glbdns"), 995, Tls)
                    .pop(0.3)
                    .geo(0.2, 0.9)
                    .cert(Wildcard)
                    .host(Hosting::new("microsoft", Flat(6))),
                Service::new(Fixed("www"), 443, Tls)
                    .pop(0.9)
                    .cert(Wildcard)
                    .host(Hosting::new("microsoft", Flat(10))),
            ],
        ),
        Domain::new(
            "msn.com",
            vec![
                // MSN Messenger (Tab. 6 port 1863).
                Service::new(Fixed("messenger"), 1863, Msn)
                    .pop(0.8)
                    .geo(0.5, 1.3)
                    .host(Hosting::new("microsoft", Flat(5))),
                Service::new(Fixed("relay.edge.messenger"), 1863, Msn)
                    .pop(0.25)
                    .geo(0.4, 1.0)
                    .host(Hosting::new("microsoft", Flat(5))),
                Service::new(Fixed("voice.relay.emea.messenger"), 1863, Msn)
                    .pop(0.15)
                    .geo(0.1, 0.9)
                    .host(Hosting::new("microsoft", Flat(5))),
                Service::new(Fixed("www"), 80, Http)
                    .pop(0.9)
                    .host(Hosting::new("microsoft", Flat(10))),
            ],
        ),
        // --------------------------------------------------- RTSP streaming
        Domain::new(
            "rai.it",
            vec![Service::new(Fixed("streaming"), 554, Rtsp)
                .pop(0.25)
                .geo(0.02, 0.9)
                .host(Hosting::new("smallhosts", Flat(3)))],
        ),
        // ------------------------------------------------------ opera mini
        Domain::new(
            "opera-mini.net",
            vec![Service::new(Numbered("mini{}.opera"), 1080, BinaryTcp)
                .instances(6)
                .pinned()
                .pop(0.7)
                .geo(1.8, 0.2)
                .ttl(1800)
                .host(Hosting::new("opera", Flat(6)))],
        ),
        // ----------------------------------------------------------- AOL
        Domain::new(
            "aol.com",
            vec![Service::new(Fixed("americaonline"), 5190, BinaryTcp)
                .pop(0.35)
                .geo(1.4, 0.1)
                .host(Hosting::new("aol", Flat(4)))],
        ),
        // ----------------------------------------------------- Second Life
        Domain::new(
            "lindenlab.com",
            vec![
                Service::new(Numbered("sim{}.agni"), 12043, BinaryTcp)
                    .instances(12)
                    .pinned()
                    .pop(0.4)
                    .geo(1.5, 0.1)
                    .ttl(1800)
                    .host(Hosting::new("lindenlab", Flat(16))),
                Service::new(Numbered("sim{}.agni"), 12046, BinaryTcp)
                    .instances(12)
                    .pinned()
                    .pop(0.3)
                    .geo(1.4, 0.1)
                    .ttl(1800)
                    .host(Hosting::new("lindenlab", Flat(16))),
            ],
        ),
        // ------------------------------------------------- BitTorrent trackers
        Domain::new(
            "1337x.org",
            vec![
                Service::new(Fixed("exodus"), 1337, TrackerHttp)
                    .pop(0.9)
                    .geo(1.6, 0.7)
                    .ttl(1800)
                    .host(Hosting::new("smallhosts", Flat(2))),
                Service::new(Fixed("genesis"), 1337, TrackerHttp)
                    .pop(0.45)
                    .geo(1.5, 0.6)
                    .ttl(1800)
                    .host(Hosting::new("smallhosts", Flat(2))),
            ],
        ),
        Domain::new(
            "openbittorrent.org",
            vec![
                Service::new(Fixed("tracker"), 2710, TrackerHttp)
                    .pop(0.7)
                    .geo(1.3, 0.9)
                    .ttl(1800)
                    .host(Hosting::new("smallhosts", Flat(2))),
                Service::new(Fixed("www.tracker"), 2710, TrackerHttp)
                    .pop(0.12)
                    .geo(1.1, 0.7)
                    .host(Hosting::new("smallhosts", Flat(1))),
            ],
        ),
        Domain::new(
            "publicbt.org",
            vec![
                Service::new(Fixed("tracker"), 6969, TrackerHttp)
                    .pop(0.9)
                    .geo(1.3, 1.0)
                    .ttl(1800)
                    .host(Hosting::new("smallhosts", Flat(3))),
                Service::new(Numbered("tracker{}"), 6969, TrackerHttp)
                    .instances(4)
                    .pinned()
                    .pop(0.25)
                    .geo(1.2, 0.8)
                    .host(Hosting::new("smallhosts", Flat(2))),
                Service::new(Fixed("torrent.exodus"), 6969, TrackerHttp)
                    .pop(0.12)
                    .geo(1.1, 0.6)
                    .host(Hosting::new("smallhosts", Flat(1))),
            ],
        ),
        Domain::new(
            "btdig.org",
            vec![Service::new(Fixed("useful.broker"), 18182, TrackerHttp)
                .pop(0.5)
                .geo(1.5, 0.4)
                .ttl(1800)
                .host(Hosting::new("smallhosts", Flat(2)))],
        ),
        // ------------------------------- small CDN tenants (Fig. 5 tail)
        Domain::new(
            "streamcdn.net",
            vec![Service::new(Numbered("edge{}"), 80, Http)
                .instances(6)
                .pop(0.5)
                .embeddable()
                .ttl(120)
                .host(Hosting::new("level 3", Flat(8)))],
        ),
        Domain::new(
            "filepush.net",
            vec![Service::new(Numbered("dl{}"), 80, Http)
                .instances(5)
                .pop(0.4)
                .embeddable()
                .ttl(300)
                .host(Hosting::new("leaseweb", Flat(6)))],
        ),
        Domain::new(
            "adimg.net",
            vec![Service::new(Numbered("img{}"), 80, Http)
                .instances(4)
                .pop(0.35)
                .embeddable()
                .ttl(120)
                .host(Hosting::new("cotendo", Flat(4)))],
        ),
        // ----------------------------------------- long tail of small sites
        Domain::new(
            "smallsites.net",
            vec![Service::new(Numbered("site-{}"), 80, Http)
                .unbounded()
                .instances(2000)
                .pop(12.0)
                .ttl(3600)
                .pinned()
                .host(Hosting::new("smallhosts", Flat(2000)))],
        ),
        Domain::new(
            "smallsecure.net",
            vec![Service::new(Numbered("shop-{}"), 443, Tls)
                .unbounded()
                .instances(800)
                .pop(3.2)
                .cert(Exact)
                .ttl(3600)
                .pinned()
                .host(Hosting::new("smallhosts", Flat(800)))],
        ),
    ];

    if include_appspot {
        domains.push(appspot_domain());
    }

    Catalog { domains }
}

/// The `appspot.com` model (§5.6): Google-hosted web apps, a third of which
/// turn out to be BitTorrent trackers. Tracker activity schedules live in
/// [`crate::appspot`]; this is just the name/hosting structure.
pub fn appspot_domain() -> Domain {
    use NamePattern::*;
    use PayloadStyle::*;
    use PoolSchedule::*;

    Domain::new(
        "appspot.com",
        vec![
            // The 45 trackers of Fig. 11, across a few name families so the
            // tag cloud (Fig. 10) shows the paper's flavour of names.
            Service::new(Numbered("open-tracker-{}"), 80, TrackerHttp)
                .instances(15)
                .pop(1.2)
                .ttl(600)
                .host(Hosting::new("google", Flat(10)).shared()),
            Service::new(Numbered("rlskingbt-{}"), 80, TrackerHttp)
                .instances(12)
                .pop(0.9)
                .ttl(600)
                .host(Hosting::new("google", Flat(10)).shared()),
            Service::new(Numbered("bt-swarm-{}"), 80, TrackerHttp)
                .instances(10)
                .pop(0.7)
                .ttl(600)
                .host(Hosting::new("google", Flat(10)).shared()),
            Service::new(Numbered("annex-tracker-{}"), 80, TrackerHttp)
                .instances(8)
                .pop(0.5)
                .ttl(600)
                .host(Hosting::new("google", Flat(10)).shared()),
            // Legitimate apps: many names, fewer flows each, fat downloads
            // (Tab. 8's General Services row).
            Service::new(Numbered("game-{}"), 80, Http)
                .unbounded()
                .instances(300)
                .pop(2.4)
                .resp(30, 200)
                .ttl(600)
                .host(Hosting::new("google", Flat(12)).shared()),
            Service::new(Numbered("tool-{}"), 80, Http)
                .unbounded()
                .instances(250)
                .pop(1.9)
                .resp(30, 160)
                .ttl(600)
                .host(Hosting::new("google", Flat(12)).shared()),
            Service::new(Numbered("blogapp-{}"), 80, Http)
                .unbounded()
                .instances(280)
                .pop(1.7)
                .resp(20, 120)
                .ttl(600)
                .host(Hosting::new("google", Flat(12)).shared()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_and_names_are_valid() {
        let c = paper_catalog(true);
        assert!(c.domains.len() > 25);
        for id in c.service_ids() {
            let svc = c.service(id);
            let dom = c.domain(id);
            // Every pattern expands to a valid name for a few instances.
            for i in 0..3.min(svc.instances) {
                let f = svc.fqdn(dom.sld, i);
                assert!(f.label_count() >= 2, "{f}");
            }
            assert!(!svc.hosting.is_empty(), "{} has no hosting", dom.sld);
        }
    }

    #[test]
    fn fqdn_patterns() {
        let s = Service::new(NamePattern::Apex, 80, PayloadStyle::Http);
        assert_eq!(s.fqdn("zynga.com", 0).to_string(), "zynga.com");
        let s = Service::new(NamePattern::Fixed("iphone.stats"), 80, PayloadStyle::Http);
        assert_eq!(s.fqdn("zynga.com", 0).to_string(), "iphone.stats.zynga.com");
        let s = Service::new(NamePattern::Numbered("media{}"), 80, PayloadStyle::Http);
        assert_eq!(s.fqdn("linkedin.com", 0).to_string(), "media1.linkedin.com");
        assert_eq!(s.fqdn("linkedin.com", 4).to_string(), "media5.linkedin.com");
    }

    #[test]
    fn pool_schedules() {
        let flat = PoolSchedule::Flat(7);
        assert_eq!(flat.size_at(3.0), 7);
        assert_eq!(flat.max_size(), 7);

        let di = PoolSchedule::Diurnal { min: 10, max: 100 };
        assert!(di.size_at(21.0) > di.size_at(4.0) * 3);
        assert_eq!(di.max_size(), 100);

        let step = PoolSchedule::Step {
            base: 10,
            peak: 60,
            start_hour: 17.0,
            end_hour: 20.5,
        };
        assert_eq!(step.size_at(12.0), 10);
        assert_eq!(step.size_at(18.0), 60);
        assert_eq!(step.size_at(20.4), 60);
        assert_eq!(step.size_at(20.6), 10);
    }

    #[test]
    fn sampler_respects_geography() {
        let c = paper_catalog(false);
        let us = c.sampler(Geography::Us, |_| true);
        let eu = c.sampler(Geography::Eu, |_| true);
        assert!(!us.is_empty() && !eu.is_empty());
        // andomedia is US-only in practice (weight_eu = 0.02): count
        // samples landing on it across a deterministic sweep.
        let andomedia: Vec<usize> = c
            .service_ids()
            .iter()
            .enumerate()
            .filter(|(_, id)| c.domain(**id).sld == "andomedia.com")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(andomedia.len(), 1);
        let mut us_hits = 0;
        let mut eu_hits = 0;
        for k in 0..20_000 {
            let u = (k as f64 + 0.5) / 20_000.0;
            if c.domain(us.sample(u).unwrap()).sld == "andomedia.com" {
                us_hits += 1;
            }
            if c.domain(eu.sample(u).unwrap()).sld == "andomedia.com" {
                eu_hits += 1;
            }
        }
        assert!(us_hits > eu_hits * 5, "us={us_hits} eu={eu_hits}");
    }

    #[test]
    fn sampler_filter_restricts() {
        let c = paper_catalog(false);
        let only_tls = c.sampler(Geography::Eu, |s| s.style == PayloadStyle::Tls);
        for k in 0..100 {
            let id = only_tls.sample(k as f64 / 100.0).unwrap();
            assert_eq!(c.service(id).style, PayloadStyle::Tls);
        }
    }

    #[test]
    fn appspot_included_only_on_request() {
        let without = paper_catalog(false);
        let with = paper_catalog(true);
        assert!(!without.domains.iter().any(|d| d.sld == "appspot.com"));
        assert!(with.domains.iter().any(|d| d.sld == "appspot.com"));
    }

    #[test]
    fn embeddables_exist_in_both_geographies() {
        let c = paper_catalog(false);
        for geo in [Geography::Us, Geography::Eu] {
            let s = c.sampler(geo, |svc| svc.embeddable);
            assert!(s.len() > 4, "{geo:?} has too few embeddables");
        }
    }
}
