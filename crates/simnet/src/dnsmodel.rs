//! The authoritative side of the synthetic DNS: which addresses a name
//! resolves to at a given time, including CDN pool rotation, diurnal pool
//! expansion, and per-geography hosting selection.

use std::net::Ipv4Addr;

use rand::Rng;

use crate::address::{AddressAllocator, SHARED_POOL};
use crate::catalog::{Catalog, NamePattern, Service, ServiceId};
use crate::config::Geography;

/// Size of each organization's *shared* server estate (hosts serving many
/// tenants at once — what makes a single `serverIP` carry many FQDNs).
/// CDNs that front customer names through CNAME chains, and the zone the
/// alias lives in.
fn cname_zone(org: &str) -> Option<&'static str> {
    match org {
        "akamai" => Some("edgekey.net"),
        "edgecast" => Some("edgecastcdn.net"),
        "cdnetworks" => Some("cdngc.net"),
        "limelight" => Some("lldns.net"),
        _ => None,
    }
}

fn shared_estate_size(org: &str) -> u32 {
    match org {
        "amazon" => 320,
        "akamai" => 200,
        "google" => 48,
        "microsoft" => 24,
        _ => 32,
    }
}

/// Result of one resolution.
#[derive(Debug, Clone)]
pub struct Resolution {
    pub addrs: Vec<Ipv4Addr>,
    pub ttl: u32,
    /// Organization that will serve this access (selected hosting).
    pub org: &'static str,
    /// CNAME the queried name aliases to, when the CDN fronts it
    /// (`www.zynga.com → www.zynga.com.edgekey.net`).
    pub cname: Option<dnhunter_dns::DomainName>,
}

/// Stateless resolver over the catalog + address allocator.
pub struct AuthoritativeDns {
    allocator: AddressAllocator,
    geography: Geography,
}

impl AuthoritativeDns {
    /// Build for a vantage-point geography.
    pub fn new(geography: Geography) -> Self {
        AuthoritativeDns {
            allocator: AddressAllocator::new(),
            geography,
        }
    }

    /// Resolve instance `i` of a service at local-time `hour`.
    pub fn resolve<R: Rng>(
        &mut self,
        catalog: &Catalog,
        id: ServiceId,
        instance: u32,
        hour: f64,
        rng: &mut R,
    ) -> Resolution {
        let svc = catalog.service(id);
        let dom = catalog.domain(id);
        let hosting = pick_hosting(svc, self.geography, rng);
        let h = &svc.hosting[hosting];
        let pool_size = h.pool.size_at(hour).max(1);
        // Pinned services (small dedicated sites) always resolve to the one
        // stable server their instance hashes to.
        let (k, rot) = if svc.pinned {
            let full = h.pool.max_size().max(1);
            (1, fnv(&instance.to_le_bytes()) as u32 % full)
        } else if svc.unbounded {
            // Content-hash names (CDN photo/object families) map to a
            // cluster that only drifts a few times a day — repeat accesses
            // mostly see the same front end. The window is laid out over
            // the *full* pool so it stays stable while the active pool
            // breathes diurnally.
            let full = h.pool.max_size().max(1);
            let k = answer_count(svc.answers_max, full, rng);
            let drift = (hour / 12.0) as u32;
            (
                k,
                (fnv(&instance.to_le_bytes()) as u32).wrapping_add(drift) % full,
            )
        } else {
            let k = answer_count(svc.answers_max, pool_size, rng);
            (k, rng.gen_range(0..pool_size))
        };
        let mut addrs = Vec::with_capacity(k as usize);
        let modulus = if svc.pinned || svc.unbounded {
            h.pool.max_size().max(1)
        } else {
            pool_size
        };
        for j in 0..k {
            let index = (rot + j) % modulus;
            let ip = if h.shared {
                let estate = shared_estate_size(h.org);
                // Each tenant service occupies a window of the shared
                // estate; windows overlap across tenants.
                let base = fnv(dom.sld.as_bytes()) as u32 % estate;
                self.allocator
                    .server_ip(h.org, SHARED_POOL, estate, (base + index) % estate)
            } else {
                let key = dedicated_pool_key(dom.sld, id, hosting);
                self.allocator
                    .server_ip(h.org, key, h.pool.max_size(), index)
            };
            if !addrs.contains(&ip) {
                addrs.push(ip);
            }
        }
        // Front servers of self-hosted `www` names get exact PTR records
        // (Tab. 3's "Same FQDN" class).
        if !h.shared && matches!(svc.pattern, NamePattern::Fixed("www")) {
            if let Some(first) = addrs.first() {
                let fqdn = svc.fqdn(dom.sld, instance);
                self.allocator.register_exact_ptr(*first, &fqdn);
            }
        }
        // Small dedicated servers often carry customer-set reverse records:
        // some match the site exactly, some are generic host names under
        // the site's domain, some were never configured.
        if svc.pinned {
            if let Some(first) = addrs.first() {
                let o = first.octets();
                match fnv(&o) % 100 {
                    0..=6 => {
                        let fqdn = svc.fqdn(dom.sld, instance);
                        self.allocator.register_exact_ptr(*first, &fqdn);
                    }
                    7..=72 => {
                        let host: dnhunter_dns::DomainName =
                            format!("host{}.{}", fnv(&o) % 97, dom.sld)
                                .parse()
                                .expect("generated name is valid");
                        self.allocator.register_exact_ptr(*first, &host);
                    }
                    _ => {} // no reverse record
                }
            }
        }
        // CDN-fronted names alias into the CDN's zone. Only fixed-name
        // services of customer domains get the chain (content-hash CDN
        // families are already CDN-owned names).
        let cname = match (cname_zone(h.org), svc.pattern) {
            (Some(zone), NamePattern::Fixed(_) | NamePattern::Apex) if rng.gen::<f64>() < 0.6 => {
                let fqdn = svc.fqdn(dom.sld, instance);
                format!("{fqdn}.{zone}").parse().ok()
            }
            _ => None,
        };
        Resolution {
            addrs,
            ttl: svc.ttl,
            org: h.org,
            cname,
        }
    }

    /// Hand over the accumulated reverse zone.
    pub fn into_ptr_zone(self) -> crate::address::PtrZone {
        self.allocator.into_ptr_zone()
    }

    /// Peek at the reverse zone.
    pub fn ptr_zone(&self) -> &crate::address::PtrZone {
        self.allocator.ptr_zone()
    }
}

/// Weighted hosting choice for the geography.
fn pick_hosting<R: Rng>(svc: &Service, geo: Geography, rng: &mut R) -> usize {
    let total: f64 = svc.hosting.iter().map(|h| h.weight(geo)).sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, h) in svc.hosting.iter().enumerate() {
        x -= h.weight(geo);
        if x <= 0.0 {
            return i;
        }
    }
    svc.hosting.len() - 1
}

/// Answer-list length: mostly 1, sometimes up to `max` (paper §6: ~60% of
/// responses carry one address, 20–25% carry 2–10, a few carry 16+).
fn answer_count<R: Rng>(answers_max: u8, pool: u32, rng: &mut R) -> u32 {
    let max = u32::from(answers_max).min(pool).max(1);
    if max == 1 || rng.gen::<f64>() < 0.6 {
        1
    } else {
        rng.gen_range(2..=max)
    }
}

/// Stable pool key for a dedicated hosting arrangement.
fn dedicated_pool_key(sld: &str, id: ServiceId, hosting: usize) -> u64 {
    let mut h = fnv(sld.as_bytes());
    h = h
        .wrapping_mul(0x100000001b3)
        .wrapping_add(id.service as u64 + 1);
    h.wrapping_mul(0x100000001b3)
        .wrapping_add(hosting as u64 + 1)
        | 1 // never collide with SHARED_POOL (0)
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::paper_catalog;
    use dnhunter_orgdb::builtin_registry;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::net::IpAddr;

    fn find_service(c: &Catalog, sld: &str, pred: impl Fn(&Service) -> bool) -> ServiceId {
        for id in c.service_ids() {
            if c.domain(id).sld == sld && pred(c.service(id)) {
                return id;
            }
        }
        panic!("service not found under {sld}");
    }

    #[test]
    fn resolution_lands_in_announced_prefixes() {
        let c = paper_catalog(false);
        let db = builtin_registry();
        let mut auth = AuthoritativeDns::new(Geography::Eu);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for id in c.service_ids() {
            let r = auth.resolve(&c, id, 0, 21.0, &mut rng);
            assert!(!r.addrs.is_empty());
            for ip in &r.addrs {
                let org = db.org_name(IpAddr::V4(*ip));
                assert_eq!(org, r.org, "service under {}", c.domain(id).sld);
            }
        }
    }

    #[test]
    fn google_answers_can_be_long() {
        let c = paper_catalog(false);
        let id = find_service(&c, "google.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("www"))
        });
        let mut auth = AuthoritativeDns::new(Geography::Eu);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut max_seen = 0;
        for _ in 0..200 {
            let r = auth.resolve(&c, id, 0, 12.0, &mut rng);
            max_seen = max_seen.max(r.addrs.len());
        }
        assert!(max_seen >= 10, "expected long answer lists, max={max_seen}");
    }

    #[test]
    fn diurnal_pools_touch_more_servers_at_peak() {
        // Use a bounded diurnal service: unbounded families use stable
        // per-instance windows instead of random rotation.
        let c = paper_catalog(false);
        let id = find_service(&c, "facebook.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("www"))
        });
        let mut auth = AuthoritativeDns::new(Geography::Eu);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let distinct = |auth: &mut AuthoritativeDns, rng: &mut ChaCha8Rng, hour: f64| {
            let mut set = std::collections::HashSet::new();
            for _ in 0..300 {
                for ip in auth.resolve(&c, id, 0, hour, rng).addrs {
                    set.insert(ip);
                }
            }
            set.len()
        };
        let night = distinct(&mut auth, &mut rng, 4.0);
        let peak = distinct(&mut auth, &mut rng, 20.0);
        assert!(
            peak as f64 > night as f64 * 2.0,
            "peak {peak} vs night {night}"
        );
    }

    #[test]
    fn shared_estate_overlaps_tenants() {
        // Two Amazon tenants must share at least one server address.
        let c = paper_catalog(false);
        let zynga = find_service(&c, "zynga.com", |s| s.popularity > 1.0);
        let dropbox = find_service(&c, "dropbox.com", |s| s.popularity > 1.0);
        let mut auth = AuthoritativeDns::new(Geography::Us);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut zset = std::collections::HashSet::new();
        let mut dset = std::collections::HashSet::new();
        for _ in 0..500 {
            zset.extend(auth.resolve(&c, zynga, 0, 20.0, &mut rng).addrs);
            dset.extend(auth.resolve(&c, dropbox, 0, 20.0, &mut rng).addrs);
        }
        assert!(
            zset.intersection(&dset).count() > 0,
            "EC2 tenants should share servers"
        );
    }

    #[test]
    fn geography_changes_hosting_mix() {
        let c = paper_catalog(false);
        let id = find_service(&c, "twitter.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("www"))
        });
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let db = builtin_registry();
        let count_akamai = |geo: Geography, rng: &mut ChaCha8Rng| {
            let mut auth = AuthoritativeDns::new(geo);
            let mut n = 0;
            for _ in 0..400 {
                let r = auth.resolve(&c, id, 0, 15.0, rng);
                if db.org_name(IpAddr::V4(r.addrs[0])) == "akamai" {
                    n += 1;
                }
            }
            n
        };
        let us = count_akamai(Geography::Us, &mut rng);
        let eu = count_akamai(Geography::Eu, &mut rng);
        assert!(eu > us * 2, "akamai share EU {eu} vs US {us}");
    }

    #[test]
    fn cdn_fronted_names_get_cname_chains() {
        let c = paper_catalog(false);
        // linkedin's `media` service is EdgeCast-fronted.
        let id = find_service(&c, "linkedin.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("media"))
        });
        let mut auth = AuthoritativeDns::new(Geography::Eu);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut with_cname = 0;
        for _ in 0..50 {
            let r = auth.resolve(&c, id, 0, 12.0, &mut rng);
            if let Some(cn) = &r.cname {
                assert!(cn.to_string().ends_with("edgecastcdn.net"));
                assert!(cn.to_string().starts_with("media.linkedin.com"));
                with_cname += 1;
            }
        }
        assert!(
            with_cname > 10,
            "cname chains should be common: {with_cname}"
        );
        // Self-hosted services never alias.
        let www = find_service(&c, "linkedin.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("www"))
        });
        for _ in 0..20 {
            assert!(auth.resolve(&c, www, 0, 12.0, &mut rng).cname.is_none());
        }
    }

    #[test]
    fn www_front_servers_get_exact_ptr() {
        let c = paper_catalog(false);
        let id = find_service(&c, "linkedin.com", |s| {
            matches!(s.pattern, NamePattern::Fixed("www"))
        });
        let mut auth = AuthoritativeDns::new(Geography::Us);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let r = auth.resolve(&c, id, 0, 12.0, &mut rng);
        let zone = auth.ptr_zone();
        let ptr = zone.lookup(IpAddr::V4(r.addrs[0])).unwrap();
        assert_eq!(ptr.to_string(), "www.linkedin.com");
    }
}
