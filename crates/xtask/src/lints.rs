//! The DN-Hunter invariant lints (L1–L5).
//!
//! Each lint is a pass over a [`SourceFile`] (comments and string bodies
//! already blanked, test spans marked) and reports [`Violation`]s. Lints are
//! suppressible per line or per item with `// allow_lint(Lx): reason`
//! marker comments; a marker with a missing reason or unknown lint id is
//! itself an error (`M1`), so the allowlist stays auditable.
//!
//! | id | invariant |
//! |----|-----------|
//! | L1 | no `unwrap`/`expect`/panicking macros/unchecked indexing in hot-path crates |
//! | L2 | no default-hasher `HashMap` in per-packet paths |
//! | L3 | no lock guard held across another lock/shard/eviction call |
//! | L4 | every public item in `resolver`/`dns` documented with a paper citation |
//! | L5 | hot-path metric updates use the `tm_*!` macros, with no allocation/locking in the update |
//! | L11 | every field of a `retract_state(<fn>)`-marked struct is covered by `<fn>` or carries a reasoned `not_retracted:` waiver |

use crate::scan::SourceFile;

/// A single lint finding.
#[derive(Debug)]
pub struct Violation {
    pub path: std::path::PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

fn violation(
    file: &SourceFile,
    idx: usize,
    lint: &'static str,
    message: impl Into<String>,
) -> Violation {
    Violation {
        path: file.path.clone(),
        line: idx + 1,
        lint,
        message: message.into(),
    }
}

const KNOWN_LINTS: &[&str] = &[
    "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11",
];

/// Apply `allow_lint` marker suppression to raw findings: drop the ones a
/// matching marker covers, and report which marker (by index into
/// `file.markers`) suppressed something — the complement is what M2 flags
/// as stale. Lints return *all* findings precisely so this split is
/// possible; `check_markers` (M1) findings are never suppressible.
pub fn suppress(file: &SourceFile, raw: Vec<Violation>) -> (Vec<Violation>, Vec<usize>) {
    let masks: Vec<Vec<bool>> = file.markers.iter().map(|m| file.marker_mask(m)).collect();
    let mut used: Vec<usize> = Vec::new();
    let mut active = Vec::new();
    for v in raw {
        let mut suppressed = false;
        for (mi, m) in file.markers.iter().enumerate() {
            if m.lint == v.lint && !m.reason.is_empty() && masks[mi][v.line - 1] {
                suppressed = true;
                if !used.contains(&mi) {
                    used.push(mi);
                }
            }
        }
        if !suppressed || v.lint == "M1" || v.lint == "M2" {
            active.push(v);
        }
    }
    (active, used)
}

/// M2: markers that suppress nothing are stale — they stop documenting a
/// real exception and start hiding future regressions. `used` holds the
/// marker indices `suppress` consumed for this file.
pub fn m2_stale_markers(file: &SourceFile, used: &[usize]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (mi, m) in file.markers.iter().enumerate() {
        if !KNOWN_LINTS.contains(&m.lint.as_str()) || m.reason.is_empty() {
            continue; // M1's problem, not M2's
        }
        if !used.contains(&mi) {
            out.push(violation(
                file,
                m.line,
                "M2",
                format!(
                    "stale `allow_lint({})` marker: it no longer suppresses any finding; remove it",
                    m.lint
                ),
            ));
        }
    }
    out
}

/// M1: markers must name a known lint and give a non-empty reason.
pub fn check_markers(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in &file.markers {
        if !KNOWN_LINTS.contains(&m.lint.as_str()) {
            out.push(violation(
                file,
                m.line,
                "M1",
                format!("allow_lint marker names unknown lint `{}`", m.lint),
            ));
        } else if m.reason.is_empty() {
            out.push(violation(
                file,
                m.line,
                "M1",
                format!(
                    "allow_lint({}) marker needs a `: reason` explaining why it is safe",
                    m.lint
                ),
            ));
        }
    }
    out
}

/// L1: panic-free hot path. Flags `.unwrap()`, `.expect(`, the panicking
/// macros, and subscript indexing (`x[...]`, which panics out of bounds —
/// `get`/`get_mut` are the checked alternatives).
pub fn l1_no_panics(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = line.code.as_str();
        if code.trim_start().starts_with("#[") {
            continue; // attribute, not executable code
        }
        if code.contains(".unwrap()") {
            out.push(violation(file, i, "L1", "`.unwrap()` in hot-path code"));
        }
        if code.contains(".expect(") {
            out.push(violation(file, i, "L1", "`.expect(...)` in hot-path code"));
        }
        for mac in ["panic!", "todo!", "unimplemented!", "unreachable!"] {
            for (pos, _) in code.match_indices(mac) {
                let before_ok = pos == 0 || !is_ident_char(char_at(code, pos - 1));
                if before_ok {
                    out.push(violation(
                        file,
                        i,
                        "L1",
                        format!("`{mac}` in hot-path code"),
                    ));
                }
            }
        }
        for idx in subscript_positions(code) {
            let snippet: String = code[..idx].chars().rev().take(24).collect::<String>();
            let snippet: String = snippet.chars().rev().collect();
            out.push(violation(
                file,
                i,
                "L1",
                format!("unchecked indexing (`...{}[`); use `get`/`get_mut` or allowlist with the guarding bounds check", snippet.trim_start()),
            ));
        }
    }
    out
}

fn char_at(s: &str, byte_idx: usize) -> char {
    s[byte_idx..].chars().next().unwrap_or(' ')
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Keywords that may directly precede an array-literal or slice-type `[`;
/// an identifier ending in one of these is not a subscripted expression.
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "in", "return", "break", "as", "else", "match", "if", "while", "mut", "ref", "move", "dyn",
    "impl", "where", "yield", "const", "static", "let", "pub",
];

/// Byte offsets of `[` characters that subscript an expression (previous
/// non-space char is an identifier char, `)`, or `]` — but not a keyword
/// and not a lifetime name, which precede array literals and slice types).
fn subscript_positions(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = i;
        let prev = loop {
            if j == 0 {
                break None;
            }
            j -= 1;
            let c = bytes[j] as char;
            if c != ' ' {
                break Some((j, c));
            }
        };
        match prev {
            Some((j, c)) if is_ident_char(c) || c == ')' || c == ']' => {
                if is_ident_char(c) {
                    // Walk to the start of the word.
                    let mut w = j;
                    while w > 0 && is_ident_char(bytes[w - 1] as char) {
                        w -= 1;
                    }
                    let word = &code[w..=j];
                    if PRE_BRACKET_KEYWORDS.contains(&word) {
                        continue;
                    }
                    if w > 0 && bytes[w - 1] == b'\'' {
                        continue; // lifetime: `&'a [u8]`
                    }
                }
                out.push(i);
            }
            _ => {}
        }
    }
    out
}

/// L2: per-packet maps must not use SipHash. Flags `HashMap` construction
/// (`::new`, `::default`, `::with_capacity`) and two-parameter `HashMap<K,
/// V>` types; a third generic parameter (a custom `BuildHasher`, as in
/// `resolver::maps::FnvHashMap`) passes.
pub fn l2_no_siphash_maps(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue; // imports are fine; usage sites are flagged
        }
        for (pos, _) in code.match_indices("HashMap") {
            if pos > 0 && is_ident_char(char_at(code, pos - 1)) {
                continue; // part of a longer identifier, e.g. FnvHashMap
            }
            let after = &code[pos + "HashMap".len()..];
            let after_trim = after.trim_start();
            if let Some(rest) = after_trim.strip_prefix("::") {
                for ctor in ["new", "default", "with_capacity"] {
                    if rest.starts_with(ctor) {
                        out.push(violation(
                            file,
                            i,
                            "L2",
                            format!(
                                "`HashMap::{ctor}` uses the default SipHash hasher in a per-packet path; use `resolver::maps::FnvHashMap` / `TableFamily`"
                            ),
                        ));
                    }
                }
            } else if after_trim.starts_with('<') {
                // Join following lines so multi-line generics parse.
                let mut generics = after_trim.to_string();
                let mut j = i + 1;
                while angle_depth(&generics).is_none() && j < file.lines.len() && j < i + 10 {
                    generics.push(' ');
                    generics.push_str(file.lines[j].code.trim());
                    j += 1;
                }
                if let Some(commas) = angle_depth(&generics) {
                    if commas < 2 {
                        out.push(violation(
                            file,
                            i,
                            "L2",
                            "`HashMap<K, V>` defaults to SipHash in a per-packet path; add a hasher parameter or use `resolver::maps::FnvHashMap`",
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Parse a `<...>` group at the start of `s`; return `Some(top_level_commas)`
/// if it closes within `s`, `None` if unbalanced (caller joins more lines).
fn angle_depth(s: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut commas = 0usize;
    for c in s.chars() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(commas);
                }
            }
            ',' if depth == 1 => commas += 1,
            ';' if depth == 0 => return Some(commas),
            _ => {}
        }
    }
    None
}

/// L3: a named lock guard must not stay live across another lock
/// acquisition, a shard-array access, an eviction/backref callback, or a
/// (possibly blocking) channel `send`/`recv` — a guard held across a full
/// ring's send is the pipeline's deadlock shape. Chained single-statement
/// locking (`self.shards[i].lock().insert(...)`) drops its temporary guard
/// at the semicolon and is fine.
pub fn l3_no_guard_across_shards(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    // Active named guards: (name, depth at binding).
    let mut guards: Vec<(String, usize)> = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        let trimmed = code.trim();
        let acquires = [".lock(", ".read(", ".write("]
            .iter()
            .any(|t| code.contains(t));
        // A `let` keeps the guard alive only when the acquisition is the
        // *final* call: `let st = *s.lock().stats();` copies out and drops
        // the temporary guard at the semicolon.
        let is_binding = trimmed.starts_with("let ") && acquires && lock_is_final_call(trimmed);
        // A line is risky even if it *binds* a new guard — acquiring a
        // second lock while one is held is the classic L3 violation.
        if !line.test && !guards.is_empty() {
            let risky = acquires
                || code.contains("self.shards")
                || code.contains("evict")
                || code.contains("remove_backrefs")
                || code.contains(".send(")
                || code.contains(".recv(");
            if risky {
                let names: Vec<&str> = guards.iter().map(|(n, _)| n.as_str()).collect();
                out.push(violation(
                    file,
                    i,
                    "L3",
                    format!(
                        "lock guard `{}` may still be held across this lock/shard/eviction/channel call; drop it first",
                        names.join("`, `")
                    ),
                ));
            }
        }
        if is_binding && !line.test {
            if let Some(name) = binding_name(trimmed) {
                guards.push((name, depth));
            }
        }
        // Explicit drops end a guard's liveness.
        for g in 0..guards.len() {
            let name = guards[g].0.clone();
            if code.contains(&format!("drop({name})")) {
                guards.remove(g);
                break;
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|&(_, d)| d <= depth);
                }
                _ => {}
            }
        }
    }
    out
}

/// True when the last `.lock(`/`.read(`/`.write(` call in `code` is the
/// end of the expression (followed only by `;`, `?`, or nothing), i.e. the
/// guard itself is what gets bound.
fn lock_is_final_call(code: &str) -> bool {
    let Some(pos) = [".lock(", ".read(", ".write("]
        .iter()
        .filter_map(|t| code.rfind(t).map(|p| p + t.len()))
        .max()
    else {
        return false;
    };
    // Walk past the matching close paren.
    let mut depth = 1i32;
    let mut rest = "";
    for (off, c) in code[pos..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    rest = &code[pos + off + 1..];
                    break;
                }
            }
            _ => {}
        }
    }
    matches!(rest.trim(), "" | ";" | "?" | "?;")
}

/// `let [mut] name = ...` → `name`; `None` for destructuring patterns.
fn binding_name(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() || !rest[name.len()..].trim_start().starts_with(['=', ':']) {
        return None;
    }
    Some(name)
}

/// Recorder entry points that must not be called directly from hot-path
/// code (the `tm_*!` macros are the sanctioned spelling — one greppable
/// idiom, and the macro layer is where any future compile-out lands).
const L5_RECORDER_FNS: &[&str] = &["counter_add(", "gauge_add(", "observe(", "span("];

/// Tokens that mean a metric update allocates, formats, or locks — all
/// forbidden inside a per-packet increment.
const L5_HEAVY_TOKENS: &[&str] = &[
    "format!",
    ".to_string()",
    ".to_owned()",
    "String::",
    "vec!",
    "Vec::new",
    "Box::new",
    "Mutex",
    ".lock(",
];

/// L5: telemetry hygiene on the hot path. Two rules:
///
/// 1. Metric updates go through the `tm_count!`/`tm_gauge!`/`tm_observe!`/
///    `tm_span!` macros — a direct `telemetry::counter_add(...)` (or any
///    `*telemetry::` recorder-function call) is flagged.
/// 2. A line performing a metric update must not also allocate, format,
///    or take a lock: the update must stay a thread-local load plus one
///    relaxed `fetch_add`.
pub fn l5_telemetry_macros(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = line.code.as_str();
        for f in L5_RECORDER_FNS {
            for (pos, _) in code.match_indices(f) {
                // Only calls through a telemetry path are recorder calls;
                // `snap.get(..)` or a local `observe(` helper is not.
                if code[..pos].ends_with("telemetry::") {
                    let name = f.trim_end_matches('(');
                    out.push(violation(
                        file,
                        i,
                        "L5",
                        format!(
                            "direct `telemetry::{name}(...)` call on the hot path; use the `tm_*!` macros"
                        ),
                    ));
                }
            }
        }
        let is_update = ["tm_count!", "tm_gauge!", "tm_observe!", "tm_span!"]
            .iter()
            .any(|m| code.contains(m));
        if is_update {
            for heavy in L5_HEAVY_TOKENS {
                if code.contains(heavy) {
                    out.push(violation(
                        file,
                        i,
                        "L5",
                        format!(
                            "`{}` in a metric update; increments must not allocate, format, or lock",
                            heavy.trim_matches(['.', '(', '!'])
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Citation tokens accepted by L4: paper sections, figures, algorithms, or
/// the RFCs the wire formats implement.
const CITATION_TOKENS: &[&str] = &[
    "§",
    "Algorithm",
    "Fig.",
    "Eq.",
    "Table",
    "paper",
    "RFC",
    "DN-Hunter",
];

fn has_citation(text: &str) -> bool {
    CITATION_TOKENS.iter().any(|t| text.contains(t))
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// L4: every public item carries a doc comment citing the paper (or RFC)
/// it implements, and every file opens with a cited module doc.
pub fn l4_docs_cite_paper(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    // File-level: the module doc (`//!`) must exist and cite.
    let module_doc: String = file
        .lines
        .iter()
        .filter(|l| l.inner_doc)
        .map(|l| l.comment.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    if module_doc.is_empty() {
        out.push(violation(
            file,
            0,
            "L4",
            "file has no `//!` module doc; add one citing the paper section it implements",
        ));
    } else if !has_citation(&module_doc) {
        out.push(violation(
            file,
            0,
            "L4",
            "module doc cites no paper section (§ / Algorithm / Fig. / RFC ...)",
        ));
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let trimmed = line.code.trim();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        if trimmed.starts_with("pub(") || rest.starts_with("use ") {
            continue; // restricted visibility / re-exports
        }
        // Strip fn qualifiers so `pub async fn` / `pub const fn` match.
        let rest = rest
            .trim_start_matches("async ")
            .trim_start_matches("unsafe ")
            .trim_start_matches("const fn")
            .trim_start_matches("const ");
        let first = rest.split_whitespace().next().unwrap_or(rest);
        let is_item = first.is_empty() // `pub const fn` fully stripped
            || ITEM_KEYWORDS.iter().any(|k| first == *k || first.starts_with(&format!("{k}<")));
        if !is_item {
            continue; // struct field (`pub x: T`) or similar
        }
        // Collect the contiguous doc block above, skipping attributes.
        let mut j = i;
        let mut doc = String::new();
        while j > 0 {
            j -= 1;
            let above = &file.lines[j];
            let t = above.code.trim();
            if above.doc {
                doc.insert_str(0, above.comment.as_str());
                doc.insert(0, '\n');
            } else if t.starts_with("#[") || (t.is_empty() && !above.comment.is_empty()) {
                continue; // attribute or marker comment between doc and item
            } else {
                break;
            }
        }
        let item = trimmed.chars().take(48).collect::<String>();
        if doc.trim().is_empty() {
            out.push(violation(
                file,
                i,
                "L4",
                format!("public item `{item}` has no doc comment"),
            ));
        } else if !has_citation(&doc) {
            out.push(violation(
                file,
                i,
                "L4",
                format!("doc for `{item}` cites no paper section (§ / Algorithm / Fig. / RFC ...)"),
            ));
        }
    }
    out
}

/// L6: property-test corpora are committed and never gitignored. Every
/// `crates/*/tests/properties.rs` must have a sibling
/// `properties.proptest-regressions` file in the tree (the seed corpus of
/// previously-failing cases), and no `.gitignore` anywhere in the
/// workspace may hide `proptest-regressions` files — a hidden corpus
/// silently un-pins every regression it recorded.
pub fn l6_proptest_corpora(root: &std::path::Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<std::path::PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    crate_dirs.sort();
    for dir in crate_dirs {
        let props = dir.join("tests").join("properties.rs");
        if !props.is_file() {
            continue;
        }
        let corpus = dir.join("tests").join("properties.proptest-regressions");
        if !corpus.is_file() {
            out.push(Violation {
                path: props.strip_prefix(root).unwrap_or(&props).to_path_buf(),
                line: 1,
                lint: "L6",
                message: "property tests have no committed sibling \
                          `properties.proptest-regressions` corpus"
                    .into(),
            });
        }
    }
    for ignore in gitignore_files(root) {
        let Ok(text) = std::fs::read_to_string(&ignore) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if !line.starts_with('#')
                && !line.starts_with('!')
                && line.contains("proptest-regressions")
            {
                out.push(Violation {
                    path: ignore.strip_prefix(root).unwrap_or(&ignore).to_path_buf(),
                    line: i + 1,
                    lint: "L6",
                    message: format!("`{line}` gitignores proptest regression corpora"),
                });
            }
        }
    }
    out
}

/// Every `.gitignore` in the tree, skipping build output.
fn gitignore_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<std::path::PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != ".git" {
                out.extend(gitignore_files(&path));
            }
        } else if name == ".gitignore" {
            out.push(path);
        }
    }
    out
}

/// True when `needle` occurs in `hay` as a whole identifier (no ident
/// character on either side).
fn contains_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(p) = hay[start..].find(needle) {
        let p = start + p;
        let before_ok = !hay[..p].chars().next_back().is_some_and(is_ident);
        let after_ok = !hay[p + needle.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = p + needle.len();
    }
    false
}

/// L11: retraction coverage. A `// retract_state(<fn>)` marker above a
/// struct declares that `<fn>` (in the same file) is the struct's
/// subtractive inverse. Every field of the struct must then be named in
/// the body of `<fn>`, unless the field's own line carries a
/// `not_retracted: <reason>` comment waiving it. A waiver without a
/// reason, a marker not followed by a struct, and a marker naming a
/// function the file does not define are all findings — so no piece of
/// mergeable sink state can silently go without an inverse.
pub fn l11_retraction_coverage(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (mi, line) in file.lines.iter().enumerate() {
        let Some(pos) = line.comment.find("retract_state(") else {
            continue;
        };
        let rest = &line.comment[pos + "retract_state(".len()..];
        let Some(end) = rest.find(')') else {
            out.push(violation(
                file,
                mi,
                "L11",
                "malformed `retract_state(...)` marker: missing `)`",
            ));
            continue;
        };
        let fn_name = rest[..end].trim();
        if fn_name.is_empty()
            || !fn_name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push(violation(
                file,
                mi,
                "L11",
                "`retract_state(...)` marker must name the inverse function",
            ));
            continue;
        }

        // The struct the marker annotates: the next line with real code,
        // skipping attributes, must declare one.
        let mut struct_idx = None;
        for (i, l) in file.lines.iter().enumerate().skip(mi + 1) {
            let code = l.code.trim();
            if code.is_empty() || code.starts_with("#[") {
                continue;
            }
            if contains_word(code, "struct") {
                struct_idx = Some(i);
            }
            break;
        }
        let Some(si) = struct_idx else {
            out.push(violation(
                file,
                mi,
                "L11",
                format!(
                    "`retract_state({fn_name})` marker is not followed by a struct declaration"
                ),
            ));
            continue;
        };

        // Collect the struct's named fields and their waivers.
        let mut fields: Vec<(usize, String, Option<String>)> = Vec::new();
        let mut balance: i64 = 0;
        for (i, l) in file.lines.iter().enumerate().skip(si) {
            let at_field_depth = balance == 1 && i > si;
            if at_field_depth {
                let code = l.code.trim();
                let without_vis = code
                    .strip_prefix("pub(crate)")
                    .or_else(|| code.strip_prefix("pub(super)"))
                    .or_else(|| code.strip_prefix("pub"))
                    .unwrap_or(code)
                    .trim_start();
                if let Some(colon) = without_vis.find(':') {
                    let ident = without_vis[..colon].trim();
                    if !ident.is_empty()
                        && !without_vis[colon..].starts_with("::")
                        && ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        let waiver = l
                            .comment
                            .find("not_retracted:")
                            .map(|p| l.comment[p + "not_retracted:".len()..].trim().to_string());
                        fields.push((i, ident.to_string(), waiver));
                    }
                }
            }
            balance += l.code.matches('{').count() as i64;
            balance -= l.code.matches('}').count() as i64;
            if balance <= 0 && i > si {
                break;
            }
        }

        // The inverse function's body, concatenated.
        let mut body = String::new();
        let mut fn_line = None;
        for (i, l) in file.lines.iter().enumerate() {
            let code = &l.code;
            if let Some(p) = code.find("fn ") {
                let after = code[p + 3..].trim_start();
                if after.starts_with(fn_name)
                    && after[fn_name.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c == '(' || c == '<' || c.is_whitespace())
                {
                    fn_line = Some(i);
                    break;
                }
            }
        }
        match fn_line {
            None => {
                out.push(violation(
                    file,
                    mi,
                    "L11",
                    format!("`retract_state({fn_name})`: no function `{fn_name}` in this file"),
                ));
                continue;
            }
            Some(fi) => {
                let mut fn_balance: i64 = 0;
                let mut opened = false;
                for l in file.lines.iter().skip(fi) {
                    body.push_str(&l.code);
                    body.push('\n');
                    fn_balance += l.code.matches('{').count() as i64;
                    fn_balance -= l.code.matches('}').count() as i64;
                    if fn_balance > 0 {
                        opened = true;
                    }
                    if opened && fn_balance <= 0 {
                        break;
                    }
                }
            }
        }

        for (fi, name, waiver) in fields {
            match waiver {
                Some(reason) if reason.is_empty() => {
                    out.push(violation(
                        file,
                        fi,
                        "L11",
                        format!(
                            "field `{name}` waives retraction with `not_retracted:` but gives no reason"
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    if !contains_word(&body, &name) {
                        out.push(violation(
                            file,
                            fi,
                            "L11",
                            format!(
                                "field `{name}` is not covered by `{fn_name}` and carries no \
                                 `not_retracted:` waiver — merged state it accumulates can never \
                                 be retracted"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("mem.rs"), src)
    }

    #[test]
    fn l1_catches_unwrap_expect_panic_indexing() {
        let f = file("fn f(v: &[u8]) -> u8 {\n    let a = v.first().unwrap();\n    let b = o.expect(\"x\");\n    panic!(\"boom\");\n    v[0]\n}\n");
        let v = l1_no_panics(&f);
        let kinds: Vec<&str> = v
            .iter()
            .map(|x| x.message.split(['`', ' ']).nth(1).unwrap_or(""))
            .collect();
        assert_eq!(v.len(), 4, "{kinds:?}");
    }

    #[test]
    fn l1_ignores_tests_strings_comments_and_allows() {
        let src = "fn f() {\n    let s = \"don't .unwrap() me\"; // .unwrap() here neither\n    let x = v[0]; // allow_lint(L1): length checked two lines up\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = file(src);
        let raw = l1_no_panics(&f);
        assert_eq!(raw.len(), 1, "the allowed line is still a raw finding");
        let (active, used) = suppress(&f, raw);
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(used, vec![0], "the marker was consumed");
    }

    #[test]
    fn m2_flags_markers_that_suppress_nothing() {
        let src = "fn f() {\n    let x = v.first(); // allow_lint(L1): nothing wrong on this line anymore\n}\n";
        let f = file(src);
        let (_, used) = suppress(&f, l1_no_panics(&f));
        let v = m2_stale_markers(&f, &used);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stale"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn l1_does_not_flag_array_types_or_macros() {
        let src = "fn f() {\n    let a: [u8; 4] = [0; 4];\n    let v = vec![1, 2];\n    let s = &buf;\n}\n";
        assert!(l1_no_panics(&file(src)).is_empty());
    }

    #[test]
    fn l2_flags_default_hasher_only() {
        let src = "struct S {\n    flows: HashMap<Key, Rec>,\n}\nfn f() {\n    let m: FnvHashMap<u8, u8> = FnvHashMap::default();\n    let bad = HashMap::new();\n    type T = HashMap<K, V, FnvBuildHasher>;\n}\n";
        let v = l2_no_siphash_maps(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 6);
    }

    #[test]
    fn l3_flags_guard_held_across_second_lock() {
        let src = "fn f(&self) {\n    let g = self.shards[0].lock();\n    let h = self.shards[1].lock();\n    g.insert(x);\n}\n";
        let v = l3_no_guard_across_shards(&file(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn l3_accepts_chained_and_dropped_guards() {
        let src = "fn f(&self) {\n    self.shards[0].lock().insert(x);\n    let g = self.shards[1].lock();\n    let y = g.peek();\n    drop(g);\n    self.shards[2].lock().insert(y);\n}\n";
        assert!(l3_no_guard_across_shards(&file(src)).is_empty());
    }

    #[test]
    fn l3_flags_guard_held_across_channel_send_or_recv() {
        let src = "fn f(&self) {\n    let g = self.state.lock();\n    self.tx.send(batch);\n    drop(g);\n    let h = self.state.lock();\n    let item = self.rx.recv();\n}\n";
        let v = l3_no_guard_across_shards(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 6);
        assert!(v[0].message.contains("channel"));
    }

    #[test]
    fn l3_guard_dies_at_block_end() {
        let src = "fn f(&self) {\n    {\n        let g = self.shards[0].lock();\n        g.insert(x);\n    }\n    self.shards[1].lock().insert(y);\n}\n";
        assert!(l3_no_guard_across_shards(&file(src)).is_empty());
    }

    #[test]
    fn l4_requires_cited_docs() {
        let src = "//! Implements paper §3.1.1.\n\n/// Undocumented section reference missing here.\npub fn f() {}\n\n/// The Clist of Algorithm 1.\npub struct Clist;\n\npub fn bare() {}\n";
        let v = l4_docs_cite_paper(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("cites no paper"));
        assert!(v[1].message.contains("no doc comment"));
    }

    #[test]
    fn m1_rejects_reasonless_or_unknown_markers() {
        let src = "fn f() {\n    let x = v[0]; // allow_lint(L1)\n    let y = v[1]; // allow_lint(L42): what\n}\n";
        let v = check_markers(&file(src));
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn l5_flags_direct_recorder_calls() {
        let src = "fn f() {\n    telemetry::counter_add(Tm::IngestFrames, 1);\n    dnhunter_telemetry::observe(Tm::BatchItems, n);\n    let _t = telemetry::span(Tm::MergeNanos);\n}\n";
        let v = l5_telemetry_macros(&file(src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].message.contains("tm_*!"));
    }

    #[test]
    fn l5_accepts_macro_updates_and_unrelated_calls() {
        let src = "fn f() {\n    tm_count!(Tm::IngestFrames);\n    dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetParses);\n    tm_observe!(Tm::BatchItems, batch.items.len() as u64);\n    snap.observe_something(1);\n    let g = self.state.lock();\n}\n";
        assert!(l5_telemetry_macros(&file(src)).is_empty());
    }

    #[test]
    fn l5_flags_allocation_in_updates() {
        let src = "fn f() {\n    tm_count!(lookup(format!(\"{x}\")));\n    tm_observe!(Tm::BatchItems, items.to_string().len() as u64);\n    tm_gauge!(Tm::FlowTableSize, self.state.lock().len() as i64);\n}\n";
        let v = l5_telemetry_macros(&file(src));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].message.contains("must not allocate"));
    }

    #[test]
    fn l5_respects_allow_markers_and_tests() {
        let src = "fn f() {\n    telemetry::counter_add(m, 1); // allow_lint(L5): startup path, not per-packet\n}\n#[cfg(test)]\nmod tests {\n    fn t() { telemetry::counter_add(m, 1); }\n}\n";
        let f = file(src);
        let (active, used) = suppress(&f, l5_telemetry_macros(&f));
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(used.len(), 1);
    }
}
