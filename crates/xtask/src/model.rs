//! A lightweight Rust *item model* on top of [`crate::scan::SourceFile`].
//!
//! The reachability lints (L7–L9) need more than per-line token scans: they
//! need to know which function a line belongs to, what that function calls,
//! and which functions are annotated as analysis roots. This module lifts
//! the lexical model into a list of [`FnItem`]s per file — function spans
//! with their enclosing `impl` type, parameter names, extracted call
//! tokens, and `lint_root(...)` annotations — without attempting type
//! checking or full name resolution. See DESIGN.md §8 for exactly what the
//! approximation over- and under-states.

use crate::scan::SourceFile;

/// Which root set a function belongs to (from a `// lint_root(x): reason`
/// marker comment or a built-in naming rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootClass {
    /// Merge/fold/render/export code whose output must be byte-identical
    /// sequential vs parallel (L7).
    Determinism,
    /// Code that first touches attacker-controlled wire bytes (L8, L9).
    Ingest,
}

impl RootClass {
    pub fn parse(s: &str) -> Option<RootClass> {
        match s {
            "determinism" => Some(RootClass::Determinism),
            "ingest" => Some(RootClass::Ingest),
            _ => None,
        }
    }
}

/// How a call site spells its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free function in scope.
    Free,
    /// `recv.foo(...)` — a method on an unknown receiver type.
    Method,
    /// `Qual::foo(...)` — the last path segment before the name
    /// (a type, module, or crate alias).
    Qualified(String),
}

/// One extracted call token inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    pub kind: CallKind,
}

/// One `fn` item: its span, context, parameters, and call tokens.
#[derive(Debug)]
pub struct FnItem {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    /// Crate directory name (`net`, `dns`, ...).
    pub krate: String,
    pub name: String,
    /// Base type name of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Zero-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Zero-based inclusive body span (covers the signature too).
    pub start: usize,
    pub end: usize,
    /// Parameter identifier names (excluding `self`).
    pub params: Vec<String>,
    pub calls: Vec<Call>,
    /// Root classes from `lint_root` markers or naming rules.
    pub roots: Vec<RootClass>,
    /// True when the item sits in `#[cfg(test)]` / `#[test]` code.
    pub test: bool,
}

/// A file lifted into the item model.
pub struct ModelFile {
    pub source: SourceFile,
    pub krate: String,
    /// Indices into the workspace's `fns` that live in this file.
    pub fns: Vec<usize>,
    /// Workspace crates this file `use`s (by crate dir name), for edge
    /// resolution across crates.
    pub imports: Vec<String>,
}

/// Functions whose *name alone* makes them determinism roots: the fold /
/// merge / render discipline of DESIGN.md §11 names them consistently.
fn name_is_determinism_root(name: &str) -> bool {
    name == "fold" || name == "merge" || name == "merge_from" || name.starts_with("render")
}

/// Map a `dnhunter-*` package name (as spelled in `use` paths with
/// underscores) to the crate directory name.
pub fn crate_dir_of_use(seg: &str) -> Option<&str> {
    seg.strip_prefix("dnhunter_")
        .map(|rest| if rest.is_empty() { "core" } else { rest })
        .or(if seg == "dnhunter" {
            Some("core")
        } else {
            None
        })
}

/// Extract every `fn` item of `file` into `fns`, returning the model file.
pub fn lift(file: SourceFile, krate: &str, file_idx: usize, fns: &mut Vec<FnItem>) -> ModelFile {
    let lines = &file.lines;
    // Pass 1: impl-block context per line (type name + line + depth where
    // the block opened).
    let mut impl_stack: Vec<(String, usize, usize)> = Vec::new();
    let mut impl_ctx: Vec<Option<String>> = Vec::with_capacity(lines.len());
    // Pending root annotations: `// lint_root(x): reason` standalone
    // comments apply to the next fn item.
    let mut pending_roots: Vec<RootClass> = Vec::new();
    let mut imports: Vec<String> = Vec::new();
    let mut local_fns: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < lines.len() {
        let line = &lines[i];
        let code = line.code.as_str();
        let trimmed = code.trim();
        // An impl block is over once a later line starts back at (or above)
        // the depth the `impl` line opened at.
        while impl_stack
            .last()
            .is_some_and(|&(_, at, d)| i > at && line.depth <= d)
        {
            impl_stack.pop();
        }
        impl_ctx.push(impl_stack.last().map(|(t, _, _)| t.clone()));

        // lint_root markers ride on comments, like allow_lint.
        if let Some(root) = parse_root_marker(&line.comment) {
            pending_roots.push(root);
        }

        if let Some(ty) = impl_type_of(trimmed) {
            impl_stack.push((ty, i, line.depth));
        }
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            let path = trimmed
                .trim_start_matches("pub ")
                .trim_start_matches("use ")
                .trim_end_matches(';');
            if let Some(first) = path.split("::").next() {
                if let Some(dir) = crate_dir_of_use(first.trim()) {
                    if !imports.iter().any(|d| d == dir) {
                        imports.push(dir.to_string());
                    }
                }
            }
        }

        if let Some(name) = fn_name_of(trimmed) {
            let (sig_end, params) = parse_signature(lines, i);
            let end = body_end(lines, i, sig_end);
            let mut roots: Vec<RootClass> = std::mem::take(&mut pending_roots);
            if !line.test
                && name_is_determinism_root(&name)
                && !roots.contains(&RootClass::Determinism)
            {
                roots.push(RootClass::Determinism);
            }
            let mut calls = Vec::new();
            for l in lines.iter().take(end + 1).skip(i) {
                extract_calls(&l.code, &mut calls);
            }
            local_fns.push(fns.len());
            fns.push(FnItem {
                file: file_idx,
                krate: krate.to_string(),
                name,
                impl_type: impl_ctx[i].clone(),
                sig_line: i,
                start: i,
                end,
                params,
                calls,
                roots,
                test: line.test,
            });
            // Nested fns are rare; treating the outer span as one item is
            // an acceptable over-approximation, but we still want nested
            // items indexed, so don't skip the body.
        }
        i += 1;
    }

    ModelFile {
        source: file,
        krate: krate.to_string(),
        fns: local_fns,
        imports,
    }
}

/// `// lint_root(class): reason` marker in a comment.
fn parse_root_marker(comment: &str) -> Option<RootClass> {
    let pos = comment.find("lint_root(")?;
    let rest = &comment[pos + "lint_root(".len()..];
    let close = rest.find(')')?;
    RootClass::parse(rest[..close].trim())
}

/// `impl Foo {`, `impl<T> Foo<T> {`, `impl Trait for Foo {` → `Foo`.
fn impl_type_of(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("impl")?;
    let rest = rest.trim_start_matches(|c| c != ' ' && c != '<').trim();
    let rest = if let Some(r) = rest.strip_prefix('<') {
        // Skip the generic parameter list.
        let mut depth = 1i32;
        let mut idx = 0;
        for (k, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        idx = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        r[idx..].trim()
    } else {
        rest
    };
    // `Trait for Type` → take the type side.
    let ty = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let base: String = ty
        .trim()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if base.is_empty() {
        None
    } else {
        Some(base)
    }
}

/// `fn name` on this line (handles `pub`, `pub(crate)`, `const`, `async`,
/// `unsafe` qualifiers). Returns the identifier after `fn `.
fn fn_name_of(trimmed: &str) -> Option<String> {
    // Reject lines where `fn` appears only in a type position (e.g.
    // `Box<dyn Fn(...)>` is `Fn`, not `fn`). Look for the keyword token.
    let mut rest = trimmed;
    loop {
        let pos = rest.find("fn ")?;
        let before_ok = pos == 0
            || rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c == ' ' || c == '(');
        let candidate = &rest[pos + 3..];
        if before_ok {
            let name: String = candidate
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                return None;
            }
            // Qualifier sanity: everything before must be fn qualifiers.
            let prefix = rest[..pos].trim();
            let ok = prefix.is_empty()
                || prefix.split_whitespace().all(|w| {
                    matches!(w, "pub" | "const" | "async" | "unsafe" | "extern")
                        || w.starts_with("pub(")
                });
            if ok {
                return Some(name);
            }
        }
        rest = &rest[pos + 3..];
    }
}

/// Join signature lines from `start` until the parameter list closes and a
/// `{` or `;` is found; return (last signature line, param names).
fn parse_signature(lines: &[crate::scan::Line], start: usize) -> (usize, Vec<String>) {
    let mut sig = String::new();
    let mut end = start;
    for (k, l) in lines.iter().enumerate().skip(start) {
        sig.push_str(l.code.as_str());
        sig.push(' ');
        end = k;
        // The signature is complete once the top-level paren group closed
        // and we hit the body brace or a `;` (trait method/extern decl).
        if paren_closed(&sig) && (sig.contains('{') || sig.trim_end().ends_with(';')) {
            break;
        }
        if k > start + 30 {
            break; // runaway guard: malformed code
        }
    }
    (end, param_names(&sig))
}

fn paren_closed(sig: &str) -> bool {
    let Some(open) = sig.find('(') else {
        return false;
    };
    let mut depth = 0i32;
    for c in sig[open..].chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Parameter names out of a joined signature: split the top-level comma
/// list, take the pattern side of each `name: Type`.
fn param_names(sig: &str) -> Vec<String> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut cur = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in sig[open..].chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                if depth > 1 {
                    cur.push(c);
                }
            }
            ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                cur.push(c);
            }
            '<' => {
                angle += 1;
                cur.push(c);
            }
            '>' => {
                angle -= 1;
                cur.push(c);
            }
            ',' if depth == 1 && angle <= 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    let mut out = Vec::new();
    for p in parts {
        let pat = p.split(':').next().unwrap_or("").trim();
        let pat = pat
            .trim_start_matches("mut ")
            .trim_start_matches("ref ")
            .trim();
        if pat.is_empty() || pat.contains("self") {
            continue;
        }
        let name: String = pat
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && name != "_" {
            out.push(name);
        }
    }
    out
}

/// Last line of the fn body: from the signature's `{`, walk until brace
/// depth returns to the opening level. Braceless (`;`) items end at the
/// signature.
fn body_end(lines: &[crate::scan::Line], start: usize, sig_end: usize) -> usize {
    // Find the opening brace from the signature onward.
    let mut depth = 0i32;
    let mut opened = false;
    for (k, l) in lines.iter().enumerate().skip(start) {
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && k >= sig_end => return k,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return k;
        }
    }
    lines.len().saturating_sub(1)
}

/// Identifier tail ending at byte `end` of `s` (exclusive).
fn ident_ending_at(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut w = end;
    while w > 0 {
        let c = bytes[w - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            w -= 1;
        } else {
            break;
        }
    }
    if w == end {
        None
    } else {
        Some(&s[w..end])
    }
}

/// Rust keywords that look like call names when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "let", "fn", "move", "loop", "else",
    "break", "continue", "where", "impl", "dyn", "ref", "mut", "use", "pub", "unsafe", "async",
];

/// Extract call tokens from one blanked code line into `out`.
///
/// Recognized shapes: `name(`, `.name(`, `Qual::name(`. Macro invocations
/// (`name!(...)`) are *not* calls — the only macros the lints interpret are
/// the `tm_*!` family, which L9 handles separately.
pub fn extract_calls(code: &str, out: &mut Vec<Call>) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let Some(name) = ident_ending_at(code, i) else {
            continue;
        };
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let before = i - name.len();
        // Macro call? `name!(` has the bang *after* the name — but the
        // bang precedes `(` only as `name!(`, so check the char at i-len-1
        // being '!' is impossible; instead check name directly followed by
        // '!' — can't happen since '(' follows. Check preceding char:
        let prev = if before == 0 {
            None
        } else {
            Some(bytes[before - 1] as char)
        };
        match prev {
            Some('!') => continue, // macro body or `!cond (`—not a call
            Some('.') => out.push(Call {
                name: name.to_string(),
                kind: CallKind::Method,
            }),
            Some(':') if before >= 2 && bytes[before - 2] == b':' => {
                let qual = ident_ending_at(code, before - 2).unwrap_or("").to_string();
                out.push(Call {
                    name: name.to_string(),
                    kind: CallKind::Qualified(qual),
                });
            }
            _ => out.push(Call {
                name: name.to_string(),
                kind: CallKind::Free,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn model(src: &str) -> (Vec<FnItem>, ModelFile) {
        let sf = SourceFile::parse(PathBuf::from("mem.rs"), src);
        let mut fns = Vec::new();
        let mf = lift(sf, "mem", 0, &mut fns);
        (fns, mf)
    }

    #[test]
    fn fn_spans_and_impl_context() {
        let src = "struct S;\nimpl S {\n    pub fn a(&self, x: u8) -> u8 {\n        helper(x)\n    }\n}\nfn helper(v: u8) -> u8 {\n    v\n}\n";
        let (fns, _) = model(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].impl_type.as_deref(), Some("S"));
        assert_eq!(fns[0].params, vec!["x"]);
        assert_eq!(fns[0].start, 2);
        assert_eq!(fns[0].end, 4);
        assert_eq!(fns[1].name, "helper");
        assert_eq!(fns[1].impl_type, None);
        assert_eq!(fns[1].params, vec!["v"]);
    }

    #[test]
    fn call_extraction_distinguishes_kinds() {
        let mut calls = Vec::new();
        extract_calls(
            "let y = helper(x) + obj.method(z) + Type::assoc(w);",
            &mut calls,
        );
        let kinds: Vec<(&str, &CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(kinds.len(), 3, "{kinds:?}");
        assert_eq!(calls[0].name, "helper");
        assert_eq!(calls[0].kind, CallKind::Free);
        assert_eq!(calls[1].name, "method");
        assert_eq!(calls[1].kind, CallKind::Method);
        assert_eq!(calls[2].name, "assoc");
        assert_eq!(calls[2].kind, CallKind::Qualified("Type".into()));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let mut calls = Vec::new();
        extract_calls(
            "if cond(x) { format!(\"{}\", y) } else { while bar() {} }",
            &mut calls,
        );
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["cond", "bar"], "{names:?}");
    }

    #[test]
    fn root_markers_and_name_rules() {
        let src = "// lint_root(ingest): parses wire bytes\nfn parse_frame(buf: &[u8]) {}\n\nfn fold(parts: Vec<u8>) {}\n\nfn ordinary() {}\n";
        let (fns, _) = model(src);
        assert_eq!(fns[0].roots, vec![RootClass::Ingest]);
        assert_eq!(fns[1].roots, vec![RootClass::Determinism]);
        assert!(fns[2].roots.is_empty());
    }

    #[test]
    fn multiline_signature_params() {
        let src = "fn f(\n    alpha: u32,\n    beta: &[u8],\n) -> u32 {\n    alpha\n}\n";
        let (fns, _) = model(src);
        assert_eq!(fns[0].params, vec!["alpha", "beta"]);
        assert_eq!(fns[0].end, 5);
    }

    #[test]
    fn imports_resolve_to_crate_dirs() {
        let src = "use dnhunter_dns::codec;\nuse dnhunter_telemetry::Metric as Tm;\nuse std::collections::BTreeMap;\n";
        let (_, mf) = model(src);
        assert_eq!(mf.imports, vec!["dns", "telemetry"]);
    }

    #[test]
    fn trait_impl_type_is_the_type_side() {
        let src = "impl FlowSink for StreamingAnalytics {\n    fn on_flow(&mut self) {}\n}\n";
        let (fns, _) = model(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("StreamingAnalytics"));
    }
}
