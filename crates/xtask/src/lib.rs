//! The xtask static-analysis library: lexical model ([`scan`]), item model
//! ([`model`]), call graph + reachability ([`graph`]), the token lints
//! L1–L6 ([`lints`]), the reachability lints L7–L10 ([`reach`]), and the
//! whole-workspace driver ([`runner`]).
//!
//! Split out of the `xtask` binary so the `lint_selftest` integration test
//! can run every lint against the fixture snippets under
//! `tests/fixtures/`.

pub mod ci_check;
pub mod graph;
pub mod lints;
pub mod model;
pub mod reach;
pub mod runner;
pub mod scan;

use std::path::{Path, PathBuf};

/// Workspace root, resolved from this crate's manifest directory so the
/// lint works from any working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// All `.rs` files under `dir`, recursively, in deterministic order.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}
