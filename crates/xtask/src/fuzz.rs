//! `cargo xtask fuzz` — a seeded, structure-aware corpus fuzzer for the
//! ingest parsers, self-contained so it runs in the offline build
//! environment (no cargo-fuzz, no libFuzzer).
//!
//! Four targets, one per parsing layer the fault model attacks:
//!
//! * `dns` — `dnhunter_dns::codec::decode` and `decode_tcp_stream`
//! * `net` — `dnhunter_net::Packet::parse`
//! * `dpi` — the flow-layer extractors (`http::parse_request`,
//!   `tls::inspect`, `dpi::classify`)
//! * `flowrec` — the DNFR flow-record stream decoder
//!   (`dnhunter_net::flowrec::decode_stream`), the daemon's NetFlow/IPFIX
//!   ingest surface
//!
//! Inputs start from a committed corpus (`tests/corpus/<target>/*.hex`)
//! plus programmatic seeds built with the crates' own builders, then get
//! mutated structure-aware-ly (length-field lies, compression pointers,
//! truncations, splices). Every case runs under `catch_unwind`: the
//! parsers' contract is *errors, never panics* (lint L1 enforces the same
//! statically; the fuzzer enforces it dynamically).
//!
//! On a panic the input is shrunk greedily to a minimal reproducer, hex
//! dumped into `tests/corpus/regressions/`, and the run exits non-zero.
//! Committed regressions are replayed before every run, so a fixed panic
//! stays fixed.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Fixed default seed: `cargo xtask fuzz` is reproducible run-to-run
/// unless `--seed` says otherwise.
const DEFAULT_SEED: u64 = 0xD0_5EED;
const DEFAULT_CASES: u64 = 100_000;
const SMOKE_CASES: u64 = 10_000;

/// splitmix64: tiny, seedable, and std-only.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Dns,
    Net,
    Dpi,
    Flowrec,
}

impl Target {
    const ALL: [Target; 4] = [Target::Dns, Target::Net, Target::Dpi, Target::Flowrec];

    fn name(self) -> &'static str {
        match self {
            Target::Dns => "dns",
            Target::Net => "net",
            Target::Dpi => "dpi",
            Target::Flowrec => "flowrec",
        }
    }

    fn from_name(name: &str) -> Option<Target> {
        Target::ALL.into_iter().find(|t| t.name() == name)
    }

    /// Run the target's parsers over `input`. Return values are
    /// deliberately discarded — the only failure mode under test is a
    /// panic, which `catch_unwind` at the call site turns into a finding.
    fn exercise(self, input: &[u8]) {
        match self {
            Target::Dns => {
                let _ = dnhunter_dns::codec::decode(input);
                let _ = dnhunter_dns::codec::decode_tcp_stream(input);
            }
            Target::Net => {
                let _ = dnhunter_net::Packet::parse(input);
                let _ = dnhunter_net::PacketView::parse(input);
            }
            Target::Dpi => {
                let _ = dnhunter_flow::http::looks_like_http_request(input);
                let _ = dnhunter_flow::http::parse_request(input);
                let _ = dnhunter_flow::tls::looks_like_tls(input);
                let _ = dnhunter_flow::tls::inspect(input);
                let mid = input.len() / 2;
                let (c2s, s2c) = input.split_at(mid);
                let _ = dnhunter_flow::dpi::classify(c2s, s2c, 443);
            }
            Target::Flowrec => {
                let _ = dnhunter_net::flowrec::decode_stream(input);
            }
        }
    }

    /// Builder-made seeds, so the corpus always contains structurally
    /// valid inputs for the mutators to break in interesting ways.
    fn builtin_seeds(self) -> Vec<Vec<u8>> {
        match self {
            Target::Dns => Vec::new(), // committed hex corpus covers DNS
            Target::Net => {
                use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};
                let c = std::net::Ipv4Addr::new(10, 0, 0, 1);
                let s = std::net::Ipv4Addr::new(93, 184, 216, 34);
                vec![
                    build_udp_v4(
                        MacAddr::from_id(1),
                        MacAddr::from_id(2),
                        c,
                        s,
                        40000,
                        53,
                        b"q",
                    )
                    .expect("seed frame builds"),
                    build_tcp_v4(
                        MacAddr::from_id(1),
                        MacAddr::from_id(2),
                        c,
                        s,
                        50000,
                        443,
                        7,
                        0,
                        TcpFlags::SYN,
                        &[],
                    )
                    .expect("seed frame builds"),
                ]
            }
            Target::Dpi => {
                use dnhunter_flow::{http, tls};
                vec![
                    http::build_request("GET", "/index.html", "www.example.com", "fuzz/1.0"),
                    http::build_response(200, 128),
                    tls::build_client_hello(Some("www.example.com"), 7),
                    tls::build_server_flight(Some("*.example.com"), 9),
                ]
            }
            Target::Flowrec => {
                use dnhunter_net::{DnsExportRecord, ExportRecord, FlowExportRecord};
                let c = std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1));
                let s = std::net::IpAddr::V4(std::net::Ipv4Addr::new(93, 184, 216, 34));
                let dns = ExportRecord::Dns(DnsExportRecord {
                    ts_micros: 1_000_000,
                    client: c,
                    message: vec![0x66, 0x61, 0x81, 0x80, 0, 1, 0, 0, 0, 0, 0, 0],
                });
                let flow = ExportRecord::Flow(FlowExportRecord {
                    first_ts: 1_000_500,
                    last_ts: 9_000_000,
                    client: c,
                    client_port: 40000,
                    server: s,
                    server_port: 443,
                    ip_proto: 6,
                    packets_c2s: 12,
                    packets_s2c: 18,
                    bytes_c2s: 900,
                    bytes_s2c: 21_000,
                });
                vec![
                    dnhunter_net::flowrec::encode_stream(std::slice::from_ref(&dns)),
                    dnhunter_net::flowrec::encode_stream(&[dns, flow]),
                ]
            }
        }
    }
}

pub fn run(args: &[String]) -> ExitCode {
    let mut cases = DEFAULT_CASES;
    let mut seed = DEFAULT_SEED;
    let mut max_seconds: u64 = 300;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                cases = SMOKE_CASES;
                max_seconds = 120;
            }
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cases = v,
                None => return bad_usage("--cases needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return bad_usage("--seed needs a number"),
            },
            "--max-seconds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_seconds = v,
                None => return bad_usage("--max-seconds needs a number"),
            },
            other => return bad_usage(&format!("unknown fuzz option `{other}`")),
        }
    }

    let root = xtask::workspace_root();
    let corpus_dir = root.join("tests").join("corpus");
    let regressions_dir = corpus_dir.join("regressions");

    // 1. Replay committed regressions: a fixed panic stays fixed. All
    //    files are replayed (panic hooks silenced) and every failure is
    //    reported together, so one reintroduced bug doesn't hide another
    //    and the output names exactly which corpus files to look at.
    let regressions = load_hex_dir(&regressions_dir);
    let failures = with_quiet_panics(|| {
        let mut failures: Vec<(&PathBuf, Target, usize, String)> = Vec::new();
        for (path, bytes) in &regressions {
            for t in target_for_file(path) {
                if let Err(msg) = run_case(t, bytes) {
                    failures.push((path, t, bytes.len(), msg));
                }
            }
        }
        failures
    });
    if !failures.is_empty() {
        eprintln!(
            "xtask fuzz: {} committed regression(s) panic again — a previously \
             fixed parser bug has been reintroduced:\n",
            failures.len()
        );
        eprintln!(
            "  {:<44} {:<6} {:>7}  panic",
            "corpus file", "target", "bytes"
        );
        for (path, target, len, msg) in &failures {
            let rel = path.strip_prefix(&root).unwrap_or(path.as_path()).display();
            eprintln!(
                "  {:<44} {:<6} {:>7}  {}",
                rel.to_string(),
                target.name(),
                len,
                msg.lines().next().unwrap_or("")
            );
        }
        eprintln!(
            "\n  reproduce one with its hex bytes (see the file) against the named \
             target's parsers; the fix must make the replay clean again before \
             `cargo xtask fuzz` passes"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "xtask fuzz: replayed {} committed regression(s), all clean",
        regressions.len()
    );

    // 2. Assemble the per-target corpora: committed hex + builder seeds.
    let mut corpora: Vec<(Target, Vec<Vec<u8>>)> = Vec::new();
    for t in Target::ALL {
        let mut seeds: Vec<Vec<u8>> = load_hex_dir(&corpus_dir.join(t.name()))
            .into_iter()
            .map(|(_, b)| b)
            .collect();
        seeds.extend(t.builtin_seeds());
        if seeds.is_empty() {
            eprintln!("xtask fuzz: no corpus for target `{}`", t.name());
            return ExitCode::FAILURE;
        }
        corpora.push((t, seeds));
    }

    // 3. The fuzz loop proper.
    let mut rng = Rng(seed);
    let started = Instant::now();
    let mut executed: u64 = 0;
    let mut per_target = [0u64; Target::ALL.len()];
    let result = with_quiet_panics(|| -> Option<(Target, Vec<u8>, String)> {
        while executed < cases {
            if started.elapsed().as_secs() >= max_seconds {
                break;
            }
            let idx = (executed % Target::ALL.len() as u64) as usize;
            let (target, seeds) = &corpora[idx];
            let input = mutate(seeds, &mut rng);
            executed += 1;
            per_target[idx] += 1;
            if let Err(msg) = run_case(*target, &input) {
                return Some((*target, input, msg));
            }
        }
        None
    });

    match result {
        None => {
            println!(
                "xtask fuzz: {executed} case(s) in {:.1}s, no panics \
                 (dns {}, net {}, dpi {}, flowrec {}; seed {seed})",
                started.elapsed().as_secs_f64(),
                per_target[0],
                per_target[1],
                per_target[2],
                per_target[3],
            );
            ExitCode::SUCCESS
        }
        Some((target, input, msg)) => {
            let minimal = with_quiet_panics(|| shrink(target, input));
            let path = write_regression(&regressions_dir, target, &minimal);
            eprintln!(
                "xtask fuzz: `{}` panicked after {executed} case(s): {msg}\n\
                 minimal reproducer ({} bytes) written to {}",
                target.name(),
                minimal.len(),
                path.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("xtask fuzz: {msg}");
    ExitCode::from(2)
}

/// Run one input through one target, turning a panic into `Err(message)`.
fn run_case(target: Target, input: &[u8]) -> Result<(), String> {
    panic::catch_unwind(AssertUnwindSafe(|| target.exercise(input))).map_err(|e| {
        e.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic payload not a string".into())
    })
}

/// Silence the default panic-to-stderr hook for the duration of `f`
/// (thousands of expected-catchable panic printouts would bury a finding).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(hook);
    out
}

/// One mutated input: pick a seed, stack 1–4 structure-aware mutations.
fn mutate(seeds: &[Vec<u8>], rng: &mut Rng) -> Vec<u8> {
    let mut buf = seeds[rng.below(seeds.len())].clone();
    for _ in 0..1 + rng.below(4) {
        match rng.below(8) {
            // Bit flip.
            0 if !buf.is_empty() => {
                let i = rng.below(buf.len());
                buf[i] ^= 1 << rng.below(8);
            }
            // Truncate: the snaplen fault, and every length field's enemy.
            1 if buf.len() > 1 => {
                let keep = 1 + rng.below(buf.len() - 1);
                buf.truncate(keep);
            }
            // Extend with junk.
            2 => {
                for _ in 0..1 + rng.below(32) {
                    buf.push(rng.next() as u8);
                }
            }
            // Lie in a 16-bit field (counts, lengths, rdlength...).
            3 if buf.len() >= 2 => {
                let i = rng.below(buf.len() - 1);
                let lie: u16 = match rng.below(5) {
                    0 => 0,
                    1 => 0xffff,
                    2 => buf.len() as u16,
                    3 => (buf.len() as u16).wrapping_sub(1),
                    _ => 0x8000,
                };
                buf[i] = (lie >> 8) as u8;
                buf[i + 1] = lie as u8;
            }
            // Plant a DNS compression pointer (possibly a loop).
            4 if buf.len() >= 2 => {
                let i = rng.below(buf.len() - 1);
                let at = rng.below(buf.len());
                buf[i] = 0xc0 | ((at >> 8) as u8 & 0x3f);
                buf[i + 1] = at as u8;
            }
            // Zero a range.
            5 if !buf.is_empty() => {
                let start = rng.below(buf.len());
                let end = (start + 1 + rng.below(16)).min(buf.len());
                for b in &mut buf[start..end] {
                    *b = 0;
                }
            }
            // Splice with another corpus entry.
            6 => {
                let other = &seeds[rng.below(seeds.len())];
                if !other.is_empty() && !buf.is_empty() {
                    let cut = rng.below(buf.len());
                    let from = rng.below(other.len());
                    buf.truncate(cut);
                    buf.extend_from_slice(&other[from..]);
                }
            }
            // Duplicate a slice in place (repeated labels / records).
            _ if buf.len() >= 4 => {
                let start = rng.below(buf.len() / 2);
                let len = 1 + rng.below((buf.len() - start).min(16));
                let slice = buf[start..start + len].to_vec();
                let at = rng.below(buf.len());
                for (k, b) in slice.into_iter().enumerate() {
                    buf.insert(at + k, b);
                }
            }
            _ => {}
        }
    }
    buf
}

/// Greedy shrink: keep any cut that still panics — halves off either end,
/// then window deletions, then single bytes. Bounded, deterministic.
fn shrink(target: Target, input: Vec<u8>) -> Vec<u8> {
    let still_panics = |bytes: &[u8]| run_case(target, bytes).is_err();
    let mut cur = input;
    let mut budget = 4_000usize;
    loop {
        let before = cur.len();
        // Chop halves and quarters off both ends.
        for denom in [2usize, 4] {
            let cut = cur.len() / denom;
            if cut == 0 {
                continue;
            }
            while budget > 0 && cur.len() > cut && still_panics(&cur[cut..]) {
                cur.drain(..cut);
                budget -= 1;
            }
            while budget > 0 && cur.len() > cut && still_panics(&cur[..cur.len() - cut]) {
                cur.truncate(cur.len() - cut);
                budget -= 1;
            }
        }
        // Window deletions, then single-byte deletions.
        for window in [8usize, 1] {
            let mut i = 0;
            while i < cur.len() && budget > 0 {
                let end = (i + window).min(cur.len());
                let mut trial = cur.clone();
                trial.drain(i..end);
                budget -= 1;
                if !trial.is_empty() && still_panics(&trial) {
                    cur = trial;
                } else {
                    i = end;
                }
            }
        }
        if cur.len() == before || budget == 0 {
            return cur;
        }
    }
}

/// Persist a minimal reproducer as hex under `regressions/`, named after
/// its target and content hash so replays know where to route it.
fn write_regression(dir: &Path, target: Target, bytes: &[u8]) -> PathBuf {
    let _ = std::fs::create_dir_all(dir);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let path = dir.join(format!("{}-{h:016x}.hex", target.name()));
    let mut text = String::from(
        "# Minimal reproducer found by `cargo xtask fuzz` — replayed before\n\
         # every fuzz run; delete only with the fix that makes it obsolete.\n",
    );
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 {
            text.push(if i % 16 == 0 { '\n' } else { ' ' });
        }
        text.push_str(&format!("{b:02x}"));
    }
    text.push('\n');
    let _ = std::fs::write(&path, text);
    path
}

/// Map a regression file to the target(s) it replays under, from its
/// `<target>-` name prefix; unprefixed files replay under every target.
fn target_for_file(path: &Path) -> Vec<Target> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    match name.split('-').next().and_then(Target::from_name) {
        Some(t) => vec![t],
        None => Target::ALL.to_vec(),
    }
}

/// Load every `*.hex` file under `dir` (hex bytes, whitespace-separated,
/// `#` comments), sorted by name for determinism.
fn load_hex_dir(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "hex"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match parse_hex(&text) {
            Some(bytes) => out.push((path, bytes)),
            None => eprintln!("xtask fuzz: skipping malformed hex file {}", path.display()),
        }
    }
    out
}

fn parse_hex(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            // Allow both "de ad" and "dead" token shapes.
            if tok.len() % 2 != 0 {
                return None;
            }
            for i in (0..tok.len()).step_by(2) {
                out.push(u8::from_str_radix(tok.get(i..i + 2)?, 16).ok()?);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        assert_eq!(
            parse_hex("de ad\nbe ef # comment"),
            Some(vec![0xde, 0xad, 0xbe, 0xef])
        );
        assert_eq!(parse_hex("dead beef"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
        assert_eq!(parse_hex("xyz"), None);
        assert_eq!(parse_hex(""), Some(Vec::new()));
    }

    #[test]
    fn targets_never_panic_on_committed_shapes() {
        // The hostile DNS shapes from the fault plan, inlined: the fuzz
        // targets must reject them without panicking.
        let loop_ptr = {
            let mut p = vec![0x66, 0x61, 0x81, 0x80, 0, 1, 0, 0, 0, 0, 0, 0];
            p.extend_from_slice(&[0xc0, 12, 0, 1, 0, 1]);
            p
        };
        for t in Target::ALL {
            assert!(run_case(t, &loop_ptr).is_ok());
            assert!(run_case(t, &[]).is_ok());
            assert!(run_case(t, &[0xff; 3]).is_ok());
        }
    }

    #[test]
    fn mutator_is_deterministic_per_seed() {
        let seeds = vec![vec![1u8, 2, 3, 4, 5, 6, 7, 8]];
        let a: Vec<Vec<u8>> = {
            let mut rng = Rng(42);
            (0..50).map(|_| mutate(&seeds, &mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = Rng(42);
            (0..50).map(|_| mutate(&seeds, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shrinker_reaches_a_small_reproducer() {
        // A stand-in "parser" cannot be injected into `shrink` (it fuzzes
        // the real targets), so exercise the windowed deletion logic via a
        // real non-panic: shrink must return the input unchanged-or-smaller
        // and never loop forever on a healthy target.
        let out = shrink(Target::Dns, vec![0u8; 64]);
        assert!(out.len() <= 64);
    }
}
