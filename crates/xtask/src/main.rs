//! `cargo xtask` — workspace automation for the DN-Hunter reproduction.
//!
//! Subcommands:
//!
//! * `lint` — the invariant gate described in DESIGN.md ("Machine-checked
//!   invariants"): workspace-specific lints (L1–L11) that encode properties
//!   the paper's hot path depends on and that rustc/clippy cannot express,
//!   including the call-graph reachability lints L7–L10. Exits non-zero on
//!   any violation, so CI can gate on it. `--json` prints machine-readable
//!   findings; `--github` adds `::error file=…,line=…` annotation lines.
//! * `ci-check` — the CI coverage gate: every integration test must be
//!   wired into a workflow step, and every `--test`/`--bin` a workflow
//!   invokes must still exist (see `ci_check.rs`).
//! * `fuzz` — the seeded structure-aware corpus fuzzer over the ingest
//!   parsers (DNS codec, frame parser, DPI extractors); panics shrink to
//!   minimal reproducers committed under `tests/corpus/regressions/`.
//! * `bench-diff` — the performance-regression gate: compares a fresh
//!   `BENCH_sniffer.json` against the committed `BENCH_baseline.json` and
//!   fails CI on a >15% throughput drop (see `bench_diff.rs` for the
//!   `BENCH_OVERRIDE` waiver protocol).
//!
//! All run as `cargo xtask <cmd>` (aliased in `.cargo/config.toml`).

mod bench_diff;
mod fuzz;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("ci-check") => ci_check(&args[1..]),
        Some("fuzz") => fuzz::run(&args[1..]),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  lint        run the workspace invariant lints (L1-L11)\n              [--json] [--github]\n  ci-check    verify the CI workflows and the integration-test suite\n              agree (every test wired in; no stale targets)\n  fuzz        seeded corpus fuzzer over the ingest parsers\n              [--smoke] [--cases N] [--seed S] [--max-seconds T]\n  bench-diff  compare BENCH_sniffer.json against the committed baseline\n              [--baseline PATH] [--current PATH] [--threshold PCT] [--update]"
    );
}

fn ci_check(args: &[String]) -> ExitCode {
    if let Some(bad) = args.first() {
        eprintln!("xtask ci-check: unknown flag `{bad}` (the check takes no options)");
        return ExitCode::from(2);
    }
    let root = xtask::workspace_root();
    match xtask::ci_check::check(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask ci-check: workflows and test suite agree");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask ci-check: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask ci-check: {e}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let github = args.iter().any(|a| a == "--github");
    if let Some(bad) = args.iter().find(|a| *a != "--json" && *a != "--github") {
        eprintln!("xtask lint: unknown flag `{bad}`");
        return ExitCode::from(2);
    }
    let root = xtask::workspace_root();
    let outcome = match xtask::runner::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = &outcome.violations;
    if json {
        println!("{}", render_json(&outcome));
    } else {
        for v in violations {
            println!(
                "{}:{}: [{}] {}",
                v.path.display(),
                v.line,
                v.lint,
                v.message
            );
        }
        if violations.is_empty() {
            println!(
                "xtask lint: clean ({} files, lints L1-L11)",
                outcome.files_scanned
            );
        } else {
            println!(
                "xtask lint: {} violation(s) across {} files",
                violations.len(),
                outcome.files_scanned
            );
        }
    }
    if github {
        for v in violations {
            // GitHub annotation protocol: %0A escapes newlines; our
            // messages are single-line already.
            println!(
                "::error file={},line={},title=xtask lint {}::{}",
                v.path.display(),
                v.line,
                v.lint,
                v.message
            );
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Machine-readable findings for CI (`lint --json`). Hand-rolled because
/// the vendored `serde_json` shim has no `json!` macro; the escaping is
/// validated by round-tripping through `serde_json::from_str` in tests.
fn render_json(outcome: &xtask::runner::LintOutcome) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, v) in outcome.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&v.path.to_string_lossy()),
            v.line,
            v.lint,
            json_escape(&v.message)
        ));
    }
    out.push_str(&format!(
        "],\"files_scanned\":{},\"clean\":{}}}",
        outcome.files_scanned,
        outcome.violations.is_empty()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn json_output_round_trips_through_the_parser() {
        let outcome = xtask::runner::LintOutcome {
            violations: vec![xtask::lints::Violation {
                path: PathBuf::from("crates/dns/src/codec.rs"),
                line: 7,
                lint: "L8",
                message: "size \"n\"\tderives from input\\net".into(),
            }],
            files_scanned: 3,
        };
        let text = render_json(&outcome);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(doc["clean"], serde_json::Value::Bool(false));
        let v = &doc["violations"][0];
        assert_eq!(
            v["line"],
            serde_json::from_str::<serde_json::Value>("7").unwrap()
        );
        assert!(v["message"].as_str().unwrap_or("").contains("derives"));
    }
}
