//! `cargo xtask` — workspace automation for the DN-Hunter reproduction.
//!
//! Two subcommands:
//!
//! * `lint` — the invariant gate described in DESIGN.md ("Machine-checked
//!   invariants"): workspace-specific lints (L1–L6) that encode properties
//!   the paper's hot path depends on and that rustc/clippy cannot express.
//!   Exits non-zero on any violation, so CI can gate on it.
//! * `fuzz` — the seeded structure-aware corpus fuzzer over the ingest
//!   parsers (DNS codec, frame parser, DPI extractors); panics shrink to
//!   minimal reproducers committed under `tests/corpus/regressions/`.
//! * `bench-diff` — the performance-regression gate: compares a fresh
//!   `BENCH_sniffer.json` against the committed `BENCH_baseline.json` and
//!   fails CI on a >15% throughput drop (see `bench_diff.rs` for the
//!   `BENCH_OVERRIDE` waiver protocol).
//!
//! All run as `cargo xtask <cmd>` (aliased in `.cargo/config.toml`).

mod bench_diff;
mod fuzz;
mod lints;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lints::Violation;
use scan::SourceFile;

/// Hot-path crates: per-packet code where a panic or a SipHash map is a
/// correctness/performance bug (L1, L2).
const HOT_CRATES: &[&str] = &["net", "dns", "flow", "resolver", "telemetry"];
/// Crates whose hot paths carry metric updates and must use the `tm_*!`
/// macros (L5). The `telemetry` crate itself is exempt: it *defines* the
/// recorder functions the macros expand to.
const L5_EXEMPT_CRATES: &[&str] = &["telemetry"];
/// Extra files outside the hot crates whose metric updates L5 checks.
const L5_EXTRA_FILES: &[&str] = &["crates/core/src/sniffer.rs"];
/// Crates holding locks whose guard discipline L3 checks.
const LOCK_CRATES: &[&str] = &["resolver"];
/// Crates whose public API must cite the paper (L4).
const DOC_CRATES: &[&str] = &["resolver", "dns"];
/// Individual per-packet files in crates that are otherwise not hot
/// (the `core` crate also holds reporting/export code where a panic is
/// acceptable). These get the hot-path treatment (L1, L2) plus the guard
/// discipline check (L3) — the pipeline holds ring locks and sends across
/// channels, the classic place to deadlock a sniffer.
const HOT_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/ring.rs",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("fuzz") => fuzz::run(&args[1..]),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  lint        run the workspace invariant lints (L1-L6)\n  fuzz        seeded corpus fuzzer over the ingest parsers\n              [--smoke] [--cases N] [--seed S] [--max-seconds T]\n  bench-diff  compare BENCH_sniffer.json against the committed baseline\n              [--baseline PATH] [--current PATH] [--threshold PCT] [--update]"
    );
}

/// Workspace root, resolved from this crate's manifest directory so the
/// lint works from any working directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations: Vec<Violation> = Vec::new();
    let mut files_scanned = 0usize;

    let mut crates: Vec<&str> = HOT_CRATES.to_vec();
    for c in DOC_CRATES.iter().chain(LOCK_CRATES) {
        if !crates.contains(c) {
            crates.push(c);
        }
    }
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        for path in rust_files(&src) {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xtask lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.strip_prefix(&root).unwrap_or(&path).to_path_buf();
            let file = SourceFile::parse(rel, &text);
            files_scanned += 1;
            violations.extend(lints::check_markers(&file));
            if HOT_CRATES.contains(&krate) {
                violations.extend(lints::l1_no_panics(&file));
                violations.extend(lints::l2_no_siphash_maps(&file));
                if !L5_EXEMPT_CRATES.contains(&krate) {
                    violations.extend(lints::l5_telemetry_macros(&file));
                }
            }
            if LOCK_CRATES.contains(&krate) {
                violations.extend(lints::l3_no_guard_across_shards(&file));
            }
            if DOC_CRATES.contains(&krate) {
                violations.extend(lints::l4_docs_cite_paper(&file));
            }
        }
    }
    for rel in HOT_FILES {
        let path = root.join(rel);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let file = SourceFile::parse(PathBuf::from(rel), &text);
        files_scanned += 1;
        violations.extend(lints::check_markers(&file));
        violations.extend(lints::l1_no_panics(&file));
        violations.extend(lints::l2_no_siphash_maps(&file));
        violations.extend(lints::l3_no_guard_across_shards(&file));
        violations.extend(lints::l5_telemetry_macros(&file));
    }
    for rel in L5_EXTRA_FILES {
        let path = root.join(rel);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let file = SourceFile::parse(PathBuf::from(rel), &text);
        files_scanned += 1;
        violations.extend(lints::check_markers(&file));
        violations.extend(lints::l5_telemetry_macros(&file));
    }
    violations.extend(lints::l6_proptest_corpora(&root));

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        println!(
            "{}:{}: [{}] {}",
            v.path.display(),
            v.line,
            v.lint,
            v.message
        );
    }
    if violations.is_empty() {
        println!("xtask lint: clean ({files_scanned} files, lints L1-L6)");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) across {files_scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// All `.rs` files under `dir`, recursively, in deterministic order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}
