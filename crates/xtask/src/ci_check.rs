//! `cargo xtask ci-check` — keeps the CI workflows and the test suite
//! pointing at each other.
//!
//! Two failure modes creep in silently as a workspace grows:
//!
//! 1. A new integration test lands (`tests/*.rs` or `crates/*/tests/*.rs`)
//!    but no workflow step ever runs it — green CI, untested code.
//! 2. A test or binary is renamed or deleted but a workflow still invokes
//!    it — CI fails for everyone at the worst time, or worse, a
//!    `cargo test --test gone` step is quietly edited out instead of the
//!    coverage being restored.
//!
//! `ci-check` closes the loop in both directions with a std-only line
//! scan of `.github/workflows/*.yml`:
//!
//! * every integration test target must be *covered*: named by a
//!   `--test <stem>` in some workflow `run:` step, or swept up by a
//!   blanket `cargo test --workspace` (or `cargo test -p <pkg>`) that
//!   carries no target filter (`--lib`/`--bins`/`--doc`/... exclude
//!   integration tests and do not count);
//! * every `--test`, `--bin`, and `-p`/`--package` a workflow names must
//!   resolve to a target that still exists.
//!
//! The scanner is parameterized by the root directory so the selftest can
//! point it at fixture trees (see `tests/ci_check_selftest.rs`).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One mismatch between the workflows and the workspace.
#[derive(Debug)]
pub struct Finding {
    /// File the finding anchors to (workflow or test file), root-relative.
    pub file: PathBuf,
    /// 1-indexed line in `file`; 0 when the finding is about an absence.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
    }
}

/// A cargo package: its name, the integration-test stems under its
/// `tests/`, and its binary target names.
struct Package {
    name: String,
    /// Root-relative path of the package's `tests/` dir (for messages).
    tests_dir: PathBuf,
    tests: Vec<String>,
    bins: Vec<String>,
    is_root: bool,
}

/// One workflow reference to a cargo target, with its source position.
struct TargetRef {
    /// Package named by `-p`/`--package` on the same line, if any.
    pkg: Option<String>,
    name: String,
    file: PathBuf,
    line: usize,
}

/// Everything the workflows invoke, accumulated over every `.yml` file.
#[derive(Default)]
struct WorkflowCmds {
    /// A filterless `cargo test --workspace` exists somewhere.
    blanket_all: bool,
    /// Packages swept by a filterless `cargo test -p <pkg>`.
    blanket_pkgs: BTreeSet<String>,
    /// A filterless bare `cargo test` (runs the root package).
    blanket_root: bool,
    tests: Vec<TargetRef>,
    bins: Vec<TargetRef>,
    pkgs: Vec<TargetRef>,
}

/// Run the check over the workspace (or fixture tree) at `root`.
/// Returns the findings; an empty vec means the workflows and the test
/// suite agree.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let packages = collect_packages(root)?;
    let cmds = scan_workflows(root)?;
    let mut findings = Vec::new();

    let known_pkgs: BTreeSet<&str> = packages.iter().map(|p| p.name.as_str()).collect();

    // Workflows must not name packages that no longer exist.
    for r in &cmds.pkgs {
        if !known_pkgs.contains(r.name.as_str()) {
            findings.push(Finding {
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "workflow step names package `{}`, which does not exist",
                    r.name
                ),
            });
        }
    }

    // Every `--test <stem>` must resolve to an existing integration test
    // (in the `-p` package when one is named, anywhere otherwise).
    for r in &cmds.tests {
        let exists = packages.iter().any(|p| {
            r.pkg.as_deref().is_none_or(|pkg| pkg == p.name) && p.tests.iter().any(|t| t == &r.name)
        });
        if !exists {
            findings.push(Finding {
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "workflow step invokes `--test {}`{}, but no such integration test exists — \
                     delete the step or restore the test",
                    r.name,
                    r.pkg
                        .as_deref()
                        .map(|p| format!(" in package `{p}`"))
                        .unwrap_or_default(),
                ),
            });
        }
    }

    // Every `--bin <name>` must resolve to an existing binary target.
    for r in &cmds.bins {
        let exists = packages.iter().any(|p| {
            r.pkg.as_deref().is_none_or(|pkg| pkg == p.name) && p.bins.iter().any(|b| b == &r.name)
        });
        if !exists {
            findings.push(Finding {
                file: r.file.clone(),
                line: r.line,
                message: format!(
                    "workflow step invokes `--bin {}`{}, but no such binary target exists",
                    r.name,
                    r.pkg
                        .as_deref()
                        .map(|p| format!(" in package `{p}`"))
                        .unwrap_or_default(),
                ),
            });
        }
    }

    // Every integration test must be exercised by some workflow step.
    for p in &packages {
        let blanketed = cmds.blanket_all
            || cmds.blanket_pkgs.contains(&p.name)
            || (cmds.blanket_root && p.is_root);
        if blanketed {
            continue;
        }
        for t in &p.tests {
            let named = cmds
                .tests
                .iter()
                .any(|r| r.name == *t && r.pkg.as_deref().is_none_or(|pkg| pkg == p.name));
            if !named {
                findings.push(Finding {
                    file: p.tests_dir.join(format!("{t}.rs")),
                    line: 0,
                    message: format!(
                        "integration test `{t}` (package `{}`) is not exercised by any CI \
                         workflow step — add a `cargo test --test {t}` step or a blanket \
                         `cargo test --workspace`",
                        p.name
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    Ok(findings)
}

/// The root package (if the root manifest has `[package]`) plus every
/// direct `crates/*` package.
fn collect_packages(root: &Path) -> Result<Vec<Package>, String> {
    let mut out = Vec::new();
    if let Some(p) = read_package(root, root, true) {
        out.push(p);
    }
    let crates = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    for dir in dirs {
        if let Some(p) = read_package(root, &dir, false) {
            out.push(p);
        }
    }
    if out.is_empty() {
        return Err(format!("no cargo packages found under {}", root.display()));
    }
    Ok(out)
}

/// Parse one package dir: name from `Cargo.toml`, test stems from
/// `tests/*.rs`, bin names from `[[bin]]` sections plus the implicit
/// `src/bin/*.rs` and `src/main.rs` targets.
fn read_package(root: &Path, dir: &Path, is_root: bool) -> Option<Package> {
    let manifest = std::fs::read_to_string(dir.join("Cargo.toml")).ok()?;
    let (name, mut bins) = parse_manifest(&manifest)?;
    let mut tests: Vec<String> = rs_stems(&dir.join("tests"));
    tests.sort();
    for stem in rs_stems(&dir.join("src").join("bin")) {
        if !bins.contains(&stem) {
            bins.push(stem);
        }
    }
    if dir.join("src").join("main.rs").is_file() && !bins.contains(&name) {
        bins.push(name.clone());
    }
    let tests_dir = dir
        .strip_prefix(root)
        .unwrap_or(Path::new(""))
        .join("tests");
    Some(Package {
        name,
        tests_dir,
        tests,
        bins,
        is_root,
    })
}

/// Minimal manifest scan: the `[package]` name and `[[bin]]` names. A
/// full TOML parser would be overkill for the two keys the check needs.
fn parse_manifest(text: &str) -> Option<(String, Vec<String>)> {
    let mut section = String::new();
    let mut name = None;
    let mut bins = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        let Some(value) = line
            .strip_prefix("name")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
        else {
            continue;
        };
        let value = value.trim().trim_matches('"').to_string();
        match section.as_str() {
            "[package]" if name.is_none() => name = Some(value),
            "[[bin]]" => bins.push(value),
            _ => {}
        }
    }
    Some((name?, bins))
}

/// Stems of the `.rs` files directly under `dir` (non-recursive: cargo
/// only auto-discovers direct children of `tests/` and `src/bin/`).
fn rs_stems(dir: &Path) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "rs"))
                .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// Scan every workflow under `.github/workflows/` for cargo invocations.
fn scan_workflows(root: &Path) -> Result<WorkflowCmds, String> {
    let dir = root.join(".github").join("workflows");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "yml" || e == "yaml"))
        .collect();
    files.sort();
    let mut cmds = WorkflowCmds::default();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        for (i, line) in text.lines().enumerate() {
            scan_line(line, &rel, i + 1, &mut cmds);
        }
    }
    Ok(cmds)
}

/// Target filters that restrict `cargo test` away from integration tests:
/// a blanket run carrying any of these does not cover `tests/*.rs`.
const NON_INTEGRATION_FILTERS: &[&str] = &[
    "--lib",
    "--bins",
    "--bin",
    "--doc",
    "--examples",
    "--example",
    "--benches",
    "--bench",
];

/// Parse one workflow line for cargo test/run target references.
fn scan_line(line: &str, file: &Path, lineno: usize, cmds: &mut WorkflowCmds) {
    let is_test = line.contains("cargo test");
    let is_run = line.contains("cargo run");
    if !is_test && !is_run {
        return;
    }
    // Tokens up to the first bare `--`: everything after it goes to the
    // invoked program, not to cargo.
    let tokens: Vec<&str> = line.split_whitespace().take_while(|t| *t != "--").collect();
    let value_after = |flag: &str| -> Vec<&str> {
        tokens
            .windows(2)
            .filter(|w| w[0] == flag)
            .map(|w| w[1])
            .collect()
    };
    let pkg = value_after("-p")
        .into_iter()
        .chain(value_after("--package"))
        .next()
        .map(str::to_string);
    if let Some(p) = &pkg {
        cmds.pkgs.push(TargetRef {
            pkg: None,
            name: p.clone(),
            file: file.to_path_buf(),
            line: lineno,
        });
    }
    for bin in value_after("--bin") {
        cmds.bins.push(TargetRef {
            pkg: pkg.clone(),
            name: bin.to_string(),
            file: file.to_path_buf(),
            line: lineno,
        });
    }
    if !is_test {
        return;
    }
    let named: Vec<&str> = value_after("--test");
    if !named.is_empty() {
        for t in named {
            cmds.tests.push(TargetRef {
                pkg: pkg.clone(),
                name: t.to_string(),
                file: file.to_path_buf(),
                line: lineno,
            });
        }
        return;
    }
    if tokens.iter().any(|t| NON_INTEGRATION_FILTERS.contains(t)) {
        return;
    }
    if tokens.iter().any(|t| *t == "--workspace" || *t == "--all") {
        cmds.blanket_all = true;
    } else if let Some(p) = pkg {
        cmds.blanket_pkgs.insert(p);
    } else {
        cmds.blanket_root = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_scan_finds_package_and_bin_names() {
        let (name, bins) = parse_manifest(
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[[bin]]\nname = \"tool\"\npath = \"src/tool.rs\"\n\n[dependencies]\nname = \"not-a-target\"\n",
        )
        .expect("package section parses");
        assert_eq!(name, "demo");
        assert_eq!(bins, vec!["tool".to_string()]);
        assert!(parse_manifest("[workspace]\nmembers = []\n").is_none());
    }

    fn scan(line: &str) -> WorkflowCmds {
        let mut cmds = WorkflowCmds::default();
        scan_line(line, Path::new("wf.yml"), 1, &mut cmds);
        cmds
    }

    #[test]
    fn blanket_and_explicit_test_lines_are_classified() {
        assert!(scan("          run: cargo test --workspace").blanket_all);
        assert!(scan("cargo test").blanket_root);
        assert!(scan("cargo test -p widget").blanket_pkgs.contains("widget"));
        // Target filters exclude integration tests: not a blanket.
        let libs = scan("cargo test -p widget --lib --bins");
        assert!(!libs.blanket_all && libs.blanket_pkgs.is_empty() && !libs.blanket_root);

        let named = scan(
            "FAULT_MATRIX_FULL=1 cargo test --release -p demo --test fault_matrix -- --nocapture",
        );
        assert!(!named.blanket_all && named.blanket_pkgs.is_empty());
        assert_eq!(named.tests.len(), 1);
        assert_eq!(named.tests[0].name, "fault_matrix");
        assert_eq!(named.tests[0].pkg.as_deref(), Some("demo"));
    }

    #[test]
    fn run_lines_contribute_bin_refs_and_stop_at_the_separator() {
        let cmds = scan("cargo run --release -p simnet --bin gen-trace -- --test not-a-target");
        assert_eq!(cmds.bins.len(), 1);
        assert_eq!(cmds.bins[0].name, "gen-trace");
        // `--test` after the `--` separator belongs to the program.
        assert!(cmds.tests.is_empty());
        assert!(!cmds.blanket_all && !cmds.blanket_root);
    }
}
