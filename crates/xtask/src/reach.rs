//! Reachability lints L7–L10 over the [`crate::graph::Workspace`].
//!
//! | id | invariant |
//! |----|-----------|
//! | L7 | determinism-reachable code has no nondeterminism sources: no iteration over default-hasher maps/sets, no clocks, no `std::env`, no RNG, no pointer formatting |
//! | L8 | ingest-reachable allocations sized from parsed/network values are clamped by a named cap constant on the same statement |
//! | L9 | the `telemetry::Metric` catalog and `tm_*!` sites agree, and Stable-class metrics are only updated inside the deterministic dataflow |
//! | L10 | the `telemetry::TraceEvent` catalog and `tm_trace*!` sites agree, and no record site allocates, locks, or formats in its arguments |
//!
//! All four return **raw** findings; marker suppression happens in the
//! driver so stale markers can be detected (M2).

use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::graph::{Workspace, REACH_DETERMINISM, REACH_INGEST};
use crate::lints::Violation;
use crate::scan::SourceFile;

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Identifier ending at byte `end` (exclusive) of `s`.
fn ident_before(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut w = end;
    while w > 0 && is_ident_char(bytes[w - 1] as char) {
        w -= 1;
    }
    if w == end {
        None
    } else {
        Some(&s[w..end])
    }
}

/// Does `text` contain `ident` as a whole word?
fn mentions_ident(text: &str, ident: &str) -> bool {
    for (pos, _) in text.match_indices(ident) {
        let before_ok = pos == 0 || !is_ident_char(char_at(text, pos - 1));
        let after = pos + ident.len();
        let after_ok = after >= text.len() || !is_ident_char(char_at(text, after));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

fn char_at(s: &str, byte_idx: usize) -> char {
    s[byte_idx..].chars().next().unwrap_or(' ')
}

// ---------------------------------------------------------------------------
// L7 — determinism
// ---------------------------------------------------------------------------

/// Tokens that read a wall/monotonic clock or the process environment.
const L7_AMBIENT_TOKENS: &[(&str, &str)] = &[
    ("SystemTime::now", "reads the wall clock"),
    ("Instant::now", "reads the monotonic clock"),
    ("std::env::", "reads the process environment"),
    ("env::var(", "reads the process environment"),
    ("env::vars(", "reads the process environment"),
    ("env::args(", "reads the process arguments"),
];

/// Tokens that introduce randomness.
const L7_RNG_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "rand::random",
    "SmallRng",
    "StdRng",
    ".gen_range(",
    ".gen::<",
];

/// Map/set adaptors whose visit order is the hasher's, i.e. nondeterministic
/// for the default `RandomState`.
const ORDER_SENSITIVE_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Names declared as default-hasher `HashMap`/`HashSet` anywhere in `file`:
/// struct fields (`name: HashMap<...>`) and let-bindings
/// (`let name = HashMap::new()` / `let name: HashSet<...>`). File-level
/// rather than per-scope — an over-approximation a marker can waive.
pub fn default_hasher_names(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &file.lines {
        let code = line.code.as_str();
        for token in ["HashMap", "HashSet"] {
            for (pos, _) in code.match_indices(token) {
                if pos > 0 && is_ident_char(char_at(code, pos - 1)) {
                    continue; // FnvHashMap and friends use a fixed hasher
                }
                let mut before = code[..pos].trim_end();
                // Peel a path qualifier (`std::collections::HashMap`) so the
                // binding name left of the type annotation is what we read.
                while before.ends_with("::") {
                    before = before[..before.len() - 2].trim_end();
                    while before
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        before = &before[..before.len() - 1];
                    }
                    before = before.trim_end();
                }
                let name = if let Some(b) = before.strip_suffix(':') {
                    // `name: HashMap<...>` (field or typed binding)
                    ident_before(b.trim_end(), b.trim_end().len()).map(str::to_string)
                } else if let Some(b) = before.strip_suffix('=') {
                    // `let name = HashMap::new()`
                    ident_before(b.trim_end(), b.trim_end().len()).map(str::to_string)
                } else {
                    None
                };
                if let Some(n) = name {
                    if n != "mut" && n != "let" {
                        out.insert(n);
                    }
                }
            }
        }
    }
    out
}

/// L7: code reachable from determinism roots must be a pure function of the
/// input trace — byte-identical output sequential vs `--workers N` depends
/// on it (DESIGN.md §8, §11).
pub fn l7_determinism(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        let hasher_names = default_hasher_names(&file.source);
        for &f in &file.fns {
            let item = &ws.fns[f];
            if item.test || ws.reach[f] & REACH_DETERMINISM == 0 {
                continue;
            }
            let label = ws.fn_label(f);
            for i in item.start..=item.end.min(file.source.lines.len() - 1) {
                let line = &file.source.lines[i];
                if line.test {
                    continue;
                }
                let code = line.code.as_str();
                for (tok, what) in L7_AMBIENT_TOKENS {
                    if code.contains(tok) {
                        out.push(Violation {
                            path: file.source.path.clone(),
                            line: i + 1,
                            lint: "L7",
                            message: format!(
                                "`{tok}` {what} in `{label}`, which is reachable from a determinism root"
                            ),
                        });
                    }
                }
                for tok in L7_RNG_TOKENS {
                    if code.contains(tok) {
                        out.push(Violation {
                            path: file.source.path.clone(),
                            line: i + 1,
                            lint: "L7",
                            message: format!(
                                "RNG use (`{}`) in `{label}`, which is reachable from a determinism root",
                                tok.trim_matches(['.', '(', '<', ':'])
                            ),
                        });
                    }
                }
                if line.raw.contains("{:p}") || line.raw.contains("{:#p}") {
                    out.push(Violation {
                        path: file.source.path.clone(),
                        line: i + 1,
                        lint: "L7",
                        message: format!(
                            "pointer formatting (`{{:p}}`) in `{label}`; addresses vary per run"
                        ),
                    });
                }
                // Iteration over default-hasher collections.
                for m in ORDER_SENSITIVE_METHODS {
                    for (pos, _) in code.match_indices(m) {
                        let Some(recv) = ident_before(code, pos) else {
                            continue;
                        };
                        if hasher_names.contains(recv) {
                            out.push(Violation {
                                path: file.source.path.clone(),
                                line: i + 1,
                                lint: "L7",
                                message: format!(
                                    "`{recv}{}` iterates a default-hasher collection in `{label}`; visit order is nondeterministic — use a BTree map/set or sort first",
                                    m.trim_end_matches('(')
                                ),
                            });
                        }
                    }
                }
                // `for x in map` / `for x in &map` direct iteration.
                if let Some(pos) = find_for_in(code) {
                    let expr = code[pos..].trim();
                    let expr = expr.trim_start_matches(['&', ' ']);
                    let head: String = expr
                        .chars()
                        .take_while(|&c| is_ident_char(c) || c == '.')
                        .collect();
                    let last = head.rsplit('.').next().unwrap_or("");
                    if hasher_names.contains(last) {
                        out.push(Violation {
                            path: file.source.path.clone(),
                            line: i + 1,
                            lint: "L7",
                            message: format!(
                                "`for … in {head}` iterates a default-hasher collection in `{label}`; visit order is nondeterministic"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Byte offset just past ` in ` of a `for … in ` header, if present.
fn find_for_in(code: &str) -> Option<usize> {
    let for_pos = code
        .match_indices("for ")
        .find(|&(p, _)| p == 0 || !is_ident_char(char_at(code, p.saturating_sub(1))))?
        .0;
    let in_rel = code[for_pos..].find(" in ")?;
    Some(for_pos + in_rel + 4)
}

// ---------------------------------------------------------------------------
// L8 — bounded allocation
// ---------------------------------------------------------------------------

/// A size expression is "clamped" when the statement pins it under a named
/// cap on the same statement: a `.min(`/`.clamp(`/`cmp::min(` call plus a
/// SCREAMING_CASE constant somewhere in the statement.
fn is_clamped(stmt: &str) -> bool {
    let has_clamp = stmt.contains(".min(") || stmt.contains(".clamp(") || stmt.contains("min(");
    has_clamp && has_cap_const(stmt)
}

/// Any SCREAMING_CASE identifier (≥2 letters, all uppercase/digits/`_`).
fn has_cap_const(stmt: &str) -> bool {
    let mut start = None;
    let mut letters = 0usize;
    for (i, c) in stmt.char_indices() {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
                letters = 0;
            }
            if c.is_ascii_alphabetic() {
                if c.is_ascii_lowercase() {
                    // disqualify this token
                    letters = usize::MAX;
                } else if letters != usize::MAX {
                    letters += 1;
                }
            }
        } else if start.take().is_some() && letters != usize::MAX && letters >= 2 {
            return true;
        }
    }
    start.is_some() && letters != usize::MAX && letters >= 2
}

/// Allocation tokens L8 inspects, with how to find their size expression.
const ALLOC_TOKENS: &[&str] = &["with_capacity(", ".reserve(", ".reserve_exact(", ".resize("];

/// L8: in ingest-reachable code, allocation sizes derived from parsed or
/// network values must be clamped by a named cap constant on the same
/// statement (PR 4's hostile-input discipline, DESIGN.md §8). Taint is
/// intraprocedural: the function's parameters seed it, `let` bindings whose
/// initializer mentions a tainted name propagate it — the same style as
/// L3's guard tracking.
pub fn l8_bounded_alloc(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in &ws.files {
        for &f in &file.fns {
            let item = &ws.fns[f];
            if item.test || ws.reach[f] & REACH_INGEST == 0 {
                continue;
            }
            let label = ws.fn_label(f);
            let mut tainted: BTreeSet<String> = item.params.iter().cloned().collect();
            let lines = &file.source.lines;
            let body_start = (item.start + 1).min(item.end); // skip the signature
            let mut i = body_start;
            while i <= item.end.min(lines.len() - 1) {
                // Skip blank and comment-only lines so findings anchor on
                // the statement's first *code* line — that is the line an
                // `allow_lint` marker above the statement covers.
                if lines[i].code.trim().is_empty() {
                    i += 1;
                    continue;
                }
                // Join one statement: lines until one ends in `;`, `{`, or `}`.
                let first = i;
                let mut stmt = String::new();
                loop {
                    let l = lines[i].code.trim();
                    stmt.push_str(l);
                    stmt.push(' ');
                    let done = l.ends_with(';')
                        || l.ends_with('{')
                        || l.ends_with('}')
                        || l.ends_with(',')
                        || i >= item.end.min(lines.len() - 1)
                        || i >= first + 12;
                    i += 1;
                    if done {
                        break;
                    }
                }
                if lines[first].test {
                    continue;
                }
                // Taint propagation through let-bindings, including tuple /
                // struct destructuring (`let (header, counts) = dec.header()?`).
                if let Some(rest) = stmt.trim_start().strip_prefix("let ") {
                    if let Some((pat, rhs)) = rest.split_once('=') {
                        // Drop the type annotation so `v: Vec<u8>` taints
                        // only `v`, not `Vec`.
                        let pat = pat.split(':').next().unwrap_or(pat);
                        if tainted.iter().any(|t| mentions_ident(rhs, t)) {
                            for name in idents_of(pat) {
                                if name != "mut" && name != "ref" {
                                    tainted.insert(name);
                                }
                            }
                        }
                    }
                }
                // Allocation sites.
                let mut flagged = false;
                for tok in ALLOC_TOKENS {
                    for (pos, _) in stmt.clone().match_indices(tok) {
                        let args = paren_args(&stmt, pos + tok.len() - 1);
                        if tainted.iter().any(|t| mentions_ident(args, t)) && !is_clamped(&stmt) {
                            flagged = true;
                            out.push(Violation {
                                path: file.source.path.clone(),
                                line: first + 1,
                                lint: "L8",
                                message: format!(
                                    "allocation size in `{}` derives from parsed input in ingest-reachable `{label}`; clamp it with `.min(SOME_CAP)` on the same statement",
                                    tok.trim_matches(['.', '('])
                                ),
                            });
                            break;
                        }
                    }
                    if flagged {
                        break;
                    }
                }
                // `vec![elem; n]` with a tainted length.
                if !flagged {
                    for (pos, _) in stmt.clone().match_indices("vec![") {
                        let inner = bracket_args(&stmt, pos + "vec![".len() - 1);
                        if let Some((_, len)) = inner.rsplit_once(';') {
                            if tainted.iter().any(|t| mentions_ident(len, t)) && !is_clamped(&stmt)
                            {
                                out.push(Violation {
                                    path: file.source.path.clone(),
                                    line: first + 1,
                                    lint: "L8",
                                    message: format!(
                                        "`vec![…; n]` length derives from parsed input in ingest-reachable `{label}`; clamp it with `.min(SOME_CAP)` on the same statement"
                                    ),
                                });
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// All identifier tokens of `s`, in order.
fn idents_of(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if is_ident_char(c) {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Contents of the paren group opening at byte `open` (which must be `(`).
fn paren_args(s: &str, open: usize) -> &str {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &s[open + 1..i];
                }
            }
            _ => {}
        }
    }
    &s[open + 1..]
}

/// Contents of the bracket group opening at byte `open` (which must be `[`).
fn bracket_args(s: &str, open: usize) -> &str {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'['));
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return &s[open + 1..i];
                }
            }
            _ => {}
        }
    }
    &s[open + 1..]
}

// ---------------------------------------------------------------------------
// L9 — metric-catalog consistency
// ---------------------------------------------------------------------------

/// One catalog row from the `metrics!` block in `telemetry/src/metric.rs`.
#[derive(Debug)]
pub struct CatalogEntry {
    pub variant: String,
    pub stable: bool,
    /// Zero-based line of the entry.
    pub line: usize,
}

/// Parse the `metrics! { Variant => "name", Kind, Class, … }` catalog.
pub fn parse_catalog(file: &SourceFile) -> Vec<CatalogEntry> {
    let mut out = Vec::new();
    let mut open_depth: Option<usize> = None;
    for (i, line) in file.lines.iter().enumerate() {
        let code = line.code.trim();
        let Some(d0) = open_depth else {
            if code.starts_with("metrics!") {
                open_depth = Some(line.depth);
            }
            continue;
        };
        // The block's own closing `}` starts at depth d0 + 1.
        if line.depth <= d0 + 1 && code.starts_with('}') {
            break;
        }
        let Some((lhs, rhs)) = code.split_once("=>") else {
            continue;
        };
        let variant = lhs.trim().to_string();
        if variant.is_empty() || !variant.chars().all(is_ident_char) {
            continue;
        }
        out.push(CatalogEntry {
            variant,
            stable: mentions_ident(rhs, "Stable"),
            line: i,
        });
    }
    out
}

/// One `tm_*!` update site with the metric variants it names.
#[derive(Debug)]
pub struct TmSite {
    pub file: usize,
    /// Zero-based line of the macro token.
    pub line: usize,
    pub variants: Vec<String>,
}

const TM_MACROS: &[&str] = &["tm_count!(", "tm_gauge!(", "tm_observe!(", "tm_span!("];

/// All `tm_*!` sites across the workspace (test code excluded). A site's
/// variants are every `Tm::X` / `Metric::X` token inside the macro's paren
/// group — which handles both single-metric sites and `match`-dispatch
/// sites naming several.
pub fn collect_tm_sites(ws: &Workspace) -> Vec<TmSite> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.krate == "telemetry" {
            continue; // the macro definitions themselves
        }
        let lines = &file.source.lines;
        for (i, line) in lines.iter().enumerate() {
            if line.test {
                continue;
            }
            let code = line.code.as_str();
            for mac in TM_MACROS {
                let Some(pos) = code.find(mac) else { continue };
                // Join lines until the macro's paren group closes.
                let mut joined = code[pos..].to_string();
                let mut j = i + 1;
                while paren_open(&joined) && j < lines.len() && j < i + 20 {
                    joined.push(' ');
                    joined.push_str(lines[j].code.trim());
                    j += 1;
                }
                let mut variants = Vec::new();
                for qual in ["Tm::", "Metric::"] {
                    for (p, _) in joined.match_indices(qual) {
                        if p > 0 && is_ident_char(char_at(&joined, p - 1)) {
                            continue;
                        }
                        let rest = &joined[p + qual.len()..];
                        let v: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                        if !v.is_empty() && !variants.contains(&v) {
                            variants.push(v);
                        }
                    }
                }
                out.push(TmSite {
                    file: fi,
                    line: i,
                    variants,
                });
            }
        }
    }
    out
}

/// Is the first paren group of `s` still open at the end of `s`?
fn paren_open(s: &str) -> bool {
    let Some(open) = s.find('(') else {
        return false;
    };
    let mut depth = 0i32;
    for c in s[open..].chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// L9: the metric catalog and its update sites agree.
///
/// 1. Every cataloged metric has ≥1 `tm_*!` update site.
/// 2. Every `tm_*!` site names only cataloged metrics.
/// 3. Stable-class metrics are updated only from code inside the
///    deterministic dataflow — functions reachable from ingest roots (the
///    shared per-event path whose per-worker registries the fold merges) or
///    from determinism roots. A Stable update in driver/timing/export glue
///    would count events differently per run shape and break snapshot
///    equality across `--workers N`.
pub fn l9_metric_catalog(ws: &Workspace, catalog_path: &PathBuf) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(cat_file) = ws.files.iter().find(|f| &f.source.path == catalog_path) else {
        out.push(Violation {
            path: catalog_path.clone(),
            line: 1,
            lint: "L9",
            message: "metric catalog file not found in the analyzed workspace".into(),
        });
        return out;
    };
    let catalog = parse_catalog(&cat_file.source);
    if catalog.is_empty() {
        out.push(Violation {
            path: catalog_path.clone(),
            line: 1,
            lint: "L9",
            message: "no `metrics!` catalog entries parsed".into(),
        });
        return out;
    }
    let sites = collect_tm_sites(ws);
    let mut updated: BTreeSet<&str> = BTreeSet::new();
    for site in &sites {
        let file = &ws.files[site.file];
        for v in &site.variants {
            updated.insert(v.as_str());
            let Some(entry) = catalog.iter().find(|e| &e.variant == v) else {
                out.push(Violation {
                    path: file.source.path.clone(),
                    line: site.line + 1,
                    lint: "L9",
                    message: format!(
                        "`tm_*!` site names `{v}`, which is not in the metric catalog"
                    ),
                });
                continue;
            };
            if entry.stable {
                let reach = file
                    .source
                    .lines
                    .get(site.line)
                    .map(|_| ws.line_reach[site.file][site.line])
                    .unwrap_or(0);
                if reach & (REACH_INGEST | REACH_DETERMINISM) == 0 {
                    let ctx = ws.line_fn[site.file][site.line]
                        .map(|f| ws.fn_label(f))
                        .unwrap_or_else(|| "<no enclosing fn>".into());
                    out.push(Violation {
                        path: file.source.path.clone(),
                        line: site.line + 1,
                        lint: "L9",
                        message: format!(
                            "Stable-class metric `{v}` updated in `{ctx}`, outside the deterministic dataflow (not reachable from any ingest/determinism root)"
                        ),
                    });
                }
            }
        }
    }
    for entry in &catalog {
        if !updated.contains(entry.variant.as_str()) {
            out.push(Violation {
                path: catalog_path.clone(),
                line: entry.line + 1,
                lint: "L9",
                message: format!(
                    "metric `{}` is cataloged but updated by no `tm_*!` site; remove it or wire the update",
                    entry.variant
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L10 — trace-event catalog consistency
// ---------------------------------------------------------------------------

/// One catalog row from the `trace_events!` block in
/// `telemetry/src/trace.rs`.
#[derive(Debug)]
pub struct TraceCatalogEntry {
    pub variant: String,
    /// Zero-based line of the entry.
    pub line: usize,
}

/// Parse the `trace_events! { Variant => "name", Class, … }` catalog —
/// the same grammar [`parse_catalog`] reads, under the other macro name.
pub fn parse_trace_catalog(file: &SourceFile) -> Vec<TraceCatalogEntry> {
    let mut out = Vec::new();
    let mut open_depth: Option<usize> = None;
    for (i, line) in file.lines.iter().enumerate() {
        let code = line.code.trim();
        let Some(d0) = open_depth else {
            if code.starts_with("trace_events!") {
                open_depth = Some(line.depth);
            }
            continue;
        };
        if line.depth <= d0 + 1 && code.starts_with('}') {
            break;
        }
        let Some((lhs, _)) = code.split_once("=>") else {
            continue;
        };
        let variant = lhs.trim().to_string();
        if variant.is_empty() || !variant.chars().all(is_ident_char) {
            continue;
        }
        out.push(TraceCatalogEntry { variant, line: i });
    }
    out
}

/// The sanctioned record macros (`trace_note`/`trace_note_wall` are their
/// expansions; calling those directly skips the catalog audit).
const TRACE_MACROS: &[&str] = &["tm_trace!(", "tm_trace_wall!("];

/// Tokens that mean a record line allocates, formats, or locks — all
/// forbidden on the flight-recorder path, which must stay a thread-local
/// load plus four relaxed stores (the L5 discipline, applied to traces).
const TRACE_HEAVY_TOKENS: &[&str] = &[
    "format!",
    ".to_string()",
    ".to_owned()",
    "String::",
    "vec!",
    "Vec::new",
    "Box::new",
    "Mutex",
    ".lock(",
];

/// One `tm_trace*!` record site with the events it names and the joined
/// macro text (for the heavy-token check).
#[derive(Debug)]
pub struct TraceSite {
    pub file: usize,
    /// Zero-based line of the macro token.
    pub line: usize,
    pub variants: Vec<String>,
    pub joined: String,
}

/// All `tm_trace*!` sites across the workspace (test code and the
/// telemetry crate itself excluded, as in [`collect_tm_sites`]).
pub fn collect_trace_sites(ws: &Workspace) -> Vec<TraceSite> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.krate == "telemetry" {
            continue; // the macro definitions themselves
        }
        let lines = &file.source.lines;
        for (i, line) in lines.iter().enumerate() {
            if line.test {
                continue;
            }
            let code = line.code.as_str();
            for mac in TRACE_MACROS {
                let Some(pos) = code.find(mac) else { continue };
                let mut joined = code[pos..].to_string();
                let mut j = i + 1;
                while paren_open(&joined) && j < lines.len() && j < i + 20 {
                    joined.push(' ');
                    joined.push_str(lines[j].code.trim());
                    j += 1;
                }
                let mut variants = Vec::new();
                for qual in ["Te::", "TraceEvent::"] {
                    for (p, _) in joined.match_indices(qual) {
                        if p > 0 && is_ident_char(char_at(&joined, p - 1)) {
                            continue;
                        }
                        let rest = &joined[p + qual.len()..];
                        let v: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                        if !v.is_empty() && !variants.contains(&v) {
                            variants.push(v);
                        }
                    }
                }
                out.push(TraceSite {
                    file: fi,
                    line: i,
                    variants,
                    joined,
                });
            }
        }
    }
    out
}

/// L10: the trace-event catalog and its record sites agree.
///
/// 1. Every `tm_trace!`/`tm_trace_wall!` site names only cataloged events
///    (an uncataloged event would export as an unknown id and be silently
///    skipped by every consumer).
/// 2. Every cataloged event has ≥1 record site — a dead catalog row is a
///    lane the `--explain` renderer promises but never delivers.
/// 3. No record line allocates, formats, or locks: the flight recorder's
///    no-alloc guarantee is only as good as its call sites.
pub fn l10_trace_catalog(ws: &Workspace, catalog_path: &PathBuf) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(cat_file) = ws.files.iter().find(|f| &f.source.path == catalog_path) else {
        out.push(Violation {
            path: catalog_path.clone(),
            line: 1,
            lint: "L10",
            message: "trace-event catalog file not found in the analyzed workspace".into(),
        });
        return out;
    };
    let catalog = parse_trace_catalog(&cat_file.source);
    if catalog.is_empty() {
        out.push(Violation {
            path: catalog_path.clone(),
            line: 1,
            lint: "L10",
            message: "no `trace_events!` catalog entries parsed".into(),
        });
        return out;
    }
    let sites = collect_trace_sites(ws);
    let mut recorded: BTreeSet<&str> = BTreeSet::new();
    for site in &sites {
        let file = &ws.files[site.file];
        for v in &site.variants {
            recorded.insert(v.as_str());
            if !catalog.iter().any(|e| &e.variant == v) {
                out.push(Violation {
                    path: file.source.path.clone(),
                    line: site.line + 1,
                    lint: "L10",
                    message: format!(
                        "`tm_trace*!` site names `{v}`, which is not in the trace-event catalog"
                    ),
                });
            }
        }
        for heavy in TRACE_HEAVY_TOKENS {
            if site.joined.contains(heavy) {
                out.push(Violation {
                    path: file.source.path.clone(),
                    line: site.line + 1,
                    lint: "L10",
                    message: format!(
                        "`{}` in a trace record; the record path must not allocate, format, or lock",
                        heavy.trim_matches(['.', '(', '!'])
                    ),
                });
            }
        }
    }
    for entry in &catalog {
        if !recorded.contains(entry.variant.as_str()) {
            out.push(Violation {
                path: catalog_path.clone(),
                line: entry.line + 1,
                lint: "L10",
                message: format!(
                    "trace event `{}` is cataloged but recorded by no `tm_trace*!` site; remove it or wire the record",
                    entry.variant
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn build(files: Vec<(&str, &str, &str)>) -> Workspace {
        let sources = files
            .into_iter()
            .map(|(krate, name, src)| {
                (
                    krate.to_string(),
                    SourceFile::parse(PathBuf::from(name), src),
                )
            })
            .collect();
        let deps: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
        Workspace::build(sources, &deps)
    }

    #[test]
    fn l7_flags_map_iteration_and_clocks_in_reachable_code() {
        let src = "struct S { idx: HashMap<u32, u32> }\nimpl S {\n    fn render_rows(&self) {\n        let t = Instant::now();\n        for (k, v) in self.idx.iter() {\n        }\n    }\n    fn cold(&self) {\n        let _ = self.idx.iter();\n    }\n}\n";
        let v = l7_determinism(&build(vec![("core", "a.rs", src)]));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("Instant::now")));
        assert!(v.iter().any(|x| x.message.contains("idx.iter")));
    }

    #[test]
    fn l7_ignores_btree_and_unreachable_code() {
        let src = "struct S { idx: BTreeMap<u32, u32>, fnv: FnvHashMap<u32, u32> }\nimpl S {\n    fn render_rows(&self) {\n        for (k, v) in self.idx.iter() {\n        }\n        let n = self.fnv.iter().count();\n    }\n}\n";
        let v = l7_determinism(&build(vec![("core", "a.rs", src)]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l7_flags_for_in_over_default_map() {
        let src = "fn fold(m: &S) {\n    let mut counts = HashMap::new();\n    for k in &counts {\n    }\n}\n";
        let v = l7_determinism(&build(vec![("core", "a.rs", src)]));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn l8_flags_unclamped_tainted_capacity() {
        let src = "// lint_root(ingest): decodes wire bytes\nfn decode(buf: &[u8], count: u16) {\n    let n = count as usize;\n    let v: Vec<u8> = Vec::with_capacity(n);\n    let w: Vec<u8> = Vec::with_capacity(64);\n}\n";
        let v = l8_bounded_alloc(&build(vec![("dns", "codec.rs", src)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn l8_accepts_clamped_sizes_and_untainted_code() {
        let src = "// lint_root(ingest): decodes wire bytes\nfn decode(buf: &[u8], count: u16) {\n    let v: Vec<u8> = Vec::with_capacity((count as usize).min(MAX_RECORDS));\n    let mut s = String::new();\n    s.reserve(self.cfg.batch);\n}\nfn unreached(count: u16) {\n    let v: Vec<u8> = Vec::with_capacity(count as usize);\n}\n";
        let v = l8_bounded_alloc(&build(vec![("dns", "codec.rs", src)]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l8_flags_vec_macro_and_resize_through_taint_chain() {
        let src = "// lint_root(ingest): x\nfn ingest(len: u16) {\n    let n = len as usize + 2;\n    let buf = vec![0u8; n];\n    let mut v: Vec<u8> = Vec::new();\n    v.resize(n, 0);\n}\n";
        let v = l8_bounded_alloc(&build(vec![("net", "packet.rs", src)]));
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn catalog_parses_variants_and_classes() {
        let src = "metrics! {\n    IngestFrames => \"dnh_ingest_frames_total\", Counter, Stable,\n        \"frames\";\n    MergeNanos => \"dnh_merge_nanos\", Histogram, Runtime,\n        \"merge time\";\n}\n";
        let f = SourceFile::parse(PathBuf::from("metric.rs"), src);
        let cat = parse_catalog(&f);
        assert_eq!(cat.len(), 2);
        assert!(cat[0].stable && !cat[1].stable);
        assert_eq!(cat[0].variant, "IngestFrames");
    }

    fn l9_fixture(core_src: &str) -> Vec<Violation> {
        let cat = "metrics! {\n    Frames => \"dnh_frames_total\", Counter, Stable,\n        \"frames\";\n    Spare => \"dnh_spare_total\", Counter, Stable,\n        \"never updated\";\n    QueueDepth => \"dnh_queue_depth\", Gauge, Runtime,\n        \"depth\";\n}\n";
        let ws = build(vec![
            ("telemetry", "metric.rs", cat),
            ("core", "engine.rs", core_src),
        ]);
        l9_metric_catalog(&ws, &PathBuf::from("metric.rs"))
    }

    #[test]
    fn l9_flags_uncataloged_and_never_updated_and_unreachable_stable() {
        let src = "// lint_root(ingest): x\nfn process(b: &[u8]) {\n    tm_count!(Tm::Frames);\n}\nfn driver_glue() {\n    tm_count!(Tm::Frames);\n    tm_gauge!(Tm::QueueDepth, 1);\n    tm_count!(Tm::Bogus);\n}\n";
        let v = l9_fixture(src);
        // Bogus: uncataloged; Spare: never updated; Frames in driver_glue:
        // Stable outside the dataflow. QueueDepth is Runtime → free.
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("Bogus")));
        assert!(v.iter().any(|x| x.message.contains("Spare")));
        assert!(v
            .iter()
            .any(|x| x.message.contains("Frames") && x.message.contains("driver_glue")));
    }

    #[test]
    fn l9_accepts_match_dispatch_sites_in_reachable_code() {
        let src = "// lint_root(ingest): x\nfn process(b: &[u8], p: P) {\n    tm_count!(match p {\n        P::A => Tm::Frames,\n        P::B => Tm::Spare,\n    });\n    tm_gauge!(Tm::QueueDepth, 1);\n}\n";
        let v = l9_fixture(src);
        assert!(v.is_empty(), "{v:?}");
    }
}
