//! A lightweight lexical model of a Rust source file.
//!
//! The invariant lints don't need types or name resolution — they need to
//! know, for every line, *what is code* (as opposed to comment or string
//! literal), whether the line sits inside test-only code, at which brace
//! depth it starts, and which `allow_lint` markers cover it. This module
//! computes exactly that with a character-level state machine, so the lints
//! themselves can be simple substring scans over the blanked `code` text.

/// One analysed source line.
#[derive(Debug)]
pub struct Line {
    /// The raw line exactly as read, string contents included. Lints that
    /// must look inside literals (e.g. `{:p}` format specifiers) use this;
    /// everything else scans `code`.
    pub raw: String,
    /// The line with comment bodies and string/char literal contents
    /// replaced by spaces. Quote characters are kept so tokens don't merge.
    pub code: String,
    /// Concatenated text of all comments on the line.
    pub comment: String,
    /// True for `///` / `//!` doc-comment lines.
    pub doc: bool,
    /// True for `//!` inner doc-comment lines specifically.
    pub inner_doc: bool,
    /// Brace depth at the start of the line.
    pub depth: usize,
    /// Line is inside `#[cfg(test)]` / `#[cfg(loom)]` / `#[test]` code.
    pub test: bool,
}

/// A parsed `// allow_lint(Lx): reason` marker.
#[derive(Debug)]
pub struct Marker {
    /// Zero-based line index the marker comment sits on.
    pub line: usize,
    /// The lint id, e.g. `"L1"`.
    pub lint: String,
    /// The justification after the colon.
    pub reason: String,
    /// True when the marker line carries no code of its own.
    pub standalone: bool,
}

/// A fully analysed file.
#[derive(Debug)]
pub struct SourceFile {
    pub path: std::path::PathBuf,
    pub lines: Vec<Line>,
    pub markers: Vec<Marker>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Lex `text` into the per-line model.
    pub fn parse(path: std::path::PathBuf, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Code;
        for raw in text.lines() {
            let (line, next) = lex_line(raw, state);
            state = next;
            lines.push(line);
        }
        mark_depth_and_tests(&mut lines);
        let markers = collect_markers(&lines);
        SourceFile {
            path,
            lines,
            markers,
        }
    }

    /// Per-line allow mask for `lint`: `true` where a marker suppresses it.
    ///
    /// Marker scope rules:
    /// * a marker sharing its line with code covers that line;
    /// * a standalone marker covers the next non-comment, non-attribute
    ///   line; if that line opens an item (`fn` / `impl` / `mod` / ...),
    ///   the whole braced item body is covered.
    pub fn allow_mask(&self, lint: &str) -> Vec<bool> {
        let mut mask = vec![false; self.lines.len()];
        for m in &self.markers {
            if m.lint == lint {
                self.apply_marker(m, &mut mask);
            }
        }
        mask
    }

    /// Coverage of one marker alone, for stale-marker detection (M2).
    pub fn marker_mask(&self, m: &Marker) -> Vec<bool> {
        let mut mask = vec![false; self.lines.len()];
        self.apply_marker(m, &mut mask);
        mask
    }

    fn apply_marker(&self, m: &Marker, mask: &mut [bool]) {
        if !m.standalone {
            mask[m.line] = true;
            return;
        }
        // Find the first following line that is real code.
        let Some(target) = (m.line + 1..self.lines.len()).find(|&i| {
            let t = self.lines[i].code.trim();
            !t.is_empty() && !t.starts_with("#[")
        }) else {
            return;
        };
        mask[target] = true;
        if opens_item(self.lines[target].code.trim()) {
            let base = self.lines[target].depth;
            // Cover the (possibly multi-line) signature, then the body
            // until the brace depth falls back to the opening level.
            let mut entered = false;
            for (i, slot) in mask.iter_mut().enumerate().skip(target + 1) {
                let d = self.lines[i].depth;
                if entered && d <= base {
                    break;
                }
                if !entered && d <= base && self.lines[i].code.trim_end().ends_with(';') {
                    // Braceless item (e.g. trait method declaration):
                    // cover through the terminating `;` and stop.
                    *slot = true;
                    break;
                }
                if d > base {
                    entered = true;
                }
                *slot = true;
            }
        }
    }
}

/// Does this line begin a braced item whose whole body a standalone marker
/// should cover?
fn opens_item(trimmed: &str) -> bool {
    let t = trimmed
        .trim_start_matches("pub(crate) ")
        .trim_start_matches("pub(super) ")
        .trim_start_matches("pub ");
    [
        "fn ",
        "impl ",
        "impl<",
        "mod ",
        "struct ",
        "enum ",
        "trait ",
        "unsafe fn ",
        "const fn ",
        "async fn ",
    ]
    .iter()
    .any(|k| t.starts_with(k))
}

fn lex_line(raw: &str, mut state: State) -> (Line, State) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut doc = false;
    let mut inner_doc = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match state {
            State::Block(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    state = if depth > 1 {
                        State::Block(depth - 1)
                    } else {
                        State::Code
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = State::Block(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if i + 1 < bytes.len() {
                        code.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    // Line comment; `///` and `//!` are docs.
                    let rest: String = bytes[i..].iter().collect();
                    doc = rest.starts_with("///") || rest.starts_with("//!");
                    inner_doc = rest.starts_with("//!");
                    comment.push_str(rest.trim_start_matches('/').trim_start_matches('!'));
                    break;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = State::Block(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    // Plain (or byte) string start; the `b` prefix stays code.
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if is_raw_str_start(&bytes, i) {
                    // `r"…"`, `r#"…"#`, or byte-raw `br#"…"#`: the prefix
                    // letters stay code, hash marks and contents blank out.
                    if bytes[i] == 'b' {
                        code.push('b');
                        i += 1;
                    }
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    state = State::RawStr(hashes);
                    code.push('r');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    code.push('"');
                    i = j + 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if bytes.get(i + 1) == Some(&'\\') {
                        // '\x' escape: the char right after the backslash is
                        // the escaped one (possibly a quote, as in `'\''`);
                        // skip it before scanning for the closing quote.
                        code.push('\'');
                        let mut j = i + 3;
                        while j < bytes.len() && bytes[j] != '\'' {
                            j += 1;
                        }
                        for _ in i + 1..=j.min(bytes.len().saturating_sub(1)) {
                            code.push(' ');
                        }
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        code.push_str("'  ");
                        i += 3;
                    } else {
                        // Lifetime: leave as code.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A line comment never crosses lines.
    (
        Line {
            raw: raw.to_string(),
            code,
            comment,
            doc,
            inner_doc,
            depth: 0,
            test: false,
        },
        state,
    )
}

fn is_raw_str_start(bytes: &[char], i: usize) -> bool {
    if bytes[i] != 'r' && !(bytes[i] == 'b' && bytes.get(i + 1) == Some(&'r')) {
        return false;
    }
    // Previous char must not be part of an identifier (e.g. `for`).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let start = if bytes[i] == 'b' { i + 2 } else { i + 1 };
    let mut j = start;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn closes_raw(bytes: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Second pass: brace depth at line start, plus test-span marking for
/// `#[cfg(test)]`, `#[cfg(loom)]` and `#[test]` items.
fn mark_depth_and_tests(lines: &mut [Line]) {
    let mut depth = 0usize;
    // (depth the guarded item's block was opened at) for active test spans.
    let mut test_until_depth: Option<usize> = None;
    let mut pending_attr = false;
    for line in lines.iter_mut() {
        line.depth = depth;
        let code = line.code.clone();
        let trimmed = code.trim();
        if test_until_depth.is_none()
            && (trimmed.contains("cfg(test)")
                || trimmed.contains("cfg(loom)")
                || trimmed.contains("#[test]"))
        {
            pending_attr = true;
        }
        if pending_attr || test_until_depth.is_some() {
            line.test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        test_until_depth = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_until_depth == Some(depth) {
                        test_until_depth = None;
                    }
                }
                // Attribute applied to a braceless item (`use`, `mod x;`).
                ';' if pending_attr => pending_attr = false,
                _ => {}
            }
        }
    }
}

/// Extract `allow_lint(Lx): reason` markers from comments.
fn collect_markers(lines: &[Line]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("allow_lint(") {
            rest = &rest[pos + "allow_lint(".len()..];
            let Some(close) = rest.find(')') else { break };
            let lint = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(|r| r.trim().to_string())
                .unwrap_or_default();
            out.push(Marker {
                line: i,
                lint,
                reason,
                standalone: line.code.trim().is_empty(),
            });
            rest = after;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("mem.rs"), src)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let s = \"x.unwrap()\"; // .unwrap() in comment\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap() in comment"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = parse("let s = r#\"a[0].unwrap()\"#; let t = v[0];\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("v[0]"));
    }

    #[test]
    fn char_literals_do_not_eat_the_line() {
        let f = parse("if c == '\"' { x.push('y') }\n");
        assert!(f.lines[0].code.contains("push"));
    }

    #[test]
    fn byte_raw_strings_are_blanked() {
        // `br#"…"#` used to mis-lex: the `b` prefix failed the raw-string
        // check, so the `"` opened a plain string that the first `"` inside
        // the raw contents closed — swallowing the rest of the line.
        let f = parse("let s = br#\"a\".unwrap()\"#; x.unwrap();\n");
        assert!(
            f.lines[0].code.matches(".unwrap()").count() == 1,
            "raw contents must be blanked, code after must survive: {:?}",
            f.lines[0].code
        );
        assert!(f.lines[0].code.contains("x.unwrap()"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_leak_a_quote() {
        // `'\''` used to stop scanning at the *escaped* quote, leaving the
        // closing quote to start a phantom char literal that could swallow
        // following code.
        let f = parse("let q = '\\''; v.unwrap();\n");
        assert!(
            f.lines[0].code.contains("v.unwrap()"),
            "code after the literal must survive: {:?}",
            f.lines[0].code
        );
    }

    #[test]
    fn multiline_raw_strings_blank_until_the_matching_close() {
        let f = parse("let s = r#\"line one\nstill .unwrap() string\n\"#; a.unwrap();\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("a.unwrap()"));
    }

    #[test]
    fn lifetime_ticks_leave_code_intact() {
        let f = parse("fn f<'a>(x: &'a [u8], y: &'_ str) -> &'a str { y }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("[u8]") && code.contains("str"), "{code:?}");
    }

    #[test]
    fn raw_lines_are_preserved_verbatim() {
        let src = "let s = \"{:p}\";\n";
        let f = parse(src);
        assert!(!f.lines[0].code.contains("{:p}"));
        assert!(f.lines[0].raw.contains("{:p}"));
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = parse(src);
        assert!(!f.lines[0].test);
        assert!(f.lines[1].test && f.lines[3].test && f.lines[4].test);
        assert!(!f.lines[5].test);
    }

    #[test]
    fn standalone_marker_covers_whole_item() {
        let src =
            "// allow_lint(L1): fixture\nfn f() {\n    a[0];\n    b[1];\n}\nfn g() { c[2]; }\n";
        let f = parse(src);
        let mask = f.allow_mask("L1");
        assert!(mask[1] && mask[2] && mask[3]);
        assert!(!mask[5]);
    }

    #[test]
    fn inline_marker_covers_its_line_only() {
        let src = "let x = v[0]; // allow_lint(L1): bounds-checked above\nlet y = v[1];\n";
        let f = parse(src);
        let mask = f.allow_mask("L1");
        assert!(mask[0]);
        assert!(!mask[1]);
    }
}
