//! `cargo xtask bench-diff` — the CI performance-regression gate.
//!
//! Compares a fresh `BENCH_sniffer.json` (produced by
//! `repro --bench-sniffer --quick`) against the committed
//! `BENCH_baseline.json` and fails when throughput regressed by more than
//! the threshold (default 15%). Some invariants are gated unconditionally,
//! threshold or not: every benchmark run must have been byte-identical to
//! the sequential reference (`determinism_all_runs`), telemetry must have
//! stayed within its overhead budget
//! (`telemetry_overhead.within_budget`), the flight-recorder leg must be
//! present and within budget, and the windowed-analytics leg must be
//! present with byte-identical renders across repetitions
//! (`windowed_overhead.render_identical_all_reps`).
//!
//! A deliberate regression (e.g. a correctness fix that costs throughput)
//! is waived by committing a `BENCH_OVERRIDE` file at the workspace root
//! whose contents explain the waiver; the gate then warns instead of
//! failing. Remove the file in the next PR and refresh the baseline with
//! `cargo xtask bench-diff --update`.

use std::path::Path;
use std::process::ExitCode;

use serde_json::Value;

/// Throughput may drop by at most this fraction before the gate fails.
const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

struct Metrics {
    /// Best sequential ingest rate (frames/s).
    single_thread_fps: f64,
    /// Best projected pipeline rate across worker counts (frames/s).
    best_pipeline_fps: f64,
    determinism_all_runs: bool,
    telemetry_within_budget: bool,
    /// `None` when the doc predates the flight recorder (old baselines);
    /// the gate only reads this from the *current* run, which always has
    /// it.
    trace_within_budget: Option<bool>,
    /// Windowed-analytics renders were byte-identical across repetitions.
    /// `None` when the doc predates the windowed leg (old baselines);
    /// required in the current run, same rule as `trace_within_budget`.
    windowed_render_identical: Option<bool>,
    /// The full worker x dispatcher grid from `dispatcher_scaling`.
    scaling: Vec<ScalingRow>,
}

/// One grid point of the benchmark's worker x dispatcher sweep.
struct ScalingRow {
    workers: u64,
    dispatchers: u64,
    projected_fps: f64,
    dispatch_busy_secs: f64,
    send_wait_secs: f64,
    /// The slowest worker's busy time — the per-worker bound the
    /// projection uses.
    max_worker_busy_secs: f64,
}

fn extract_scaling(doc: &Value, label: &str) -> Result<Vec<ScalingRow>, String> {
    let rows = doc
        .get("dispatcher_scaling")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{label}: missing dispatcher_scaling array"))?;
    rows.iter()
        .map(|row| {
            let num = |key: &str| {
                row.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{label}: dispatcher_scaling row missing {key}"))
            };
            let count = |key: &str| {
                row.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("{label}: dispatcher_scaling row missing {key}"))
            };
            let max_worker_busy_secs = row
                .get("worker_busy_secs")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{label}: dispatcher_scaling row missing worker_busy_secs"))?
                .iter()
                .filter_map(Value::as_f64)
                .fold(0.0f64, f64::max);
            Ok(ScalingRow {
                workers: count("workers")?,
                dispatchers: count("dispatchers")?,
                projected_fps: num("projected_frames_per_sec")?,
                dispatch_busy_secs: num("dispatch_busy_secs")?,
                send_wait_secs: num("send_wait_secs")?,
                max_worker_busy_secs,
            })
        })
        .collect()
}

/// Best projected rate per worker count, across dispatcher counts —
/// collapsing the grid's noisiest axis so the per-worker-count gate
/// tracks "did scaling collapse at N workers" rather than single-row
/// jitter.
fn best_by_workers(rows: &[ScalingRow]) -> Vec<(u64, f64)> {
    let mut best: Vec<(u64, f64)> = Vec::new();
    for row in rows {
        match best.iter_mut().find(|(w, _)| *w == row.workers) {
            Some((_, fps)) => *fps = fps.max(row.projected_fps),
            None => best.push((row.workers, row.projected_fps)),
        }
    }
    best.sort_by_key(|&(w, _)| w);
    best
}

fn extract(doc: &Value, label: &str) -> Result<Metrics, String> {
    let single = doc
        .get("single_thread")
        .and_then(|s| s.get("frames_per_sec"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{label}: missing single_thread.frames_per_sec"))?;
    let pipeline = doc
        .get("pipeline")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{label}: missing pipeline array"))?;
    let best_pipeline = pipeline
        .iter()
        .filter_map(|run| run.get("projected_frames_per_sec").and_then(Value::as_f64))
        .fold(0.0f64, f64::max);
    if best_pipeline <= 0.0 {
        return Err(format!(
            "{label}: no pipeline run with projected_frames_per_sec"
        ));
    }
    let determinism = doc
        .get("determinism_all_runs")
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("{label}: missing determinism_all_runs"))?;
    let within_budget = doc
        .get("telemetry_overhead")
        .and_then(|t| t.get("within_budget"))
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("{label}: missing telemetry_overhead.within_budget"))?;
    let trace_within_budget = doc
        .get("trace_overhead")
        .and_then(|t| t.get("within_budget"))
        .and_then(Value::as_bool);
    let windowed_render_identical = doc
        .get("windowed_overhead")
        .and_then(|w| w.get("render_identical_all_reps"))
        .and_then(Value::as_bool);
    Ok(Metrics {
        single_thread_fps: single,
        best_pipeline_fps: best_pipeline,
        determinism_all_runs: determinism,
        telemetry_within_budget: within_budget,
        trace_within_budget,
        windowed_render_identical,
        scaling: extract_scaling(doc, label)?,
    })
}

fn load(path: &Path, label: &str) -> Result<Metrics, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{label}: cannot read {}: {e}", path.display()))?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| format!("{label}: {} is not valid JSON: {e:?}", path.display()))?;
    extract(&doc, label)
}

/// One throughput comparison. Returns the regression fraction (positive =
/// slower than baseline).
fn regression(baseline: f64, current: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (baseline - current) / baseline
}

pub fn run(args: &[String]) -> ExitCode {
    let root = xtask::workspace_root();
    let mut baseline_path = root.join("BENCH_baseline.json");
    let mut current_path = Path::new("BENCH_sniffer.json").to_path_buf();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut update = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline_path = p.into(),
                    None => return arg_error("--baseline needs a path"),
                }
            }
            "--current" => {
                i += 1;
                match args.get(i) {
                    Some(p) => current_path = p.into(),
                    None => return arg_error("--current needs a path"),
                }
            }
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(t) if t > 0.0 => threshold_pct = t,
                    _ => return arg_error("--threshold needs a positive percentage"),
                }
            }
            "--update" => update = true,
            other => return arg_error(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    if update {
        return match std::fs::copy(&current_path, &baseline_path) {
            Ok(_) => {
                println!(
                    "bench-diff: baseline updated from {} -> {}",
                    current_path.display(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "bench-diff: cannot update baseline from {}: {e}",
                    current_path.display()
                );
                ExitCode::FAILURE
            }
        };
    }

    let (baseline, current) = match (
        load(&baseline_path, "baseline"),
        load(&current_path, "current"),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-diff: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures: Vec<String> = Vec::new();
    let threshold = threshold_pct / 100.0;
    println!(
        "bench-diff: {} vs baseline {} (threshold {threshold_pct:.0}%)",
        current_path.display(),
        baseline_path.display()
    );
    for (name, base, cur) in [
        (
            "single-thread frames/s",
            baseline.single_thread_fps,
            current.single_thread_fps,
        ),
        (
            "best pipeline projected frames/s",
            baseline.best_pipeline_fps,
            current.best_pipeline_fps,
        ),
    ] {
        let reg = regression(base, cur);
        let verdict = if reg > threshold { "REGRESSED" } else { "ok" };
        println!(
            "  {name:<34} baseline {base:>12.0}  current {cur:>12.0}  delta {:>+7.1}%  {verdict}",
            -reg * 100.0
        );
        if reg > threshold {
            failures.push(format!(
                "{name} regressed {:.1}% (> {threshold_pct:.0}% threshold)",
                reg * 100.0
            ));
        }
    }
    // The dispatcher-scaling grid: busy decomposition per grid point
    // (informational — busy times on a shared host are too noisy to gate),
    // then a gate on the best projection *per worker count*, which catches
    // "scaling collapsed at N workers" even while the overall best row
    // stays healthy.
    println!("  dispatcher scaling (current):");
    for row in &current.scaling {
        println!(
            "    {}w x {}d: projected {:>12.0} fps  dispatch {:.3}s  send-wait {:.3}s  \
             slowest-worker {:.3}s",
            row.workers,
            row.dispatchers,
            row.projected_fps,
            row.dispatch_busy_secs,
            row.send_wait_secs,
            row.max_worker_busy_secs,
        );
    }
    let base_best = best_by_workers(&baseline.scaling);
    for (workers, cur_fps) in best_by_workers(&current.scaling) {
        let Some(&(_, base_fps)) = base_best.iter().find(|(w, _)| *w == workers) else {
            println!("    {workers}w: no baseline grid point (new) — not gated");
            continue;
        };
        let reg = regression(base_fps, cur_fps);
        let verdict = if reg > threshold { "REGRESSED" } else { "ok" };
        println!(
            "    {workers}w best projected             baseline {base_fps:>12.0}  current \
             {cur_fps:>12.0}  delta {:>+7.1}%  {verdict}",
            -reg * 100.0
        );
        if reg > threshold {
            failures.push(format!(
                "{workers}-worker best projected frames/s regressed {:.1}% \
                 (> {threshold_pct:.0}% threshold)",
                reg * 100.0
            ));
        }
    }
    if !current.determinism_all_runs {
        failures.push("determinism_all_runs is false: a merged report diverged".into());
    }
    if !current.telemetry_within_budget {
        failures.push("telemetry_overhead.within_budget is false".into());
    }
    match current.trace_within_budget {
        Some(true) => {}
        Some(false) => failures.push("trace_overhead.within_budget is false".into()),
        None => failures
            .push("current run has no trace_overhead section (flight-recorder leg missing)".into()),
    }
    match current.windowed_render_identical {
        Some(true) => {}
        Some(false) => failures.push(
            "windowed_overhead.render_identical_all_reps is false: sliding-window \
             retraction rendered differently across repetitions"
                .into(),
        ),
        None => failures.push(
            "current run has no windowed_overhead section (windowed-analytics leg missing)".into(),
        ),
    }

    if failures.is_empty() {
        println!("bench-diff: PASS");
        return ExitCode::SUCCESS;
    }

    let override_path = root.join("BENCH_OVERRIDE");
    if override_path.exists() {
        let reason = std::fs::read_to_string(&override_path).unwrap_or_default();
        println!(
            "bench-diff: {} failure(s) WAIVED by BENCH_OVERRIDE:",
            failures.len()
        );
        for f in &failures {
            println!("  - {f}");
        }
        println!("  waiver: {}", reason.trim());
        println!(
            "bench-diff: remove BENCH_OVERRIDE and refresh the baseline \
             (cargo xtask bench-diff --update) in a follow-up PR"
        );
        return ExitCode::SUCCESS;
    }

    eprintln!("bench-diff: FAILED");
    for f in &failures {
        eprintln!("  - {f}");
    }
    eprintln!(
        "  if this regression is intentional, commit a BENCH_OVERRIDE file at the \
         workspace root explaining why, or refresh the baseline with \
         `cargo xtask bench-diff --update` alongside the change that justifies it"
    );
    ExitCode::FAILURE
}

fn arg_error(msg: &str) -> ExitCode {
    eprintln!(
        "bench-diff: {msg}\nusage: cargo xtask bench-diff [--baseline PATH] [--current PATH] \
         [--threshold PCT] [--update]"
    );
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(single: f64, projected: f64, determinism: bool, budget: bool) -> Value {
        let text = format!(
            r#"{{"single_thread":{{"frames_per_sec":{single}}},
                 "pipeline":[{{"projected_frames_per_sec":{projected}}}],
                 "dispatcher_scaling":[
                   {{"workers":1,"dispatchers":1,"projected_frames_per_sec":{projected},
                     "dispatch_busy_secs":0.4,"send_wait_secs":0.1,
                     "worker_busy_secs":[0.5]}},
                   {{"workers":4,"dispatchers":1,"projected_frames_per_sec":900.0,
                     "dispatch_busy_secs":0.2,"send_wait_secs":0.2,
                     "worker_busy_secs":[0.2,0.3,0.25,0.28]}},
                   {{"workers":4,"dispatchers":2,"projected_frames_per_sec":1800.0,
                     "dispatch_busy_secs":0.1,"send_wait_secs":0.15,
                     "worker_busy_secs":[0.1,0.12,0.11,0.13]}}],
                 "determinism_all_runs":{determinism},
                 "telemetry_overhead":{{"within_budget":{budget}}},
                 "trace_overhead":{{"within_budget":{budget}}},
                 "windowed_overhead":{{"render_identical_all_reps":{determinism}}}}}"#
        );
        serde_json::from_str(&text).expect("valid test doc")
    }

    #[test]
    fn extract_reads_all_four_metrics() {
        let m = extract(&doc(1000.0, 2500.0, true, true), "t").expect("extracts");
        assert_eq!(m.single_thread_fps, 1000.0);
        assert_eq!(m.best_pipeline_fps, 2500.0);
        assert!(m.determinism_all_runs);
        assert!(m.telemetry_within_budget);
        assert_eq!(m.trace_within_budget, Some(true));
        assert_eq!(m.windowed_render_identical, Some(true));
    }

    #[test]
    fn extract_tolerates_a_baseline_without_trace_overhead() {
        let d: Value = serde_json::from_str(
            r#"{"single_thread":{"frames_per_sec":1000.0},
                "pipeline":[{"projected_frames_per_sec":2500.0}],
                "dispatcher_scaling":[
                  {"workers":1,"dispatchers":1,"projected_frames_per_sec":2500.0,
                   "dispatch_busy_secs":0.4,"send_wait_secs":0.1,
                   "worker_busy_secs":[0.5]}],
                "determinism_all_runs":true,
                "telemetry_overhead":{"within_budget":true}}"#,
        )
        .expect("doc");
        let m = extract(&d, "t").expect("extracts");
        assert_eq!(m.trace_within_budget, None);
        // A pre-windowed baseline also lacks the windowed leg; tolerated
        // for the same reason (only the current run is required to have it).
        assert_eq!(m.windowed_render_identical, None);
    }

    #[test]
    fn extract_reads_a_failed_windowed_render_check() {
        // `doc` ties the windowed verdict to `determinism` so a divergent
        // run carries both signals, like the real benchmark would.
        let m = extract(&doc(1000.0, 2500.0, false, true), "t").expect("extracts");
        assert_eq!(m.windowed_render_identical, Some(false));
    }

    #[test]
    fn extract_rejects_missing_fields() {
        let v: Value = serde_json::from_str("{}").expect("empty doc");
        assert!(extract(&v, "t").is_err());
    }

    #[test]
    fn extract_reads_the_scaling_grid() {
        let m = extract(&doc(1000.0, 2500.0, true, true), "t").expect("extracts");
        assert_eq!(m.scaling.len(), 3);
        let four_two = m
            .scaling
            .iter()
            .find(|r| r.workers == 4 && r.dispatchers == 2)
            .expect("4x2 row");
        assert_eq!(four_two.projected_fps, 1800.0);
        assert_eq!(four_two.dispatch_busy_secs, 0.1);
        assert_eq!(four_two.send_wait_secs, 0.15);
        // Slowest worker, not the first or the sum.
        assert_eq!(four_two.max_worker_busy_secs, 0.13);
    }

    #[test]
    fn extract_rejects_missing_scaling_section() {
        let v: Value = serde_json::from_str(
            r#"{"single_thread":{"frames_per_sec":1.0},
                "pipeline":[{"projected_frames_per_sec":1.0}],
                "determinism_all_runs":true,
                "telemetry_overhead":{"within_budget":true}}"#,
        )
        .expect("doc");
        let err = match extract(&v, "t") {
            Err(e) => e,
            Ok(_) => panic!("must reject a doc without dispatcher_scaling"),
        };
        assert!(err.contains("dispatcher_scaling"));
    }

    #[test]
    fn best_by_workers_collapses_the_dispatcher_axis() {
        let m = extract(&doc(1000.0, 2500.0, true, true), "t").expect("extracts");
        let best = best_by_workers(&m.scaling);
        assert_eq!(best, vec![(1, 2500.0), (4, 1800.0)]);
    }

    #[test]
    fn regression_is_signed_fraction() {
        assert!((regression(100.0, 80.0) - 0.2).abs() < 1e-12);
        assert!(regression(100.0, 120.0) < 0.0);
        assert_eq!(regression(0.0, 50.0), 0.0);
    }
}
